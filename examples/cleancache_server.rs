//! Cleancache in action: tmem's second mode, which the paper describes
//! (§II-B) but does not evaluate.
//!
//! ```text
//! cargo run --release --example cleancache_server
//! ```
//!
//! A file server with a corpus four times its page-cache budget serves
//! Zipf-popular reads. Clean page-cache victims are offered to an
//! *ephemeral* tmem pool; misses try cleancache before paying a disk
//! read. The run compares three per-VM target settings — Algorithm 1
//! gates ephemeral puts exactly like frontswap puts — and prints where
//! the read traffic was served from.

use smartmem::guest::budget::StepBudget;
use smartmem::guest::disk::SharedDisk;
use smartmem::guest::kernel::{GuestConfig, GuestKernel};
use smartmem::guest::machine::Machine;
use smartmem::sim::cost::CostModel;
use smartmem::sim::time::{SimDuration, SimTime};
use smartmem::tmem::key::VmId;
use smartmem::tmem::page::Fingerprint;
use smartmem::workloads::fileserver::{FileServer, FileServerConfig};
use smartmem::workloads::traits::{StepOutcome, Workload};
use smartmem::xen::hypervisor::Hypervisor;
use smartmem::xen::vm::VmConfig;

fn main() {
    println!("cleancache file server — corpus 32 MiB, page cache 8 MiB\n");
    println!(
        "{:>14} {:>10} {:>14} {:>10} {:>12}",
        "tmem target", "cache hit", "cleancache hit", "disk read", "sim time"
    );
    for target_pages in [0u64, 2048, 8192] {
        let (server, elapsed) = serve(target_pages);
        let s = server.cache_stats().unwrap().to_owned();
        let total = (s.cache_hits + s.cleancache_hits + s.disk_reads) as f64;
        println!(
            "{:>11} pg {:>9.1}% {:>13.1}% {:>9.1}% {:>11.2}s",
            target_pages,
            100.0 * s.cache_hits as f64 / total,
            100.0 * s.cleancache_hits as f64 / total,
            100.0 * s.disk_reads as f64 / total,
            elapsed.as_secs_f64(),
        );
    }
    println!("\nWith a zero target every ephemeral offer fails (all misses pay");
    println!("the disk); a generous target turns pooled idle memory into a");
    println!("second-level page cache — tmem's original cleancache pitch.");
}

fn serve(target_pages: u64) -> (FileServer, SimDuration) {
    let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(16384, target_pages);
    hyp.register_vm(VmConfig::new(VmId(1), "VM1", 4096 * 4096, 1));
    let mut kernel = GuestKernel::new(GuestConfig {
        vm: VmId(1),
        ram_pages: 2112,
        os_reserved_pages: 64,
        readahead_pages: 8,
        frontswap_enabled: false, // cleancache-only guest
    });
    let mut disk = SharedDisk::default();
    let cost = CostModel::hdd();
    let mut server = FileServer::new(FileServerConfig::small(7));
    let mut elapsed = SimDuration::ZERO;
    loop {
        let mut budget = StepBudget::new(SimDuration::from_millis(1));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO + elapsed,
            budget: &mut budget,
        };
        let out = server.step(&mut kernel, &mut m);
        elapsed += budget.elapsed(1.0);
        if out == StepOutcome::Done {
            return (server, elapsed);
        }
    }
}
