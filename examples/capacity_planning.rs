//! Capacity planning: how much tmem does this consolidation need?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! A use the paper motivates but never shows: given a fixed set of VMs and
//! workloads, sweep the node's tmem capacity and watch where the knee is —
//! the point past which more pooled memory stops buying runtime. The sweep
//! runs Scenario 1 (three in-memory-analytics VMs) under `smart-alloc`
//! with the node's tmem scaled from 0.25× to 2× of the paper's 1 GB.

use smartmem::policies::PolicyKind;
use smartmem::scenarios::spec::{build_scenario, ScenarioKind};
use smartmem::scenarios::{run_scenario, RunConfig};

fn main() {
    let policy = PolicyKind::SmartAlloc { p: 2.0 };
    println!("tmem capacity sweep — Scenario 1 under {policy}\n");
    println!(
        "{:>12}  {:>12}  {:>10}  {:>12}",
        "tmem factor", "mean run", "disk reads", "failed puts"
    );

    // The scenario fixes tmem at 1 GB (scaled); emulate different node
    // provisioning by scaling the whole experiment and the tmem knob via
    // the memory scale of the scenario vs a reference.
    for factor in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let cfg = RunConfig {
            scale: 0.08,
            seed: 7,
            ..RunConfig::default()
        };
        // Patch the built scenario's tmem by re-running with a custom
        // spec is not exposed; instead exploit that tmem scales linearly
        // with `scale` while VM memory does too — so emulate a smaller
        // pool by running the scenario with `tmem_scale_hack`:
        let r = run_scenario_with_tmem_factor(cfg, factor, policy);
        let mean: f64 = {
            let all: Vec<f64> = r
                .vm_results
                .iter()
                .flat_map(|v| v.completions())
                .map(|d| d.as_secs_f64())
                .collect();
            all.iter().sum::<f64>() / all.len() as f64
        };
        let failed: u64 = r
            .vm_results
            .iter()
            .map(|v| v.kernel_stats.failed_puts)
            .sum();
        println!(
            "{factor:>12.2}  {mean:>11.2}s  {:>10}  {failed:>12}",
            r.disk_reads
        );
    }
    println!("\nThe knee sits where the VMs' combined overflow fits the pool;");
    println!("beyond it, extra tmem is idle capacity (the paper's 'fallow' memory).");
}

/// Run Scenario 1 with the node's tmem multiplied by `factor`.
///
/// Uses the spec-builder API: build the Table II spec, adjust the tmem
/// capacity, and drive it through the standard runner entry point.
fn run_with(cfg: &RunConfig, factor: f64, policy: PolicyKind) -> smartmem::scenarios::RunResult {
    let mut spec = build_scenario(ScenarioKind::Scenario1, cfg);
    spec.tmem_bytes = ((spec.tmem_bytes as f64 * factor) as u64 / 4096).max(4) * 4096;
    smartmem::scenarios::runner::run_spec(spec, policy, cfg)
}

fn run_scenario_with_tmem_factor(
    cfg: RunConfig,
    factor: f64,
    policy: PolicyKind,
) -> smartmem::scenarios::RunResult {
    if (factor - 1.0).abs() < 1e-9 {
        run_scenario(ScenarioKind::Scenario1, policy, &cfg)
    } else {
        run_with(&cfg, factor, policy)
    }
}
