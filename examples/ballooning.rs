//! Combining tmem with memory ballooning — the paper's future work, live.
//!
//! ```text
//! cargo run --release --example ballooning
//! ```
//!
//! Two guests share a node: VM1 runs a hot loop over a working set larger
//! than its RAM; VM2 sits idle with plenty of spare frames. The fast layer
//! (tmem, smart-alloc) absorbs VM1's overflow within seconds; the slow
//! layer (the [`smartmem::policies::BalloonManager`]) then moves *owned*
//! RAM from VM2 to VM1, after which VM1 stops needing tmem at all. Both
//! mechanisms read the same Table I statistics stream.

use smartmem::guest::budget::StepBudget;
use smartmem::guest::disk::SharedDisk;
use smartmem::guest::kernel::{GuestConfig, GuestKernel};
use smartmem::guest::machine::Machine;
use smartmem::guest::tkm::{Dom0Tkm, GuestTkm};
use smartmem::policies::{
    BalloonConfig, BalloonManager, MemoryManager, SmartAlloc, SmartAllocConfig,
};
use smartmem::sim::cost::CostModel;
use smartmem::sim::faults::{FaultInjector, NetlinkFate};
use smartmem::sim::time::{SimDuration, SimTime};
use smartmem::tmem::backend::PoolKind;
use smartmem::tmem::key::VmId;
use smartmem::xen::hypervisor::Hypervisor;
use smartmem::xen::vm::VmConfig;

fn main() {
    const TMEM_PAGES: u64 = 256;
    let mut mm = MemoryManager::new(
        Box::new(SmartAlloc::new(SmartAllocConfig::with_percent(4.0))),
        32,
    );
    let mut balloon = BalloonManager::new(
        BalloonConfig {
            min_frames: 100,
            step_frames: 200,
            window: 4,
        },
        [(VmId(1), 400), (VmId(2), 1200)],
    );

    let mut hyp = Hypervisor::new(TMEM_PAGES, mm.initial_target(TMEM_PAGES));
    let cost = CostModel::hdd();
    let mut disk = SharedDisk::default();
    let mut relay = Dom0Tkm::new();
    let mut inj = FaultInjector::disabled();
    let mut kernels = Vec::new();
    for (id, frames) in [(1u32, 400u64), (2, 1200)] {
        let vm = VmId(id);
        hyp.register_vm(VmConfig::new(
            vm,
            format!("VM{id}"),
            (frames + 20) * 4096,
            1,
        ));
        let tkm = GuestTkm::init(&mut hyp, vm, PoolKind::Persistent).unwrap();
        let mut k = GuestKernel::new(GuestConfig {
            vm,
            ram_pages: frames + 20,
            os_reserved_pages: 20,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        k.attach_frontswap(tkm.pool());
        kernels.push(k);
    }
    // VM1's working set: 900 pages against 400 frames.
    let hot = kernels[0].alloc(900);

    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "t[s]", "VM1 frames", "VM2 frames", "VM1 tmem", "failed puts", "balloon"
    );
    let mut now = SimTime::ZERO;
    for second in 0..40u64 {
        let mut budget = StepBudget::new(SimDuration::from_secs(3600));
        {
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now,
                budget: &mut budget,
            };
            for t in 0..900u64 {
                kernels[0].touch(hot.offset((second * 389 + t) % 900), t % 4 == 0, &mut m);
            }
        }
        now += SimDuration::from_secs(1);
        let snap = hyp.sample(now);
        relay.deliver_stats(snap, NetlinkFate::Deliver);
        let snap = relay.take_stats().expect("delivered");
        if let Some((seq, targets)) = mm.on_stats(&snap) {
            relay.forward_targets(&mut hyp, &mut inj, seq, &targets);
        }
        let mut moved = String::from("-");
        if let Some(advice) = balloon.on_stats(&snap.stats) {
            // Apply the transfer to both guests.
            let mut budget = StepBudget::new(SimDuration::from_secs(3600));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now,
                budget: &mut budget,
            };
            let from = (advice.from.0 - 1) as usize;
            let to = (advice.to.0 - 1) as usize;
            let from_frames = kernels[from].current_frames() - advice.pages;
            let to_frames = kernels[to].current_frames() + advice.pages;
            kernels[from].balloon_resize(from_frames, &mut m);
            kernels[to].balloon_resize(to_frames, &mut m);
            moved = format!("{}→{} {}pg", advice.from, advice.to, advice.pages);
        }
        if second % 4 == 3 || moved != "-" {
            println!(
                "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10}",
                second + 1,
                kernels[0].current_frames(),
                kernels[1].current_frames(),
                hyp.tmem_used_by(VmId(1)),
                snap.stats.vms[0].puts_total - snap.stats.vms[0].puts_succ,
                moved
            );
        }
    }
    println!(
        "\nballoon decisions: {}; VM1 ends with {} frames (working set 900).",
        balloon.decisions(),
        kernels[0].current_frames()
    );
    println!("tmem bridged the gap during the seconds ballooning needed to react.");
}
