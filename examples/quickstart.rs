//! Quickstart: run one of the paper's scenarios under two policies and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the full simulated node (hypervisor + tmem pool + three guest
//! kernels + the SmarTmem Memory Manager), runs Table II's Scenario 2 at
//! 1/8 of the paper's memory sizes under `greedy` (stock Xen) and
//! `smart-alloc(6%)` (the paper's best policy for this scenario), and
//! prints per-VM running times plus the tmem traffic behind them.

use smartmem::policies::PolicyKind;
use smartmem::scenarios::{run_scenario, RunConfig, ScenarioKind};

fn main() {
    let cfg = RunConfig {
        scale: 0.125, // 1/8 of the paper's memory sizes; try 1.0 for full
        seed: 42,
        ..RunConfig::default()
    };

    println!("SmarTmem quickstart — Scenario 2 (graph-analytics × 3, VM3 +30s)");
    println!(
        "scale {} → tmem {} MiB, VMs 512·scale MiB\n",
        cfg.scale,
        1024.0 * cfg.scale
    );

    for policy in [PolicyKind::Greedy, PolicyKind::SmartAlloc { p: 6.0 }] {
        let r = run_scenario(ScenarioKind::Scenario2, policy, &cfg);
        println!(
            "policy {:<18} (MM sent {} target updates over {} cycles)",
            r.policy, r.mm_transmissions, r.mm_cycles
        );
        for vm in &r.vm_results {
            let t = vm.completions()[0];
            let s = &vm.kernel_stats;
            println!(
                "  {}: {:>9}  | tmem hits {:>7}  disk faults {:>6}  failed puts {:>6}",
                vm.name,
                t.to_string(),
                s.tmem_faults,
                s.disk_faults,
                s.failed_puts
            );
        }
        println!();
    }

    println!("Things to try:");
    println!("  * PolicyKind::NoTmem — the everything-to-disk baseline");
    println!("  * cfg.scale = 1.0    — the paper's full memory sizes");
    println!("  * the CLI: cargo run --release -p smartmem-bench --bin smartmem-cli -- fig 5");
}
