//! Writing your own tmem management policy.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```
//!
//! The paper's conclusion calls SmarTmem "a framework and baseline for
//! future development of more sophisticated tmem memory policies". This
//! example is that extension point in action: a **demand-proportional**
//! policy — each VM's target is proportional to its failed puts over a
//! sliding window (instead of smart-alloc's fixed ±P% steps) — plugged
//! into the same Memory Manager, hypervisor and guest stack as the paper's
//! policies, and compared against them on a two-phase workload.

use smartmem::guest::budget::StepBudget;
use smartmem::guest::disk::SharedDisk;
use smartmem::guest::kernel::{GuestConfig, GuestKernel};
use smartmem::guest::machine::Machine;
use smartmem::guest::tkm::{Dom0Tkm, GuestTkm};
use smartmem::policies::policy::Policy;
use smartmem::policies::{MemoryManager, SmartAlloc, SmartAllocConfig};
use smartmem::sim::cost::CostModel;
use smartmem::sim::faults::{FaultInjector, NetlinkFate};
use smartmem::sim::time::{SimDuration, SimTime};
use smartmem::tmem::backend::PoolKind;
use smartmem::tmem::key::VmId;
use smartmem::tmem::stats::{MemStats, MmTarget};
use smartmem::xen::hypervisor::Hypervisor;
use smartmem::xen::vm::VmConfig;
use std::collections::HashMap;

/// Targets proportional to each VM's recent failed puts, with a small
/// floor so idle VMs can re-enter smoothly.
struct DemandShare {
    window: HashMap<VmId, f64>,
    decay: f64,
}

impl DemandShare {
    fn new() -> Self {
        DemandShare {
            window: HashMap::new(),
            decay: 0.7,
        }
    }
}

impl Policy for DemandShare {
    fn name(&self) -> String {
        "demand-share".into()
    }

    fn initial_target(&self, _total_tmem: u64) -> u64 {
        0
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        // Exponentially-decayed failed-put score per VM.
        for vm in &stats.vms {
            let e = self.window.entry(vm.vm_id).or_insert(0.0);
            *e = *e * self.decay + vm.failed_puts() as f64;
        }
        let floor = (stats.node.total_tmem / 50).max(1) as f64; // 2% floor
        let scores: Vec<f64> = stats
            .vms
            .iter()
            .map(|vm| self.window[&vm.vm_id].max(0.0) + 1.0)
            .collect();
        let sum: f64 = scores.iter().sum();
        stats
            .vms
            .iter()
            .zip(scores)
            .map(|(vm, score)| MmTarget {
                vm_id: vm.vm_id,
                mm_target: ((stats.node.total_tmem as f64 - 3.0 * floor) * score / sum + floor)
                    as u64,
            })
            .collect()
    }
}

fn main() {
    println!("custom policy demo: demand-share vs smart-alloc(2%)\n");
    for (name, mm) in [
        (
            "demand-share",
            MemoryManager::new(Box::new(DemandShare::new()) as Box<dyn Policy>, 32),
        ),
        (
            "smart-alloc(2%)",
            MemoryManager::new(
                Box::new(SmartAlloc::new(SmartAllocConfig::with_percent(2.0))),
                32,
            ),
        ),
    ] {
        let total = run_with(mm);
        println!("{name:<16} -> simulated completion {total}\n");
    }
}

/// A miniature hand-rolled experiment: two guests with phase-shifted
/// demand hammer a small pool; the MM runs every simulated second.
fn run_with(mut mm: MemoryManager) -> SimDuration {
    const TMEM_PAGES: u64 = 600;
    let initial = mm.initial_target(TMEM_PAGES);
    let mut hyp = Hypervisor::new(TMEM_PAGES, initial);
    let cost = CostModel::hdd();
    let mut disk = SharedDisk::default();
    let mut relay = Dom0Tkm::new();
    let mut inj = FaultInjector::disabled();

    let mut kernels: Vec<GuestKernel> = Vec::new();
    for id in 1..=2u32 {
        let vm = VmId(id);
        hyp.register_vm(VmConfig::new(vm, format!("VM{id}"), 400 * 4096, 1));
        let tkm = GuestTkm::init(&mut hyp, vm, PoolKind::Persistent).unwrap();
        let mut k = GuestKernel::new(GuestConfig {
            vm,
            ram_pages: 300,
            os_reserved_pages: 20,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        k.attach_frontswap(tkm.pool());
        kernels.push(k);
    }
    let bases: Vec<_> = kernels.iter_mut().map(|k| k.alloc(800)).collect();

    let mut now = SimTime::ZERO;
    let mut total_work = SimDuration::ZERO;
    for second in 0..60u64 {
        // Phase-shifted demand: VM1 heavy in the first half, VM2 in the
        // second; the adaptive policies should follow the hand-over.
        for (i, kernel) in kernels.iter_mut().enumerate() {
            let heavy = (second < 30) == (i == 0);
            let touches: u64 = if heavy { 700 } else { 60 };
            let mut budget = StepBudget::new(SimDuration::from_secs(3600));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now,
                budget: &mut budget,
            };
            for t in 0..touches {
                let page = bases[i].offset((second * 131 + t * 17) % 800);
                kernel.touch(page, t % 3 == 0, &mut m);
            }
            total_work += budget.compute + budget.io_wait;
        }
        now += SimDuration::from_secs(1);
        let snap = hyp.sample(now);
        relay.deliver_stats(snap, NetlinkFate::Deliver);
        let snap = relay.take_stats().expect("just delivered");
        if let Some((seq, targets)) = mm.on_stats(&snap) {
            relay.forward_targets(&mut hyp, &mut inj, seq, &targets);
        }
    }
    println!(
        "  targets at end: VM1={:?} VM2={:?}; tmem used: VM1={} VM2={}",
        hyp.target_of(VmId(1)),
        hyp.target_of(VmId(2)),
        hyp.tmem_used_by(VmId(1)),
        hyp.tmem_used_by(VmId(2)),
    );
    total_work
}
