//! How much does intelligent tmem management matter as the swap device
//! gets faster?
//!
//! ```text
//! cargo run --release --example nvm_backend
//! ```
//!
//! The paper's related work (Venkatesan et al., Ex-Tmem) puts tmem in
//! front of non-volatile memory instead of a disk. This example reruns
//! Scenario 2 under greedy and smart-alloc across three backing-store
//! latency models — spinning disk (the paper's testbed), SATA SSD, and
//! NVM — showing that the *value of policy* is a function of the
//! tmem-vs-swap latency gap: with NVM swap, even the greedy default is
//! nearly fine, which is part of why tmem faded as flash got fast.

use smartmem::policies::PolicyKind;
use smartmem::scenarios::{run_scenario, RunConfig, ScenarioKind};
use smartmem::sim::cost::CostModel;

fn main() {
    println!("backing-store sensitivity — Scenario 2, greedy vs smart-alloc(6%)\n");
    println!(
        "{:<6} {:>14} {:>14} {:>16}",
        "store", "greedy", "smart-alloc", "policy benefit"
    );
    for (name, cost) in [
        ("hdd", CostModel::hdd()),
        ("ssd", CostModel::ssd()),
        ("nvm", CostModel::nvm()),
    ] {
        let cfg = RunConfig {
            scale: 0.08,
            seed: 11,
            cost,
            ..RunConfig::default()
        };
        let greedy = makespan(&cfg, PolicyKind::Greedy);
        let smart = makespan(&cfg, PolicyKind::SmartAlloc { p: 6.0 });
        let benefit = 100.0 * (greedy - smart) / greedy;
        println!("{name:<6} {greedy:>13.2}s {smart:>13.2}s {benefit:>15.1}%");
    }
    println!("\nThe gap collapses as the swap device approaches tmem's speed —");
    println!("the Ex-Tmem observation, reproduced.");
}

fn makespan(cfg: &RunConfig, policy: PolicyKind) -> f64 {
    run_scenario(ScenarioKind::Scenario2, policy, cfg)
        .end_time
        .as_secs_f64()
}
