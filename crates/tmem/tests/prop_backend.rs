//! Property tests: the tmem backend behaves as a capacity-bounded map.
//!
//! A reference model (plain `HashMap`) runs the same operation sequence;
//! the backend must agree on every observable, and its accounting
//! invariants must hold after every step.

use proptest::prelude::*;
use std::collections::HashMap;
use tmem::backend::{accounting_consistent, PoolKind, TmemBackend};
use tmem::error::TmemError;
use tmem::key::{ObjectId, PageIndex, PoolId, VmId};
use tmem::page::Fingerprint;

#[derive(Debug, Clone)]
enum Op {
    Put {
        pool: u8,
        obj: u8,
        idx: u8,
        val: u64,
    },
    Get {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushPage {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushObject {
        pool: u8,
        obj: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2u8, 0..3u8, 0..16u8, any::<u64>()).prop_map(|(pool, obj, idx, val)| Op::Put {
            pool,
            obj,
            idx,
            val
        }),
        (0..2u8, 0..3u8, 0..16u8).prop_map(|(pool, obj, idx)| Op::Get { pool, obj, idx }),
        (0..2u8, 0..3u8, 0..16u8).prop_map(|(pool, obj, idx)| Op::FlushPage { pool, obj, idx }),
        (0..2u8, 0..3u8).prop_map(|(pool, obj)| Op::FlushObject { pool, obj }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Persistent pools: byte-exact agreement with a HashMap model under
    /// arbitrary op sequences, plus accounting invariants.
    #[test]
    fn persistent_backend_agrees_with_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1u64..40,
    ) {
        let mut backend: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
        let p0 = backend.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p1 = backend.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        let pools = [p0, p1];
        let mut model: HashMap<(PoolId, u64, u32), u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { pool, obj, idx, val } => {
                    let pool = pools[pool as usize];
                    let key = (pool, u64::from(obj), u32::from(idx));
                    let r = backend.put(
                        pool,
                        ObjectId(u64::from(obj)),
                        PageIndex::from(idx),
                        Fingerprint(val),
                    );
                    match r {
                        Ok(_) => {
                            model.insert(key, val);
                        }
                        Err(TmemError::NoCapacity) => {
                            // Full node and a fresh key: model unchanged.
                            prop_assert!(!model.contains_key(&key));
                            prop_assert_eq!(backend.free_pages(), 0);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Get { pool, obj, idx } => {
                    let pool = pools[pool as usize];
                    let key = (pool, u64::from(obj), u32::from(idx));
                    let got = backend.get(pool, ObjectId(u64::from(obj)), PageIndex::from(idx));
                    match model.remove(&key) {
                        // Exclusive get: model entry removed on hit.
                        Some(v) => prop_assert_eq!(got, Ok(Fingerprint(v))),
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::FlushPage { pool, obj, idx } => {
                    let pool = pools[pool as usize];
                    let key = (pool, u64::from(obj), u32::from(idx));
                    let removed = backend
                        .flush_page(pool, ObjectId(u64::from(obj)), PageIndex::from(idx))
                        .unwrap();
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
                Op::FlushObject { pool, obj } => {
                    let pool = pools[pool as usize];
                    let n = backend.flush_object(pool, ObjectId(u64::from(obj))).unwrap();
                    let before = model.len();
                    model.retain(|&(p, o, _), _| !(p == pool && o == u64::from(obj)));
                    prop_assert_eq!(n as usize, before - model.len());
                }
            }
            // Invariants after every operation.
            prop_assert_eq!(backend.used() as usize, model.len());
            prop_assert!(backend.used() <= backend.capacity());
            prop_assert!(accounting_consistent(&backend));
            let by_vm = backend.used_by(VmId(1)) + backend.used_by(VmId(2));
            prop_assert_eq!(by_vm, backend.used());
        }
    }

    /// Ephemeral pools may drop pages but must never fabricate them: every
    /// successful get returns exactly the last value put under that key.
    #[test]
    fn ephemeral_backend_never_fabricates(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1u64..20,
    ) {
        let mut backend: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
        let e0 = backend.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        let e1 = backend.new_pool(VmId(2), PoolKind::Ephemeral).unwrap();
        let pools = [e0, e1];
        // Model: last value written per key (pages may vanish any time).
        let mut last: HashMap<(PoolId, u64, u32), u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { pool, obj, idx, val } => {
                    let pool = pools[pool as usize];
                    if backend
                        .put(pool, ObjectId(u64::from(obj)), PageIndex::from(idx), Fingerprint(val))
                        .is_ok()
                    {
                        last.insert((pool, u64::from(obj), u32::from(idx)), val);
                    }
                }
                Op::Get { pool, obj, idx } => {
                    let pool = pools[pool as usize];
                    if let Ok(v) = backend.get(pool, ObjectId(u64::from(obj)), PageIndex::from(idx)) {
                        let expect = last.get(&(pool, u64::from(obj), u32::from(idx)));
                        prop_assert_eq!(Some(&v.0), expect, "stale or fabricated page");
                    }
                }
                Op::FlushPage { pool, obj, idx } => {
                    let pool = pools[pool as usize];
                    backend
                        .flush_page(pool, ObjectId(u64::from(obj)), PageIndex::from(idx))
                        .unwrap();
                    last.remove(&(pool, u64::from(obj), u32::from(idx)));
                }
                Op::FlushObject { pool, obj } => {
                    let pool = pools[pool as usize];
                    backend.flush_object(pool, ObjectId(u64::from(obj))).unwrap();
                    last.retain(|&(p, o, _), _| !(p == pool && o == u64::from(obj)));
                }
            }
            prop_assert!(backend.used() <= backend.capacity());
            prop_assert!(accounting_consistent(&backend));
        }
    }

    /// Destroying a pool returns every frame it held.
    #[test]
    fn destroy_pool_conserves_frames(
        puts in proptest::collection::vec((0..4u8, 0..64u8), 1..80),
        capacity in 1u64..64,
    ) {
        let mut backend: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
        let p0 = backend.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p1 = backend.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        for (obj, idx) in puts {
            let _ = backend.put(p0, ObjectId(u64::from(obj)), PageIndex::from(idx), Fingerprint(1));
            let _ = backend.put(p1, ObjectId(u64::from(obj)), PageIndex::from(idx), Fingerprint(2));
        }
        let used = backend.used();
        let freed0 = backend.destroy_pool(p0).unwrap();
        let freed1 = backend.destroy_pool(p1).unwrap();
        prop_assert_eq!(freed0 + freed1, used);
        prop_assert_eq!(backend.used(), 0);
        prop_assert_eq!(backend.free_pages(), capacity);
    }
}
