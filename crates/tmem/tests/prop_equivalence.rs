//! Differential property test: the flat-map fast-path backend must be
//! observably indistinguishable from the original nested-`BTreeMap`
//! implementation ([`tmem::reference::ReferenceBackend`]).
//!
//! Random operation sequences — puts, gets, flushes, object flushes,
//! persistent reclaim and pool teardown, over a mix of persistent and
//! ephemeral pools at tight capacities that force evictions — are driven
//! through both stores in lockstep. Every return value must agree,
//! including the *identity* of evicted ephemeral pages
//! (`PutOutcome::StoredAfterEviction`) and the exact persistent reclaim
//! victim stream, since figure output depends on those orders.

use proptest::prelude::*;
use sim_core::faults::{FaultInjector, FaultProfile, SampleFate};
use tmem::backend::{accounting_consistent, PoolKind, TmemBackend};
use tmem::key::{ObjectId, PageIndex, PoolId, VmId};
use tmem::page::Fingerprint;
use tmem::reference::ReferenceBackend;

#[derive(Debug, Clone)]
enum Op {
    Put {
        pool: u8,
        obj: u8,
        idx: u8,
        val: u64,
    },
    Get {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushPage {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushObject {
        pool: u8,
        obj: u8,
    },
    Reclaim {
        pool: u8,
        max: u8,
    },
    DestroyPool {
        pool: u8,
    },
}

/// Operation mix with explicit weights, so besides the balanced default
/// the suite can skew toward the bulk teardown paths (`flush_object`,
/// `destroy_pool`) whose per-object index rewrite made them O(pages
/// touched).
fn weighted_op_strategy(
    put: u32,
    get: u32,
    flush_page: u32,
    flush_object: u32,
    reclaim: u32,
    destroy: u32,
) -> impl Strategy<Value = Op> {
    prop_oneof![
        put => (0..4u8, 0..3u8, 0..16u8, any::<u64>())
            .prop_map(|(pool, obj, idx, val)| Op::Put { pool, obj, idx, val }),
        get => (0..4u8, 0..3u8, 0..16u8).prop_map(|(pool, obj, idx)| Op::Get { pool, obj, idx }),
        flush_page => (0..4u8, 0..3u8, 0..16u8)
            .prop_map(|(pool, obj, idx)| Op::FlushPage { pool, obj, idx }),
        flush_object => (0..4u8, 0..3u8).prop_map(|(pool, obj)| Op::FlushObject { pool, obj }),
        reclaim => (0..2u8, 1..6u8).prop_map(|(pool, max)| Op::Reclaim { pool, max }),
        destroy => (0..4u8).prop_map(|pool| Op::DestroyPool { pool }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    weighted_op_strategy(8, 4, 3, 2, 2, 1)
}

/// Drive one operation sequence through both backends in lockstep,
/// asserting every observable agrees after every step. With
/// `recreate_destroyed`, a destroyed pool is immediately re-created (in
/// both backends, with id agreement asserted) so destroy-heavy mixes keep
/// exercising live-pool traffic instead of degenerating into `NoSuchPool`
/// agreement checks.
fn drive_lockstep(
    ops: Vec<Op>,
    capacity: u64,
    recreate_destroyed: bool,
) -> Result<(), TestCaseError> {
    let mut fast: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
    let mut refr: ReferenceBackend<Fingerprint> = ReferenceBackend::new(capacity);
    let kinds = [
        (VmId(1), PoolKind::Persistent),
        (VmId(2), PoolKind::Persistent),
        (VmId(1), PoolKind::Ephemeral),
        (VmId(2), PoolKind::Ephemeral),
    ];
    let mut pools: Vec<PoolId> = Vec::new();
    for (vm, kind) in kinds {
        let a = fast.new_pool(vm, kind).unwrap();
        let b = refr.new_pool(vm, kind).unwrap();
        prop_assert_eq!(a, b, "pool id allocation must agree");
        pools.push(a);
    }
    let mut destroyed = [false; 4];

    for op in ops {
        match op {
            Op::Put {
                pool,
                obj,
                idx,
                val,
            } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                let payload = Fingerprint::of(val, 0);
                prop_assert_eq!(
                    fast.put(p, o, i, payload),
                    refr.put(p, o, i, payload),
                    "put({:?},{:?},{})",
                    p,
                    o,
                    i
                );
            }
            Op::Get { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                prop_assert_eq!(
                    fast.get(p, o, i),
                    refr.get(p, o, i),
                    "get({:?},{:?},{})",
                    p,
                    o,
                    i
                );
            }
            Op::FlushPage { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                prop_assert_eq!(fast.flush_page(p, o, i), refr.flush_page(p, o, i));
            }
            Op::FlushObject { pool, obj } => {
                let p = pools[pool as usize];
                let o = ObjectId(obj as u64);
                prop_assert_eq!(fast.flush_object(p, o), refr.flush_object(p, o));
            }
            Op::Reclaim { pool, max } => {
                let p = pools[pool as usize];
                if destroyed[pool as usize] {
                    continue; // reference reclaim asserts pool kind
                }
                prop_assert_eq!(
                    fast.reclaim_oldest_persistent(p, max as u64),
                    refr.reclaim_oldest_persistent(p, max as u64),
                    "reclaim victim streams diverged"
                );
            }
            Op::DestroyPool { pool } => {
                let p = pools[pool as usize];
                prop_assert_eq!(fast.destroy_pool(p), refr.destroy_pool(p));
                destroyed[pool as usize] = true;
                if recreate_destroyed {
                    let (vm, kind) = kinds[pool as usize];
                    let a = fast.new_pool(vm, kind).unwrap();
                    let b = refr.new_pool(vm, kind).unwrap();
                    prop_assert_eq!(a, b, "recreated pool ids must agree");
                    pools[pool as usize] = a;
                    destroyed[pool as usize] = false;
                }
            }
        }
        // Node-level observables after every step.
        prop_assert_eq!(fast.used(), refr.used());
        prop_assert_eq!(fast.free_pages(), refr.free_pages());
        prop_assert_eq!(fast.evictions(), refr.evictions());
        prop_assert_eq!(fast.used_by(VmId(1)), refr.used_by(VmId(1)));
        prop_assert_eq!(fast.used_by(VmId(2)), refr.used_by(VmId(2)));
        prop_assert!(accounting_consistent(&fast));
    }

    // Final sweep: page-level agreement over the whole key space.
    for (pi, &p) in pools.iter().enumerate() {
        prop_assert_eq!(fast.pool_page_count(p), refr.pool_page_count(p));
        if destroyed[pi] {
            continue;
        }
        for obj in 0..3u64 {
            for idx in 0..16u32 {
                prop_assert_eq!(
                    fast.contains(p, ObjectId(obj), idx),
                    refr.contains(p, ObjectId(obj), idx),
                    "contains({:?},{},{})",
                    p,
                    obj,
                    idx
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pools 0–1 persistent (VM1/VM2), pools 2–3 ephemeral (VM1/VM2).
    /// `Reclaim` only targets persistent pools, matching the hypervisor's
    /// use; everything else hits all four.
    #[test]
    fn fast_backend_matches_reference_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..160),
        capacity in 1u64..24,
    ) {
        drive_lockstep(ops, capacity, false)?;
    }

    /// Flush-heavy mix — 7/18 of operations are `FlushObject` and
    /// another 2/18 `FlushPage` (≥25% flush traffic), hammering the
    /// per-object index drain and its queue-tombstone interaction.
    #[test]
    fn flush_heavy_mix_matches_reference(
        ops in proptest::collection::vec(weighted_op_strategy(5, 2, 2, 7, 1, 1), 1..160),
        capacity in 1u64..24,
    ) {
        drive_lockstep(ops, capacity, false)?;
    }

    /// Destroy-heavy mix — 5/18 of operations tear a whole pool down
    /// (plus 5/18 flush ops); destroyed pools are re-created on the spot
    /// so the stream keeps hitting live pools and fresh pool ids.
    #[test]
    fn destroy_pool_heavy_mix_matches_reference(
        ops in proptest::collection::vec(weighted_op_strategy(5, 2, 2, 3, 1, 5), 1..160),
        capacity in 1u64..24,
    ) {
        drive_lockstep(ops, capacity, true)?;
    }

    /// Robustness satellite: the backends stay in lockstep when a random
    /// *fault schedule* perturbs the operation stream exactly the way the
    /// control plane's sample channel perturbs VIRQ samples — operations
    /// dropped, duplicated, or delayed one slot (a delayed op lands before
    /// the next one, mirroring [`SampleFate::Delay`]'s one-slot buffer).
    /// Both backends see the *same* perturbed stream, so every observable
    /// must still agree, and — the chaos suite's core invariant — tmem
    /// accounting must stay consistent after every step no matter what the
    /// schedule does: `used ≤ capacity` and per-VM usage sums to the total.
    #[test]
    fn backends_agree_under_randomized_fault_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1u64..24,
        fault_seed in any::<u64>(),
        drop_p in 0.0f64..0.4,
        delay_p in 0.0f64..0.2,
        dup_p in 0.0f64..0.2,
    ) {
        let profile = FaultProfile {
            virq_drop: drop_p,
            virq_delay: delay_p,
            virq_duplicate: dup_p,
            ..FaultProfile::none()
        };
        prop_assert!(profile.validate().is_ok());
        let mut inj = FaultInjector::new(profile, fault_seed);

        let mut fast: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
        let mut refr: ReferenceBackend<Fingerprint> = ReferenceBackend::new(capacity);
        let kinds = [
            (VmId(1), PoolKind::Persistent),
            (VmId(2), PoolKind::Persistent),
            (VmId(1), PoolKind::Ephemeral),
            (VmId(2), PoolKind::Ephemeral),
        ];
        let mut pools: Vec<PoolId> = Vec::new();
        for (vm, kind) in kinds {
            let a = fast.new_pool(vm, kind).unwrap();
            let b = refr.new_pool(vm, kind).unwrap();
            prop_assert_eq!(a, b);
            pools.push(a);
        }
        let mut destroyed = [false; 4];

        let mut delayed: Option<Op> = None;
        for op in ops {
            // The fault schedule decides this op's fate; a previously
            // delayed op is flushed first, like the sample channel.
            let mut batch: Vec<Op> = delayed.take().into_iter().collect();
            match inj.sample_fate() {
                SampleFate::Deliver => batch.push(op),
                SampleFate::Drop => {}
                SampleFate::Delay => delayed = Some(op),
                SampleFate::Duplicate => {
                    batch.push(op.clone());
                    batch.push(op);
                }
            }
            for op in batch {
                match op {
                    Op::Put { pool, obj, idx, val } => {
                        let p = pools[pool as usize];
                        let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                        let payload = Fingerprint::of(val, 0);
                        prop_assert_eq!(fast.put(p, o, i, payload), refr.put(p, o, i, payload));
                    }
                    Op::Get { pool, obj, idx } => {
                        let p = pools[pool as usize];
                        let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                        prop_assert_eq!(fast.get(p, o, i), refr.get(p, o, i));
                    }
                    Op::FlushPage { pool, obj, idx } => {
                        let p = pools[pool as usize];
                        let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                        prop_assert_eq!(fast.flush_page(p, o, i), refr.flush_page(p, o, i));
                    }
                    Op::FlushObject { pool, obj } => {
                        let p = pools[pool as usize];
                        let o = ObjectId(obj as u64);
                        prop_assert_eq!(fast.flush_object(p, o), refr.flush_object(p, o));
                    }
                    Op::Reclaim { pool, max } => {
                        if destroyed[pool as usize] {
                            continue;
                        }
                        let p = pools[pool as usize];
                        prop_assert_eq!(
                            fast.reclaim_oldest_persistent(p, max as u64),
                            refr.reclaim_oldest_persistent(p, max as u64)
                        );
                    }
                    Op::DestroyPool { pool } => {
                        let p = pools[pool as usize];
                        prop_assert_eq!(fast.destroy_pool(p), refr.destroy_pool(p));
                        destroyed[pool as usize] = true;
                    }
                }
                // Accounting holds after every delivered operation.
                prop_assert_eq!(fast.used(), refr.used());
                prop_assert!(accounting_consistent(&fast));
                prop_assert!(fast.used() <= capacity, "used exceeds capacity");
                prop_assert_eq!(
                    fast.used_by(VmId(1)) + fast.used_by(VmId(2)),
                    fast.used(),
                    "per-VM usage must sum to the node total"
                );
            }
        }
        // Whatever the schedule injected, the ledger only ever counted
        // fates it actually drew.
        let l = inj.ledger();
        prop_assert_eq!(
            l.injected(),
            l.samples_dropped + l.samples_delayed + l.samples_duplicated
        );
    }
}
