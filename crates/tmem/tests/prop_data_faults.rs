//! Differential property test for the data-plane integrity layer: the
//! fast backend under random *corruption and loss schedules* against the
//! reference backend holding the uncorrupted truth.
//!
//! The reference backend never sees the faults — it is the content
//! oracle. A model set tracks which stored keys are currently corrupt in
//! the fast backend; every divergence the faults force (a dropped
//! ephemeral page, a withheld reclaim victim, a quarantined object) is
//! mirrored onto the reference with explicit flushes so occupancy stays
//! in lockstep. Under every schedule the core invariants must hold:
//!
//! * **correct-or-error** — a persistent get of a corrupt page returns
//!   [`TmemError::Corrupt`], repeatably, and never the wrong bytes; the
//!   page stays in place for deterministic retries.
//! * **correct-or-miss** — an ephemeral get of a corrupt page returns
//!   [`TmemError::Corrupt`] once, then the key is a clean miss.
//! * **clean reads are true reads** — every successful get returns
//!   exactly the reference backend's payload.
//! * **reclaim never launders corruption** — no reclaim victim delivered
//!   for swap writeback is ever a corrupted key.
//! * **the scrubber finds everything** — a scrub pass reports exactly
//!   the corrupt pages the model predicts, quarantines exactly the
//!   objects holding them in (pool, object) order, and leaves the store
//!   clean.
//! * **accounting stays consistent** after every operation
//!   ([`accounting_consistent`]), with per-VM usage summing to the node
//!   total.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tmem::backend::{accounting_consistent, PoolKind, PutOutcome, TmemBackend};
use tmem::error::TmemError;
use tmem::key::{ObjectId, PageIndex, PoolId, VmId};
use tmem::page::Fingerprint;
use tmem::reference::ReferenceBackend;

/// A stored key in model form: `(pool, object, index)`. Pool ids are
/// never reused, so keys of destroyed pools can simply be dropped.
type Key = (PoolId, ObjectId, PageIndex);

#[derive(Debug, Clone)]
enum Op {
    Put {
        pool: u8,
        obj: u8,
        idx: u8,
        val: u64,
    },
    Get {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushPage {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    FlushObject {
        pool: u8,
        obj: u8,
    },
    /// Persistent pools only (pools 0–1), like the hypervisor's slow path.
    Reclaim {
        pool: u8,
        max: u8,
    },
    /// Fault injection: cross-wire the page's bytes with a donor payload.
    Corrupt {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    /// Fault injection: silently drop an ephemeral page (pools 2–3).
    Lose {
        pool: u8,
        obj: u8,
        idx: u8,
    },
    /// Scrubber/auditor pass over the whole store.
    Scrub,
    DestroyPool {
        pool: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..4u8, 0..3u8, 0..12u8, any::<u64>())
            .prop_map(|(pool, obj, idx, val)| Op::Put { pool, obj, idx, val }),
        6 => (0..4u8, 0..3u8, 0..12u8).prop_map(|(pool, obj, idx)| Op::Get { pool, obj, idx }),
        2 => (0..4u8, 0..3u8, 0..12u8)
            .prop_map(|(pool, obj, idx)| Op::FlushPage { pool, obj, idx }),
        2 => (0..4u8, 0..3u8).prop_map(|(pool, obj)| Op::FlushObject { pool, obj }),
        2 => (0..2u8, 1..6u8).prop_map(|(pool, max)| Op::Reclaim { pool, max }),
        6 => (0..4u8, 0..3u8, 0..12u8)
            .prop_map(|(pool, obj, idx)| Op::Corrupt { pool, obj, idx }),
        2 => (2..4u8, 0..3u8, 0..12u8)
            .prop_map(|(pool, obj, idx)| Op::Lose { pool, obj, idx }),
        1 => Just(Op::Scrub),
        1 => (0..4u8).prop_map(|pool| Op::DestroyPool { pool }),
    ]
}

/// Run one scrub pass on `fast`, check it against the model, and mirror
/// the quarantines onto `refr`. On return the model set is empty.
fn scrub_and_mirror(
    fast: &mut TmemBackend<Fingerprint>,
    refr: &mut ReferenceBackend<Fingerprint>,
    corrupted: &mut BTreeSet<Key>,
) -> Result<(), TestCaseError> {
    let stored_before = fast.used();
    let report = fast.scrub();
    prop_assert!(report.accounting_ok, "scrub audit failed");
    prop_assert_eq!(
        report.pages_checked,
        stored_before,
        "scrub must check every page"
    );
    prop_assert_eq!(
        report.corrupt_pages,
        corrupted.len() as u64,
        "scrub must find exactly the model's corrupt pages"
    );
    // Quarantine order and identity: exactly the objects holding corrupt
    // pages, in (pool, object) order.
    let expected: Vec<(PoolId, ObjectId)> = corrupted
        .iter()
        .map(|&(p, o, _)| (p, o))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let got: Vec<(PoolId, ObjectId)> = report
        .quarantined
        .iter()
        .map(|q| (q.pool, q.object))
        .collect();
    prop_assert_eq!(got, expected, "quarantine stream diverged from the model");
    for q in &report.quarantined {
        // Mirror: the reference loses the same whole object, page counts
        // agreeing since occupancy was in lockstep.
        prop_assert_eq!(refr.flush_object(q.pool, q.object), Ok(q.pages));
    }
    corrupted.clear();
    Ok(())
}

fn drive(ops: Vec<Op>, capacity: u64) -> Result<(), TestCaseError> {
    let mut fast: TmemBackend<Fingerprint> = TmemBackend::new(capacity);
    let mut refr: ReferenceBackend<Fingerprint> = ReferenceBackend::new(capacity);
    fast.arm_corruption();
    let kinds = [
        (VmId(1), PoolKind::Persistent),
        (VmId(2), PoolKind::Persistent),
        (VmId(1), PoolKind::Ephemeral),
        (VmId(2), PoolKind::Ephemeral),
    ];
    let mut pools: Vec<PoolId> = Vec::new();
    for (vm, kind) in kinds {
        let a = fast.new_pool(vm, kind).unwrap();
        let b = refr.new_pool(vm, kind).unwrap();
        prop_assert_eq!(a, b, "pool id allocation must agree");
        pools.push(a);
    }

    // Keys currently stored with corrupt contents in `fast` (the
    // reference still holds their true bytes).
    let mut corrupted: BTreeSet<Key> = BTreeSet::new();
    let mut injected = 0u64;

    for op in ops {
        match op {
            Op::Put {
                pool,
                obj,
                idx,
                val,
            } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                let payload = Fingerprint::of(val, 0);
                let a = fast.put(p, o, i, payload);
                prop_assert_eq!(&a, &refr.put(p, o, i, payload), "put outcomes diverged");
                if a.is_ok() {
                    // A replace overwrites any pending corruption with
                    // fresh, clean contents.
                    corrupted.remove(&(p, o, i));
                }
                if let Ok(PutOutcome::StoredAfterEviction(k)) = a {
                    corrupted.remove(&(k.pool, k.object, k.index));
                }
            }
            Op::Get { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                if corrupted.contains(&(p, o, i)) {
                    match fast.pool_info(p).map(|(_, k)| k) {
                        Some(PoolKind::Persistent) => {
                            // Correct-or-error: the typed error, the same
                            // on retry, and the page stays in place.
                            prop_assert_eq!(fast.get(p, o, i), Err(TmemError::Corrupt));
                            prop_assert_eq!(fast.get(p, o, i), Err(TmemError::Corrupt));
                            prop_assert!(fast.contains(p, o, i), "corrupt page must stay");
                        }
                        Some(PoolKind::Ephemeral) => {
                            // Correct-or-miss: one typed error, then a
                            // clean miss; mirror the drop on the reference.
                            prop_assert_eq!(fast.get(p, o, i), Err(TmemError::Corrupt));
                            prop_assert_eq!(fast.get(p, o, i), Err(TmemError::NoSuchPage));
                            prop_assert_eq!(refr.flush_page(p, o, i), Ok(true));
                            corrupted.remove(&(p, o, i));
                        }
                        None => prop_assert!(false, "corrupted key in a dead pool"),
                    }
                } else {
                    // Clean reads are true reads: both outcome and payload
                    // must match the uncorrupted reference.
                    prop_assert_eq!(fast.get(p, o, i), refr.get(p, o, i), "clean get diverged");
                }
            }
            Op::FlushPage { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                prop_assert_eq!(fast.flush_page(p, o, i), refr.flush_page(p, o, i));
                corrupted.remove(&(p, o, i));
            }
            Op::FlushObject { pool, obj } => {
                let p = pools[pool as usize];
                let o = ObjectId(obj as u64);
                prop_assert_eq!(fast.flush_object(p, o), refr.flush_object(p, o));
                corrupted.retain(|&(kp, ko, _)| (kp, ko) != (p, o));
            }
            Op::Reclaim { pool, max } => {
                let p = pools[pool as usize];
                let victims = fast.reclaim_oldest_persistent(p, max as u64);
                for &(o, i) in &victims {
                    // A delivered victim is written to the owner's swap
                    // device — it must never be a corrupted page.
                    prop_assert!(
                        !corrupted.contains(&(p, o, i)),
                        "corrupt page delivered to swap writeback"
                    );
                    prop_assert_eq!(refr.flush_page(p, o, i), Ok(true));
                }
                // Corrupt victims are flushed but withheld; mirror their
                // removal so occupancy stays in lockstep.
                let withheld: Vec<Key> = corrupted
                    .iter()
                    .copied()
                    .filter(|&(kp, o, i)| kp == p && !fast.contains(kp, o, i))
                    .collect();
                for (kp, o, i) in withheld {
                    prop_assert_eq!(refr.flush_page(kp, o, i), Ok(true));
                    corrupted.remove(&(kp, o, i));
                }
            }
            Op::Corrupt { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                // Re-corrupting a still-corrupt page would merge two
                // injections into one eventual detection; the hypervisor
                // only corrupts freshly stored pages, so neither does the
                // model.
                if !corrupted.contains(&(p, o, i)) && fast.corrupt_page(p, o, i) {
                    corrupted.insert((p, o, i));
                    injected += 1;
                }
            }
            Op::Lose { pool, obj, idx } => {
                let p = pools[pool as usize];
                let (o, i) = (ObjectId(obj as u64), idx as PageIndex);
                // Silent ephemeral loss is a plain drop on both sides —
                // invisible to the caller, visible only as a future miss.
                if fast.contains(p, o, i) {
                    prop_assert_eq!(fast.flush_page(p, o, i), Ok(true));
                    prop_assert_eq!(refr.flush_page(p, o, i), Ok(true));
                    corrupted.remove(&(p, o, i));
                }
            }
            Op::Scrub => scrub_and_mirror(&mut fast, &mut refr, &mut corrupted)?,
            Op::DestroyPool { pool } => {
                let p = pools[pool as usize];
                prop_assert_eq!(fast.destroy_pool(p), refr.destroy_pool(p));
                corrupted.retain(|&(kp, _, _)| kp != p);
                // Recreate on the spot so the stream keeps hitting live
                // pools; pool ids are never reused, so stale model keys
                // cannot collide.
                let (vm, kind) = kinds[pool as usize];
                let a = fast.new_pool(vm, kind).unwrap();
                let b = refr.new_pool(vm, kind).unwrap();
                prop_assert_eq!(a, b, "recreated pool ids must agree");
                pools[pool as usize] = a;
            }
        }
        // Accounting lockstep after every operation, faults or not.
        prop_assert_eq!(fast.used(), refr.used(), "occupancy diverged");
        prop_assert_eq!(fast.used_by(VmId(1)), refr.used_by(VmId(1)));
        prop_assert_eq!(fast.used_by(VmId(2)), refr.used_by(VmId(2)));
        prop_assert!(accounting_consistent(&fast));
        prop_assert!(fast.used() <= capacity, "used exceeds capacity");
        prop_assert_eq!(
            fast.used_by(VmId(1)) + fast.used_by(VmId(2)),
            fast.used(),
            "per-VM usage must sum to the node total"
        );
    }

    // Final audit: one scrub pass cleans every outstanding corruption,
    // and a second pass over the (now clean) store finds nothing.
    scrub_and_mirror(&mut fast, &mut refr, &mut corrupted)?;
    let second = fast.scrub();
    prop_assert_eq!(second.corrupt_pages, 0, "scrub must leave the store clean");
    prop_assert!(second.quarantined.is_empty());
    prop_assert_eq!(second.pages_checked, fast.used());
    // Detections never exceed injections: each injected instance is
    // flagged (counted) at most once, however it leaves the store.
    prop_assert!(
        fast.integrity().detections <= injected,
        "detections {} > injections {}",
        fast.integrity().detections,
        injected
    );
    // Page-level agreement over the whole key space.
    for &p in &pools {
        prop_assert_eq!(fast.pool_page_count(p), refr.pool_page_count(p));
        for obj in 0..3u64 {
            for idx in 0..12u32 {
                prop_assert_eq!(
                    fast.contains(p, ObjectId(obj), idx),
                    refr.contains(p, ObjectId(obj), idx),
                    "contains({:?},{},{})",
                    p,
                    obj,
                    idx
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pools 0–1 persistent (VM1/VM2), pools 2–3 ephemeral (VM1/VM2),
    /// tight capacities forcing evictions, ~1/3 of operations injecting
    /// data-plane faults.
    #[test]
    fn backend_integrity_invariants_hold_under_random_fault_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..160),
        capacity in 1u64..24,
    ) {
        drive(ops, capacity)?;
    }
}
