//! Deterministic fast hashing for the tmem datapath.
//!
//! The datapath's hot maps are keyed by small fixed-size integers
//! (`(ObjectId, PageIndex)`, `PoolId`, `VmId`). `std`'s default SipHash is
//! both slower than necessary for such keys and randomly seeded per
//! process, which would make any accidental iteration-order dependence
//! nondeterministic. This module provides the Fx hash function (the
//! multiply-rotate hash used by rustc's `FxHashMap`) behind `std`'s
//! `HashMap`/`HashSet`:
//!
//! * ~5–10× cheaper than SipHash on 8–16 byte keys,
//! * deterministic across processes and runs — the experiment engine's
//!   byte-identical-output guarantee never depends on a per-process seed.
//!
//! Anything order-sensitive must still sort before iterating; determinism
//! of the *hash* keeps mistakes reproducible, not correct.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash (Firefox/rustc): a 64-bit odd constant with
/// good bit dispersion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: rotate–xor–multiply per word. Not DoS-resistant — do not
/// expose to untrusted keys (simulation state only).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Deterministic builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of((7u64, 9u32)), hash_of((7u64, 9u32)));
        assert_ne!(hash_of((7u64, 9u32)), hash_of((9u64, 7u32)));
    }

    #[test]
    fn byte_writes_match_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_are_usable() {
        let mut m: FxHashMap<(u64, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }
}
