//! The tmem key–value page store.
//!
//! Semantics follow Xen's `common/tmem.c` as described in the paper and in
//! Magenheimer et al. (OLS 2009):
//!
//! * **Persistent pools (frontswap).** A successful `put` consumes one page
//!   frame; `get` is *exclusive* — it returns the page and frees the frame
//!   (a swap slot is read back exactly once before being invalidated).
//!   When no frame is free the put fails and the guest falls back to disk.
//! * **Ephemeral pools (cleancache).** Pages are a cache of clean pagecache
//!   data: `get` returns a copy and leaves the page, and when the node is
//!   out of frames a new ephemeral put may recycle the least-recently-added
//!   ephemeral page. Persistent pages are never evicted.
//! * `flush_page` / `flush_object` invalidate one page / every page of an
//!   object; `destroy_pool` drops everything a VM owns (VM teardown or
//!   process exit invalidating its swap slots).
//!
//! The backend also maintains the node-level accounting the paper's
//! Table I calls `node_info.free_tmem` and per-VM `tmem_used`.
//!
//! # Datapath layout
//!
//! Every hot operation (`put`, `get`, `flush_page`, `contains`) is a single
//! probe of a flat `(ObjectId, PageIndex)` → payload Fx-hashed map per pool
//! — O(1) instead of the two ordered-map descents of the original nested
//! `BTreeMap<ObjectId, BTreeMap<PageIndex, _>>` layout (kept as
//! [`crate::reference::ReferenceBackend`] for differential testing and as
//! the bench baseline). The eviction/reclaim candidate queues hold
//! tombstones for pages that were flushed or consumed after being queued;
//! they are validated lazily on pop and compacted whenever tombstones
//! outnumber live entries, so queue memory stays proportional to live pages
//! and each queue entry is popped at most once — O(1) amortized. The cold
//! paths that lost `BTreeMap`'s ordering (`flush_object`) drain in sorted
//! key order so the backend stays observably deterministic.

use crate::error::TmemError;
use crate::fastmap::FxHashMap;
use crate::key::{ObjectId, PageIndex, PoolId, TmemKey, VmId};
use crate::page::PagePayload;
use std::collections::VecDeque;

/// Compaction slack: a candidate queue is rebuilt once it holds more than
/// `2 × live + TOMBSTONE_SLACK` entries. The factor-of-two growth bound
/// makes compaction cost amortized O(1) per queued entry; the additive
/// slack keeps tiny pools from compacting on every other operation.
const TOMBSTONE_SLACK: usize = 16;

/// Whether a pool's contents must survive until flushed (frontswap) or may
/// be dropped under pressure (cleancache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Frontswap-backed: contents are the only copy, gets are exclusive.
    Persistent,
    /// Cleancache-backed: contents are a clean cache, evictable, gets copy.
    Ephemeral,
}

/// Outcome of a successful put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// A new page frame was consumed.
    Stored,
    /// The key already existed; its contents were replaced in place and no
    /// new frame was consumed.
    Replaced,
    /// A new frame was obtained by evicting an ephemeral page (the evicted
    /// key is carried for observability).
    StoredAfterEviction(TmemKey),
}

#[derive(Debug)]
struct Pool<P> {
    owner: VmId,
    kind: PoolKind,
    /// Flat page store: one hash probe per lookup on the hot path.
    pages: FxHashMap<(ObjectId, PageIndex), P>,
    /// Persistent pages in put order (oldest first) — the candidate stream
    /// for the hypervisor's slow reclaim. Entries whose page has since been
    /// consumed or flushed are tombstones, skipped on pop and swept out by
    /// [`Pool::maybe_compact`].
    put_order: VecDeque<(ObjectId, PageIndex)>,
}

impl<P> Pool<P> {
    fn new(owner: VmId, kind: PoolKind) -> Self {
        Pool {
            owner,
            kind,
            pages: FxHashMap::default(),
            put_order: VecDeque::new(),
        }
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Sweep tombstones once they dominate the reclaim queue. Every live
    /// persistent page is in `put_order`, so `pages.len()` is the live count.
    fn maybe_compact(&mut self) {
        if self.put_order.len() > 2 * self.pages.len() + TOMBSTONE_SLACK {
            let pages = &self.pages;
            self.put_order.retain(|k| pages.contains_key(k));
        }
    }
}

/// The node-wide tmem backend: a budget of page frames plus the pools that
/// consume them.
#[derive(Debug)]
pub struct TmemBackend<P> {
    capacity: u64,
    used: u64,
    pools: FxHashMap<PoolId, Pool<P>>,
    next_pool_id: u32,
    per_vm_used: FxHashMap<VmId, u64>,
    /// Insertion-ordered queue of ephemeral pages, oldest first. Entries are
    /// validated lazily on pop (flushed pages simply get skipped) and
    /// tombstones are compacted once they dominate.
    ephemeral_fifo: VecDeque<TmemKey>,
    /// Live ephemeral pages across all pools — the denominator for FIFO
    /// tombstone compaction.
    ephemeral_pages: u64,
    evictions: u64,
}

impl<P: PagePayload> TmemBackend<P> {
    /// A backend owning `capacity` page frames pooled from idle and fallow
    /// node memory.
    pub fn new(capacity: u64) -> Self {
        TmemBackend {
            capacity,
            used: 0,
            pools: FxHashMap::default(),
            next_pool_id: 0,
            per_vm_used: FxHashMap::default(),
            ephemeral_fifo: VecDeque::new(),
            ephemeral_pages: 0,
            evictions: 0,
        }
    }

    /// Total page-frame budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently holding pages.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Frames currently free (`node_info.free_tmem`).
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.used
    }

    /// Frames currently consumed by pools owned by `vm`.
    pub fn used_by(&self, vm: VmId) -> u64 {
        self.per_vm_used.get(&vm).copied().unwrap_or(0)
    }

    /// Number of ephemeral pages evicted so far (cleancache recycling).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of live pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Owner and kind of a pool, if it exists.
    pub fn pool_info(&self, pool: PoolId) -> Option<(VmId, PoolKind)> {
        self.pools.get(&pool).map(|p| (p.owner, p.kind))
    }

    /// Create a pool for `owner`. Mirrors the guest kernel module
    /// registering with tmem at initialization.
    pub fn new_pool(&mut self, owner: VmId, kind: PoolKind) -> Result<PoolId, TmemError> {
        let id = PoolId(self.next_pool_id);
        self.next_pool_id = self
            .next_pool_id
            .checked_add(1)
            .ok_or(TmemError::PoolLimit)?;
        self.pools.insert(id, Pool::new(owner, kind));
        Ok(id)
    }

    /// Store a page. See [`PutOutcome`] for the three success shapes.
    ///
    /// Capacity rules: replacing an existing key never needs a frame; a new
    /// key needs one free frame; if none is free, an ephemeral put may
    /// recycle the oldest ephemeral page, a persistent put fails with
    /// [`TmemError::NoCapacity`].
    pub fn put(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        payload: P,
    ) -> Result<PutOutcome, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let kind = pool.kind;
        let owner = pool.owner;

        // Replacement in place: no allocation needed.
        if let Some(slot) = pool.pages.get_mut(&(object, index)) {
            *slot = payload;
            return Ok(PutOutcome::Replaced);
        }

        let mut evicted = None;
        if self.used >= self.capacity {
            if kind == PoolKind::Ephemeral {
                evicted = self.evict_one_ephemeral();
            }
            if self.used >= self.capacity {
                return Err(TmemError::NoCapacity);
            }
        }

        let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
        pool.pages.insert((object, index), payload);
        self.used += 1;
        *self.per_vm_used.entry(owner).or_insert(0) += 1;
        match kind {
            PoolKind::Ephemeral => {
                self.ephemeral_pages += 1;
                self.maybe_compact_fifo();
                self.ephemeral_fifo
                    .push_back(TmemKey::new(pool_id, object, index));
            }
            PoolKind::Persistent => {
                pool.maybe_compact();
                pool.put_order.push_back((object, index));
            }
        }
        Ok(match evicted {
            Some(k) => PutOutcome::StoredAfterEviction(k),
            None => PutOutcome::Stored,
        })
    }

    /// Retrieve a page.
    ///
    /// Persistent pools: the page is removed and its frame freed (exclusive
    /// get — frontswap semantics). Ephemeral pools: a copy is returned and
    /// the page stays cached.
    pub fn get(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<P, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        match pool.kind {
            PoolKind::Ephemeral => pool
                .pages
                .get(&(object, index))
                .cloned()
                .ok_or(TmemError::NoSuchPage),
            PoolKind::Persistent => {
                let owner = pool.owner;
                let payload = pool
                    .pages
                    .remove(&(object, index))
                    .ok_or(TmemError::NoSuchPage)?;
                self.used -= 1;
                self.debit(owner, 1);
                Ok(payload)
            }
        }
    }

    /// Invalidate one page. Returns whether a page was actually removed.
    pub fn flush_page(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<bool, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        if pool.pages.remove(&(object, index)).is_none() {
            return Ok(false);
        }
        if pool.kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= 1;
        }
        self.used -= 1;
        self.debit(owner, 1);
        Ok(true)
    }

    /// Invalidate every page of an object. Returns the number of pages
    /// removed.
    ///
    /// Cold path: the flat map has no per-object index, so this scans the
    /// pool once, then drains the matches in sorted page order to keep the
    /// operation deterministic.
    pub fn flush_object(&mut self, pool_id: PoolId, object: ObjectId) -> Result<u64, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        let mut indices: Vec<PageIndex> = pool
            .pages
            .keys()
            .filter(|(obj, _)| *obj == object)
            .map(|&(_, idx)| idx)
            .collect();
        indices.sort_unstable();
        for idx in &indices {
            pool.pages.remove(&(object, *idx));
        }
        let n = indices.len() as u64;
        if pool.kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= n;
        }
        self.used -= n;
        self.debit(owner, n);
        Ok(n)
    }

    /// Destroy a pool and free everything in it. Returns the number of pages
    /// freed.
    pub fn destroy_pool(&mut self, pool_id: PoolId) -> Result<u64, TmemError> {
        let pool = self.pools.remove(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let n = pool.page_count();
        if pool.kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= n;
        }
        self.used -= n;
        self.debit(pool.owner, n);
        Ok(n)
    }

    /// True if the key currently holds a page.
    pub fn contains(&self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> bool {
        self.pools
            .get(&pool_id)
            .is_some_and(|p| p.pages.contains_key(&(object, index)))
    }

    /// Number of pages held by one pool.
    pub fn pool_page_count(&self, pool_id: PoolId) -> Option<u64> {
        self.pools.get(&pool_id).map(|p| p.page_count())
    }

    fn debit(&mut self, owner: VmId, n: u64) {
        if n == 0 {
            return;
        }
        let e = self
            .per_vm_used
            .get_mut(&owner)
            .expect("accounting entry must exist for owner with pages");
        debug_assert!(*e >= n, "per-VM accounting underflow");
        *e -= n;
    }

    /// Remove and return up to `max` of the oldest persistent pages of a
    /// pool (the hypervisor's slow-reclaim victim stream). The pages are
    /// flushed from the store; the caller is responsible for writing them
    /// to the owning VM's swap device.
    pub fn reclaim_oldest_persistent(
        &mut self,
        pool_id: PoolId,
        max: u64,
    ) -> Vec<(ObjectId, PageIndex)> {
        let mut out = Vec::new();
        while (out.len() as u64) < max {
            let Some(pool) = self.pools.get_mut(&pool_id) else {
                break;
            };
            debug_assert_eq!(pool.kind, PoolKind::Persistent);
            let Some((obj, idx)) = pool.put_order.pop_front() else {
                break;
            };
            // Lazy validation: the entry may have been consumed by an
            // exclusive get or flush already (a tombstone).
            if self.contains(pool_id, obj, idx) {
                self.flush_page(pool_id, obj, idx)
                    .expect("pool existed a moment ago");
                out.push((obj, idx));
            }
        }
        out
    }

    /// Drop the oldest still-present ephemeral page; returns its key.
    fn evict_one_ephemeral(&mut self) -> Option<TmemKey> {
        while let Some(key) = self.ephemeral_fifo.pop_front() {
            // Lazy validation: the entry may refer to a page that has since
            // been flushed or whose pool was destroyed (a tombstone).
            let still_there = self.contains(key.pool, key.object, key.index);
            if still_there {
                self.flush_page(key.pool, key.object, key.index)
                    .expect("pool existed a moment ago");
                self.evictions += 1;
                return Some(key);
            }
        }
        None
    }

    /// Sweep FIFO tombstones once they dominate. Pool ids are never reused,
    /// so membership in the owning pool's page map is the liveness test.
    fn maybe_compact_fifo(&mut self) {
        if self.ephemeral_fifo.len() > 2 * self.ephemeral_pages as usize + TOMBSTONE_SLACK {
            let pools = &self.pools;
            self.ephemeral_fifo.retain(|k| {
                pools
                    .get(&k.pool)
                    .is_some_and(|p| p.pages.contains_key(&(k.object, k.index)))
            });
        }
    }
}

/// Invariant check used by tests and debug assertions: global `used` equals
/// the sum of pool page counts and the sum of per-VM accounting, and the
/// ephemeral live counter matches the ephemeral pools' contents.
#[doc(hidden)]
pub fn accounting_consistent<P: PagePayload>(b: &TmemBackend<P>) -> bool {
    let by_pool: u64 = b.pools.values().map(|p| p.page_count()).sum();
    let by_vm: u64 = b.per_vm_used.values().sum();
    let ephemeral: u64 = b
        .pools
        .values()
        .filter(|p| p.kind == PoolKind::Ephemeral)
        .map(|p| p.page_count())
        .sum();
    by_pool == b.used && by_vm == b.used && ephemeral == b.ephemeral_pages && b.used <= b.capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Fingerprint, PageBuf};

    fn persistent_pool(cap: u64) -> (TmemBackend<PageBuf>, PoolId) {
        let mut b = TmemBackend::new(cap);
        let p = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        (b, p)
    }

    #[test]
    fn put_get_roundtrips_bytes_exactly() {
        let (mut b, pool) = persistent_pool(8);
        let page = PageBuf::filled(0xAB);
        b.put(pool, ObjectId(1), 0, page.clone()).unwrap();
        let got = b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(got, page);
    }

    #[test]
    fn persistent_get_is_exclusive() {
        let (mut b, pool) = persistent_pool(8);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        assert_eq!(b.used(), 1);
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 0, "frontswap get must free the frame");
        assert_eq!(b.get(pool, ObjectId(1), 0), Err(TmemError::NoSuchPage));
    }

    #[test]
    fn ephemeral_get_is_a_copy() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(8);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(2)).unwrap();
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 1, "cleancache get must keep the page");
        assert!(b.get(pool, ObjectId(1), 0).is_ok());
    }

    #[test]
    fn persistent_put_fails_when_full() {
        let (mut b, pool) = persistent_pool(2);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert_eq!(
            b.put(pool, ObjectId(1), 2, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn replacement_put_needs_no_frame() {
        let (mut b, pool) = persistent_pool(1);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(out, PutOutcome::Replaced);
        assert_eq!(b.get(pool, ObjectId(1), 0).unwrap(), PageBuf::filled(9));
    }

    #[test]
    fn ephemeral_put_recycles_oldest_when_full() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 0))
        );
        assert!(!b.contains(pool, ObjectId(1), 0));
        assert!(b.contains(pool, ObjectId(1), 2));
        assert_eq!(b.evictions(), 1);
    }

    #[test]
    fn ephemeral_eviction_never_touches_persistent_pages() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pp = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let ep = b.new_pool(VmId(2), PoolKind::Ephemeral).unwrap();
        b.put(pp, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pp, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        // Node full of persistent pages: ephemeral put has nothing to evict.
        assert_eq!(
            b.put(ep, ObjectId(9), 0, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert!(b.contains(pp, ObjectId(1), 0));
        assert!(b.contains(pp, ObjectId(1), 1));
    }

    #[test]
    fn flush_page_and_object() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..4 {
            b.put(pool, ObjectId(7), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert!(b.flush_page(pool, ObjectId(7), 2).unwrap());
        assert!(
            !b.flush_page(pool, ObjectId(7), 2).unwrap(),
            "double flush is a no-op"
        );
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 3);
        assert_eq!(b.used(), 0);
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 0);
    }

    #[test]
    fn flush_object_spares_other_objects() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..3 {
            b.put(pool, ObjectId(7), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        b.put(pool, ObjectId(8), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 3);
        assert!(b.contains(pool, ObjectId(8), 0));
        assert_eq!(b.used(), 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn destroy_pool_frees_everything_and_invalidates_id() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..5 {
            b.put(pool, ObjectId(1), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert_eq!(b.destroy_pool(pool).unwrap(), 5);
        assert_eq!(b.used(), 0);
        assert_eq!(b.used_by(VmId(1)), 0);
        assert_eq!(
            b.put(pool, ObjectId(1), 0, PageBuf::filled(0)),
            Err(TmemError::NoSuchPool)
        );
    }

    #[test]
    fn per_vm_accounting_tracks_ownership() {
        let mut b: TmemBackend<Fingerprint> = TmemBackend::new(10);
        let p1 = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p2 = b.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        for i in 0..3 {
            b.put(p1, ObjectId(0), i, Fingerprint::of(i as u64, 0))
                .unwrap();
        }
        for i in 0..2 {
            b.put(p2, ObjectId(0), i, Fingerprint::of(i as u64, 0))
                .unwrap();
        }
        assert_eq!(b.used_by(VmId(1)), 3);
        assert_eq!(b.used_by(VmId(2)), 2);
        assert_eq!(b.used(), 5);
        b.get(p1, ObjectId(0), 0).unwrap();
        assert_eq!(b.used_by(VmId(1)), 2);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn stale_fifo_entries_are_skipped_on_eviction() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        // Flush the oldest; its FIFO entry goes stale.
        b.flush_page(pool, ObjectId(1), 0).unwrap();
        b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        // Node is full again; the next eviction must skip the stale entry
        // and evict page 1, not fail.
        let out = b.put(pool, ObjectId(1), 3, PageBuf::filled(3)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 1))
        );
    }

    #[test]
    fn get_from_unknown_pool_errors() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        assert_eq!(
            b.get(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
        assert_eq!(
            b.flush_page(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
    }

    #[test]
    fn reclaim_queue_compaction_preserves_victim_order() {
        // Churn a persistent pool hard enough to force several compactions,
        // then check the reclaim stream still yields oldest-first victims.
        let (mut b, pool) = persistent_pool(1024);
        for round in 0u64..8 {
            for i in 0..200u32 {
                b.put(pool, ObjectId(round), i, PageBuf::filled(i as u8))
                    .unwrap();
            }
            // Consume most of them via exclusive gets → tombstones.
            for i in 0..190u32 {
                b.get(pool, ObjectId(round), i).unwrap();
            }
        }
        // The queue must have been compacted below the raw 1600 insertions.
        let queued = {
            let p = b.pools.get(&pool).unwrap();
            p.put_order.len()
        };
        assert!(
            queued <= 2 * 80 + TOMBSTONE_SLACK + 200,
            "queue not compacted: {queued} entries for 80 live pages"
        );
        let victims = b.reclaim_oldest_persistent(pool, 3);
        assert_eq!(
            victims,
            vec![(ObjectId(0), 190), (ObjectId(0), 191), (ObjectId(0), 192)]
        );
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn ephemeral_fifo_compaction_preserves_eviction_order() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(1024);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        for i in 0..400u32 {
            b.put(pool, ObjectId(0), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        // Flush all but the last 10 → 390 tombstones, forcing compaction on
        // subsequent puts.
        for i in 0..390u32 {
            b.flush_page(pool, ObjectId(0), i).unwrap();
        }
        for i in 400..500u32 {
            b.put(pool, ObjectId(0), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert!(
            b.ephemeral_fifo.len() <= 2 * 110 + TOMBSTONE_SLACK + 100,
            "fifo not compacted: {} entries for 110 live pages",
            b.ephemeral_fifo.len()
        );
        let evicted = b.evict_one_ephemeral().unwrap();
        assert_eq!(evicted, TmemKey::new(pool, ObjectId(0), 390));
        assert!(accounting_consistent(&b));
    }
}
