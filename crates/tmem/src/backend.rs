//! The tmem key–value page store.
//!
//! Semantics follow Xen's `common/tmem.c` as described in the paper and in
//! Magenheimer et al. (OLS 2009):
//!
//! * **Persistent pools (frontswap).** A successful `put` consumes one page
//!   frame; `get` is *exclusive* — it returns the page and frees the frame
//!   (a swap slot is read back exactly once before being invalidated).
//!   When no frame is free the put fails and the guest falls back to disk.
//! * **Ephemeral pools (cleancache).** Pages are a cache of clean pagecache
//!   data: `get` returns a copy and leaves the page, and when the node is
//!   out of frames a new ephemeral put may recycle the least-recently-added
//!   ephemeral page. Persistent pages are never evicted.
//! * `flush_page` / `flush_object` invalidate one page / every page of an
//!   object; `destroy_pool` drops everything a VM owns (VM teardown or
//!   process exit invalidating its swap slots).
//!
//! The backend also maintains the node-level accounting the paper's
//! Table I calls `node_info.free_tmem` and per-VM `tmem_used`.
//!
//! # Datapath layout
//!
//! Pages live in per-object Fx-hashed `PageIndex → slot` maps, reached
//! through a small `ObjectId → object slot` map with an MRU-object cache on
//! the pool: runs of operations against one object (the dominant guest
//! pattern — kernels walk an object's pages in order) skip the outer lookup
//! entirely and pay a single probe of a small, cache-warm map. This
//! replaces both the original nested `BTreeMap<ObjectId, BTreeMap<..>>`
//! layout (kept as [`crate::reference::ReferenceBackend`] for differential
//! testing and as the bench baseline) and the flat
//! `(ObjectId, PageIndex) → payload` map of the first datapath round,
//! whose `flush_object` cold path was a full-pool scan + sort.
//!
//! `flush_object` and `destroy_pool` are O(pages actually present): they
//! drain the object's own map and park its storage (capacity intact) on a
//! per-pool free list, so object churn reuses warm maps instead of
//! reallocating. Removal order within an object is hash-map order, not
//! sorted — it is unobservable (`flush_object` returns only a count) and
//! still deterministic, since FxHash is unseeded. Payloads themselves sit
//! in a [`PageArena`] slab addressed by slot handles, which keeps map
//! entries small and lets put/flush churn reuse freed payload slots
//! instead of calling the allocator. Pool lookup is an array index (pool
//! ids are allocated sequentially and never reused) and per-VM accounting
//! is a dense counter slot cached on the pool, so neither costs a hash
//! probe on the hot path.
//!
//! The eviction/reclaim candidate queues hold tombstones for pages that
//! were flushed or consumed after being queued; they are validated lazily
//! on pop, and swept once tombstones outnumber live entries (see
//! [`TOMBSTONE_SLACK`]). Queue memory stays proportional to live pages
//! plus surviving ghosts, and each entry is popped at most once.
//!
//! # Integrity
//!
//! Every stored page carries the checksum recorded at put time
//! ([`PagePayload::checksum`]), re-verified whenever the page leaves the
//! store (get, flush, reclaim, destroy) and by the periodic
//! [`TmemBackend::scrub`] pass. The tmem contract is asymmetric and the
//! verification enforces exactly that asymmetry:
//!
//! * **persistent** pages are correct-or-error — a corrupt page stays in
//!   place and every get returns [`TmemError::Corrupt`] until the guest
//!   flushes it or the scrubber quarantines its object; wrong bytes are
//!   never returned;
//! * **ephemeral** pages are correct-or-miss — a corrupt page is dropped on
//!   detection so the next get is a clean miss, matching cleancache's
//!   "may vanish at any time" license.
//!
//! Detections are counted once per page (a `flagged` bit dedups) in
//! monotonic [`IntegrityCounters`] that the hypervisor diffs around
//! operations to attribute faults without threading detection state
//! through every return type. Fault injection itself lives in the
//! hypervisor; the backend only offers [`TmemBackend::corrupt_page`],
//! which cross-wires a page's payload with an earlier, different payload
//! (kept only while [`TmemBackend::arm_corruption`] is on) while leaving
//! the recorded checksum alone — genuinely wrong bytes with guaranteed
//! detection, generic over any payload type.

use crate::error::TmemError;
use crate::fastmap::FxHashMap;
use crate::key::{ObjectId, PageIndex, PoolId, TmemKey, VmId};
use crate::page::{PageArena, PagePayload, SlotHandle};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// Compaction slack: a candidate queue is swept once it holds more than
/// `2 × live + TOMBSTONE_SLACK` entries. While sweeps remove the tombstone
/// half of the queue this is amortized O(1) per queued entry; the additive
/// slack keeps tiny pools from sweeping on every other operation.
///
/// One caveat is deliberate: a sweep keeps every entry whose key is live
/// *at sweep time*, including revived ghost entries (see
/// [`Pool::put_order`]), so a workload that fully drains a pool and then
/// re-puts the very same keys can hold the queue above the trigger with
/// little for the sweep to remove. That retention — and the exact sweep
/// points — is observable through the reclaim victim stream and is pinned
/// by the differential proptest and the scenario goldens, so the trigger
/// must not be "improved" (e.g. rate-limited) without regenerating both.
const TOMBSTONE_SLACK: usize = 16;

/// Whether a pool's contents must survive until flushed (frontswap) or may
/// be dropped under pressure (cleancache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Frontswap-backed: contents are the only copy, gets are exclusive.
    Persistent,
    /// Cleancache-backed: contents are a clean cache, evictable, gets copy.
    Ephemeral,
}

/// Outcome of a successful put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// A new page frame was consumed.
    Stored,
    /// The key already existed; its contents were replaced in place and no
    /// new frame was consumed.
    Replaced,
    /// A new frame was obtained by evicting an ephemeral page (the evicted
    /// key is carried for observability).
    StoredAfterEviction(TmemKey),
    /// The page was spilled to the host's far-memory tier instead of local
    /// tmem. Never produced by [`TmemBackend::put`] itself — the hypervisor
    /// synthesizes it when a `NoCapacity` put lands in the far tier — but it
    /// lives here so every put caller matches one outcome type.
    StoredFar,
}

/// One object's pages: index → payload slot.
type ObjectPages = FxHashMap<PageIndex, SlotHandle>;

/// What [`TmemBackend::export_pool`] hands the migration path: the
/// surviving pages in `(object, index)` order, plus the number of corrupt
/// pages purged at the boundary.
pub type ExportedPool<P> = (Vec<(ObjectId, PageIndex, P)>, u64);

/// Arena entry: the payload plus the integrity summary recorded when it was
/// put. `flagged` marks pages whose corruption has already been counted, so
/// repeated gets of a stuck persistent page report one detection, not many.
#[derive(Debug)]
struct StoredPage<P> {
    payload: P,
    sum: u64,
    flagged: bool,
}

/// Monotonic integrity counters, diffed by the hypervisor around operations
/// to attribute detections to the op that surfaced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Distinct corrupt pages detected (each page counted once).
    pub detections: u64,
    /// Pages silently removed because they were corrupt: ephemeral pages
    /// dropped on get, reclaim victims withheld from the swap writeback.
    /// Explicit removals (guest flushes, evictions) are not counted here —
    /// their occupancy change is already visible to the caller.
    pub corrupt_dropped: u64,
}

/// One object removed wholesale by the scrubber because at least one of its
/// pages failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedObject {
    /// Pool the object lived in.
    pub pool: PoolId,
    /// VM owning that pool (for fault attribution).
    pub owner: VmId,
    /// The quarantined object.
    pub object: ObjectId,
    /// Pages removed with it (corrupt and clean alike).
    pub pages: u64,
}

/// Result of one [`TmemBackend::scrub`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages whose checksums were verified this pass.
    pub pages_checked: u64,
    /// Pages that failed verification this pass.
    pub corrupt_pages: u64,
    /// Objects removed, in (pool id, object id) order.
    pub quarantined: Vec<QuarantinedObject>,
    /// Whether the accounting invariants held ([`accounting_consistent`]).
    pub accounting_ok: bool,
}

#[derive(Debug)]
struct Pool {
    owner: VmId,
    /// Index of the owner's counter in [`TmemBackend::vm_used`] — cached so
    /// accounting on the hot path is an array access, not a hash probe.
    owner_slot: u32,
    kind: PoolKind,
    /// Live objects → index into `obj_slots`.
    objects: FxHashMap<ObjectId, u32>,
    /// Per-object page maps, indexed by object slot. Emptied maps are
    /// parked on `free_objs` with their capacity intact, so object churn
    /// reuses warm storage.
    obj_slots: Vec<ObjectPages>,
    free_objs: Vec<u32>,
    /// Most-recently-used object: consecutive operations on one object (the
    /// dominant access pattern) skip the `objects` probe.
    mru: Option<(ObjectId, u32)>,
    /// Live pages across all objects in this pool.
    page_count: u64,
    /// Persistent pages in put order (oldest first) — the candidate stream
    /// for the hypervisor's slow reclaim. Entries whose page has since been
    /// consumed or flushed are tombstones, skipped on pop and swept out by
    /// [`Pool::maybe_compact`]. A tombstone whose key is later re-put
    /// *revives*: the key keeps its original queue position, exactly as in
    /// the reference backend's never-compacted queue, so sweeps must keep
    /// every entry whose key is currently live.
    put_order: VecDeque<(ObjectId, PageIndex)>,
}

impl Pool {
    fn new(owner: VmId, owner_slot: u32, kind: PoolKind) -> Self {
        Pool {
            owner,
            owner_slot,
            kind,
            objects: FxHashMap::default(),
            obj_slots: Vec::new(),
            free_objs: Vec::new(),
            mru: None,
            page_count: 0,
            put_order: VecDeque::new(),
        }
    }

    /// Object slot of an existing object, through the MRU cache.
    #[inline]
    fn obj_slot(&mut self, object: ObjectId) -> Option<u32> {
        if let Some((o, s)) = self.mru {
            if o == object {
                return Some(s);
            }
        }
        let s = *self.objects.get(&object)?;
        self.mru = Some((object, s));
        Some(s)
    }

    /// Object slot lookup, registering the object if it is new (put path).
    #[inline]
    fn obj_slot_or_create(&mut self, object: ObjectId) -> u32 {
        if let Some((o, s)) = self.mru {
            if o == object {
                return s;
            }
        }
        let s = match self.objects.entry(object) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => match self.free_objs.pop() {
                Some(s) => {
                    debug_assert!(self.obj_slots[s as usize].is_empty());
                    *v.insert(s)
                }
                None => {
                    let s = self.obj_slots.len() as u32;
                    self.obj_slots.push(ObjectPages::default());
                    *v.insert(s)
                }
            },
        };
        self.mru = Some((object, s));
        s
    }

    /// Unregister an object whose page map just became empty, parking its
    /// storage (capacity intact) for reuse by the next new object.
    #[inline]
    fn retire_object(&mut self, object: ObjectId, slot: u32) {
        self.objects.remove(&object);
        self.free_objs.push(slot);
        if self.mru.is_some_and(|(o, _)| o == object) {
            self.mru = None;
        }
    }

    /// True if `(object, index)` currently holds a page. Immutable lookup
    /// (no MRU update) for queue-compaction predicates and `contains`.
    #[inline]
    fn contains_key(&self, object: ObjectId, index: PageIndex) -> bool {
        self.objects
            .get(&object)
            .is_some_and(|&s| self.obj_slots[s as usize].contains_key(&index))
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Sweep tombstones once they dominate the reclaim queue (see
    /// [`TOMBSTONE_SLACK`] for the trigger and why its timing is pinned by
    /// the goldens). Every live persistent page is in `put_order`, so
    /// `page_count` is the live count. The check is inline; the scan itself
    /// is kept out of line so the put hot path stays one compare.
    #[inline]
    fn maybe_compact(&mut self) {
        if self.put_order.len() > 2 * self.page_count as usize + TOMBSTONE_SLACK {
            self.compact_put_order();
        }
    }

    #[cold]
    #[inline(never)]
    fn compact_put_order(&mut self) {
        let objects = &self.objects;
        let obj_slots = &self.obj_slots;
        // Entries sit in put order, so runs of one object are adjacent;
        // memoizing the object probe makes the scan one inner lookup per
        // live entry (and ~free for runs of dead objects).
        let mut last: Option<(ObjectId, Option<u32>)> = None;
        self.put_order.retain(|&(o, i)| {
            let slot = match last {
                Some((lo, s)) if lo == o => s,
                _ => {
                    let s = objects.get(&o).copied();
                    last = Some((o, s));
                    s
                }
            };
            slot.is_some_and(|s| obj_slots[s as usize].contains_key(&i))
        });
    }
}

/// The node-wide tmem backend: a budget of page frames plus the pools that
/// consume them.
#[derive(Debug)]
pub struct TmemBackend<P> {
    capacity: u64,
    used: u64,
    /// Pools addressed directly by `PoolId` (sequentially allocated, never
    /// reused); destroyed pools leave a `None` hole.
    pools: Vec<Option<Pool>>,
    live_pools: usize,
    /// Payload storage shared by all pools; the page maps hold handles.
    /// Each slot carries the checksum recorded at put time.
    arena: PageArena<StoredPage<P>>,
    /// Dense per-VM frame counters, indexed by the slot in `vm_slots`.
    vm_used: Vec<u64>,
    vm_slots: FxHashMap<VmId, u32>,
    /// Insertion-ordered queue of ephemeral pages, oldest first. Entries are
    /// validated lazily on pop (flushed pages simply get skipped) and
    /// tombstones are compacted once they dominate.
    ephemeral_fifo: VecDeque<TmemKey>,
    /// Live ephemeral pages across all pools — the denominator for FIFO
    /// tombstone compaction.
    ephemeral_pages: u64,
    evictions: u64,
    /// Monotonic detection counters (see [`IntegrityCounters`]).
    integrity: IntegrityCounters,
    /// While set, puts retain recent payloads as corruption donors. Off by
    /// default so fault-free runs pay one branch per put and clone nothing.
    arm_corruption: bool,
    /// Up to two recent payloads with distinct checksums: the byte source
    /// [`TmemBackend::corrupt_page`] cross-wires into a victim page.
    donors: Vec<(u64, P)>,
}

impl<P: PagePayload> TmemBackend<P> {
    /// A backend owning `capacity` page frames pooled from idle and fallow
    /// node memory.
    pub fn new(capacity: u64) -> Self {
        TmemBackend {
            capacity,
            used: 0,
            pools: Vec::new(),
            live_pools: 0,
            arena: PageArena::new(),
            vm_used: Vec::new(),
            vm_slots: FxHashMap::default(),
            ephemeral_fifo: VecDeque::new(),
            ephemeral_pages: 0,
            evictions: 0,
            integrity: IntegrityCounters::default(),
            arm_corruption: false,
            donors: Vec::new(),
        }
    }

    /// Total page-frame budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently holding pages.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Frames currently free (`node_info.free_tmem`).
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.used
    }

    /// Frames currently consumed by pools owned by `vm`.
    pub fn used_by(&self, vm: VmId) -> u64 {
        self.vm_slots
            .get(&vm)
            .map(|&s| self.vm_used[s as usize])
            .unwrap_or(0)
    }

    /// Number of ephemeral pages evicted so far (cleancache recycling).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of live pools.
    pub fn pool_count(&self) -> usize {
        self.live_pools
    }

    /// Owner and kind of a pool, if it exists.
    pub fn pool_info(&self, pool: PoolId) -> Option<(VmId, PoolKind)> {
        self.pool(pool).map(|p| (p.owner, p.kind))
    }

    /// Live pools owned by `owner`, in pool-id order (migration needs the
    /// full set: the frontswap pool travels, ephemeral pools are dropped).
    pub fn pools_owned_by(&self, owner: VmId) -> Vec<(PoolId, PoolKind)> {
        self.pools
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i, p)))
            .filter(|(_, p)| p.owner == owner)
            .map(|(i, p)| (PoolId(i as u32), p.kind))
            .collect()
    }

    #[inline]
    fn pool(&self, id: PoolId) -> Option<&Pool> {
        self.pools.get(id.0 as usize).and_then(Option::as_ref)
    }

    #[inline]
    fn pool_mut(&mut self, id: PoolId) -> Option<&mut Pool> {
        self.pools.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Create a pool for `owner`. Mirrors the guest kernel module
    /// registering with tmem at initialization.
    pub fn new_pool(&mut self, owner: VmId, kind: PoolKind) -> Result<PoolId, TmemError> {
        if self.pools.len() >= u32::MAX as usize {
            return Err(TmemError::PoolLimit);
        }
        let id = PoolId(self.pools.len() as u32);
        let owner_slot = match self.vm_slots.get(&owner) {
            Some(&s) => s,
            None => {
                let s = self.vm_used.len() as u32;
                self.vm_slots.insert(owner, s);
                self.vm_used.push(0);
                s
            }
        };
        self.pools.push(Some(Pool::new(owner, owner_slot, kind)));
        self.live_pools += 1;
        Ok(id)
    }

    /// Store a page. See [`PutOutcome`] for the three success shapes.
    ///
    /// Capacity rules: replacing an existing key never needs a frame; a new
    /// key needs one free frame; if none is free, an ephemeral put may
    /// recycle the oldest ephemeral page, a persistent put fails with
    /// [`TmemError::NoCapacity`].
    ///
    /// The payload's checksum is recorded alongside it and re-verified
    /// whenever the page leaves the store (see the module's *Integrity*
    /// section).
    #[inline]
    pub fn put(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        payload: P,
    ) -> Result<PutOutcome, TmemError> {
        let sum = payload.checksum();
        if self.arm_corruption {
            self.note_donor(sum, &payload);
        }
        let used = self.used;
        let Some(pool) = self
            .pools
            .get_mut(pool_id.0 as usize)
            .and_then(Option::as_mut)
        else {
            return Err(TmemError::NoSuchPool);
        };
        let kind = pool.kind;
        let owner_slot = pool.owner_slot;

        if used < self.capacity {
            // Fast path: one inner-map probe resolves replace-vs-insert.
            let s = pool.obj_slot_or_create(object);
            match pool.obj_slots[s as usize].entry(index) {
                Entry::Occupied(e) => {
                    let slot = *e.get();
                    *self.arena.get_mut(slot) = StoredPage {
                        payload,
                        sum,
                        flagged: false,
                    };
                    return Ok(PutOutcome::Replaced);
                }
                Entry::Vacant(v) => {
                    v.insert(self.arena.alloc(StoredPage {
                        payload,
                        sum,
                        flagged: false,
                    }));
                }
            }
            pool.page_count += 1;
            match kind {
                PoolKind::Persistent => {
                    pool.maybe_compact();
                    pool.put_order.push_back((object, index));
                }
                PoolKind::Ephemeral => {
                    self.ephemeral_pages += 1;
                    self.maybe_compact_fifo();
                    self.ephemeral_fifo
                        .push_back(TmemKey::new(pool_id, object, index));
                }
            }
            self.used = used + 1;
            self.vm_used[owner_slot as usize] += 1;
            return Ok(PutOutcome::Stored);
        }
        self.put_full(pool_id, object, index, payload, sum)
    }

    /// The node-full half of [`TmemBackend::put`]: replacement probe,
    /// ephemeral recycling, or failure. Out of line — a full node is the
    /// slow regime by definition and keeping it out of `put` keeps the fast
    /// path compact.
    #[cold]
    #[inline(never)]
    fn put_full(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        payload: P,
        sum: u64,
    ) -> Result<PutOutcome, TmemError> {
        let pool = self.pool_mut(pool_id).expect("pool checked by caller");
        let kind = pool.kind;
        let owner_slot = pool.owner_slot;
        // Replacement in place still needs no frame.
        if let Some(s) = pool.obj_slot(object) {
            if let Some(&slot) = pool.obj_slots[s as usize].get(&index) {
                *self.arena.get_mut(slot) = StoredPage {
                    payload,
                    sum,
                    flagged: false,
                };
                return Ok(PutOutcome::Replaced);
            }
        }
        let mut evicted = None;
        if kind == PoolKind::Ephemeral {
            evicted = self.evict_one_ephemeral();
        }
        if self.used >= self.capacity {
            return Err(TmemError::NoCapacity);
        }
        let slot = self.arena.alloc(StoredPage {
            payload,
            sum,
            flagged: false,
        });
        let pool = self.pool_mut(pool_id).expect("pool checked above");
        let s = pool.obj_slot_or_create(object);
        pool.obj_slots[s as usize].insert(index, slot);
        pool.page_count += 1;
        if kind == PoolKind::Persistent {
            pool.maybe_compact();
            pool.put_order.push_back((object, index));
        }
        self.used += 1;
        self.vm_used[owner_slot as usize] += 1;
        if kind == PoolKind::Ephemeral {
            self.ephemeral_pages += 1;
            self.maybe_compact_fifo();
            self.ephemeral_fifo
                .push_back(TmemKey::new(pool_id, object, index));
        }
        Ok(match evicted {
            Some(k) => PutOutcome::StoredAfterEviction(k),
            None => PutOutcome::Stored,
        })
    }

    /// Retrieve a page.
    ///
    /// Persistent pools: the page is removed and its frame freed (exclusive
    /// get — frontswap semantics). Ephemeral pools: a copy is returned and
    /// the page stays cached.
    ///
    /// Integrity: a persistent page failing verification stays in place and
    /// returns [`TmemError::Corrupt`] (correct-or-error); a corrupt
    /// ephemeral page is dropped and returns [`TmemError::Corrupt`] once,
    /// after which the key is a clean miss (correct-or-miss).
    #[inline]
    pub fn get(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<P, TmemError> {
        let Some(pool) = self
            .pools
            .get_mut(pool_id.0 as usize)
            .and_then(Option::as_mut)
        else {
            return Err(TmemError::NoSuchPool);
        };
        let Some(s) = pool.obj_slot(object) else {
            return Err(TmemError::NoSuchPage);
        };
        match pool.kind {
            PoolKind::Ephemeral => {
                let Some(&slot) = pool.obj_slots[s as usize].get(&index) else {
                    return Err(TmemError::NoSuchPage);
                };
                let e = self.arena.get(slot);
                if e.payload.checksum() == e.sum {
                    return Ok(e.payload.clone());
                }
                self.drop_corrupt_ephemeral(pool_id, object, index, slot)
            }
            PoolKind::Persistent => {
                let owner_slot = pool.owner_slot;
                let inner = &mut pool.obj_slots[s as usize];
                let Some(&slot) = inner.get(&index) else {
                    return Err(TmemError::NoSuchPage);
                };
                let e = self.arena.get_mut(slot);
                if e.payload.checksum() != e.sum {
                    // Correct-or-error: the page stays so retries observe
                    // the same typed error, never the wrong bytes.
                    if !e.flagged {
                        e.flagged = true;
                        self.integrity.detections += 1;
                    }
                    return Err(TmemError::Corrupt);
                }
                inner.remove(&index);
                if inner.is_empty() {
                    pool.retire_object(object, s);
                }
                pool.page_count -= 1;
                let sp = self.arena.free(slot);
                self.used -= 1;
                self.debit_one(owner_slot);
                Ok(sp.payload)
            }
        }
    }

    /// Correct-or-miss enforcement for ephemeral pools: drop the corrupt
    /// page so the next get is a clean miss. Out of line — detection is the
    /// rare path by construction.
    #[cold]
    #[inline(never)]
    fn drop_corrupt_ephemeral(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        slot: SlotHandle,
    ) -> Result<P, TmemError> {
        let e = self.arena.get_mut(slot);
        if !e.flagged {
            e.flagged = true;
            self.integrity.detections += 1;
        }
        self.integrity.corrupt_dropped += 1;
        self.flush_page(pool_id, object, index)
            .expect("pool checked by caller");
        Err(TmemError::Corrupt)
    }

    /// Invalidate one page. Returns whether a page was actually removed.
    #[inline]
    pub fn flush_page(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<bool, TmemError> {
        let Some(pool) = self
            .pools
            .get_mut(pool_id.0 as usize)
            .and_then(Option::as_mut)
        else {
            return Err(TmemError::NoSuchPool);
        };
        let Some(s) = pool.obj_slot(object) else {
            return Ok(false);
        };
        let owner_slot = pool.owner_slot;
        let kind = pool.kind;
        let inner = &mut pool.obj_slots[s as usize];
        let Some(slot) = inner.remove(&index) else {
            return Ok(false);
        };
        if inner.is_empty() {
            pool.retire_object(object, s);
        }
        pool.page_count -= 1;
        let sp = self.arena.free(slot);
        if !sp.flagged && sp.payload.checksum() != sp.sum {
            // The flush itself is what the caller asked for, but the
            // corruption it surfaced must still be counted as detected.
            self.integrity.detections += 1;
        }
        if kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= 1;
        }
        self.used -= 1;
        self.debit_one(owner_slot);
        Ok(true)
    }

    /// Invalidate every page of an object. Returns the number of pages
    /// removed.
    ///
    /// Drains the object's own page map — O(pages in the object), not a
    /// scan of the pool — and parks the map's storage for reuse.
    pub fn flush_object(&mut self, pool_id: PoolId, object: ObjectId) -> Result<u64, TmemError> {
        let Some(pool) = self
            .pools
            .get_mut(pool_id.0 as usize)
            .and_then(Option::as_mut)
        else {
            return Err(TmemError::NoSuchPool);
        };
        let Some(s) = pool.obj_slot(object) else {
            return Ok(0);
        };
        let owner_slot = pool.owner_slot;
        let kind = pool.kind;
        let inner = &mut pool.obj_slots[s as usize];
        let n = inner.len() as u64;
        for (_, slot) in inner.drain() {
            let sp = self.arena.free(slot);
            if !sp.flagged && sp.payload.checksum() != sp.sum {
                self.integrity.detections += 1;
            }
        }
        pool.retire_object(object, s);
        pool.page_count -= n;
        if kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= n;
        }
        self.used -= n;
        self.debit(owner_slot, n);
        Ok(n)
    }

    /// Destroy a pool and free everything in it. Returns the number of pages
    /// freed.
    pub fn destroy_pool(&mut self, pool_id: PoolId) -> Result<u64, TmemError> {
        let Some(entry) = self.pools.get_mut(pool_id.0 as usize) else {
            return Err(TmemError::NoSuchPool);
        };
        let Some(pool) = entry.take() else {
            return Err(TmemError::NoSuchPool);
        };
        self.live_pools -= 1;
        let n = pool.page_count();
        for inner in &pool.obj_slots {
            for &slot in inner.values() {
                let sp = self.arena.free(slot);
                if !sp.flagged && sp.payload.checksum() != sp.sum {
                    self.integrity.detections += 1;
                }
            }
        }
        if pool.kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= n;
        }
        self.used -= n;
        self.debit(pool.owner_slot, n);
        Ok(n)
    }

    /// Remove a pool wholesale and hand back its verified contents — the
    /// migration export path. Returns the surviving pages in `(object,
    /// index)` order (deterministic regardless of hash-map layout) plus the
    /// number of corrupt pages found and purged at the boundary: a page
    /// failing its recorded checksum is *never* exported, because the
    /// destination would re-checksum the wrong bytes at import and launder
    /// the corruption into a "clean" page. Purged pages are counted in
    /// [`IntegrityCounters`] like every other silent removal.
    pub fn export_pool(&mut self, pool_id: PoolId) -> Result<ExportedPool<P>, TmemError> {
        let Some(entry) = self.pools.get_mut(pool_id.0 as usize) else {
            return Err(TmemError::NoSuchPool);
        };
        let Some(pool) = entry.take() else {
            return Err(TmemError::NoSuchPool);
        };
        self.live_pools -= 1;
        let n = pool.page_count();
        let mut out = Vec::with_capacity(n as usize);
        let mut purged = 0u64;
        for (&obj, &s) in pool.objects.iter() {
            for (&idx, &slot) in pool.obj_slots[s as usize].iter() {
                let sp = self.arena.free(slot);
                if sp.payload.checksum() == sp.sum {
                    out.push((obj, idx, sp.payload));
                } else {
                    if !sp.flagged {
                        self.integrity.detections += 1;
                    }
                    self.integrity.corrupt_dropped += 1;
                    purged += 1;
                }
            }
        }
        out.sort_unstable_by_key(|&(o, i, _)| (o, i));
        if pool.kind == PoolKind::Ephemeral {
            self.ephemeral_pages -= n;
        }
        self.used -= n;
        self.debit(pool.owner_slot, n);
        Ok((out, purged))
    }

    /// True if the key currently holds a page.
    pub fn contains(&self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> bool {
        self.pool(pool_id)
            .is_some_and(|p| p.contains_key(object, index))
    }

    /// Number of pages held by one pool.
    pub fn pool_page_count(&self, pool_id: PoolId) -> Option<u64> {
        self.pool(pool_id).map(|p| p.page_count())
    }

    #[inline]
    fn debit(&mut self, owner_slot: u32, n: u64) {
        if n == 0 {
            return;
        }
        let e = &mut self.vm_used[owner_slot as usize];
        debug_assert!(*e >= n, "per-VM accounting underflow");
        *e -= n;
    }

    /// Single-page debit for the get/flush hot paths — skips the `n == 0`
    /// branch of [`TmemBackend::debit`].
    #[inline]
    fn debit_one(&mut self, owner_slot: u32) {
        let e = &mut self.vm_used[owner_slot as usize];
        debug_assert!(*e >= 1, "per-VM accounting underflow");
        *e -= 1;
    }

    /// Remove and return up to `max` of the oldest persistent pages of a
    /// pool (the hypervisor's slow-reclaim victim stream). The pages are
    /// flushed from the store; the caller is responsible for writing them
    /// to the owning VM's swap device.
    pub fn reclaim_oldest_persistent(
        &mut self,
        pool_id: PoolId,
        max: u64,
    ) -> Vec<(ObjectId, PageIndex)> {
        let mut out = Vec::new();
        self.reclaim_oldest_persistent_into(pool_id, max, &mut out);
        out
    }

    /// [`TmemBackend::reclaim_oldest_persistent`] appending into a
    /// caller-owned buffer — the per-interval reclaim trickle reuses one
    /// buffer across VMs and intervals instead of allocating per call.
    ///
    /// Victims are verified before delivery: a corrupt page is flushed but
    /// **withheld** from the output (writing it to the owner's swap device
    /// would persist wrong bytes), counted in
    /// [`IntegrityCounters::corrupt_dropped`].
    pub fn reclaim_oldest_persistent_into(
        &mut self,
        pool_id: PoolId,
        max: u64,
        out: &mut Vec<(ObjectId, PageIndex)>,
    ) {
        let start = out.len();
        while ((out.len() - start) as u64) < max {
            let Some(pool) = self.pool_mut(pool_id) else {
                break;
            };
            debug_assert_eq!(pool.kind, PoolKind::Persistent);
            let Some((obj, idx)) = pool.put_order.pop_front() else {
                break;
            };
            // Lazy validation: the entry may have been consumed by an
            // exclusive get or flush already (a tombstone).
            if let Some(corrupt) = self.page_corrupt(pool_id, obj, idx) {
                // flush_page counts the detection if this page's corruption
                // was not already flagged.
                self.flush_page(pool_id, obj, idx)
                    .expect("pool existed a moment ago");
                if corrupt {
                    self.integrity.corrupt_dropped += 1;
                } else {
                    out.push((obj, idx));
                }
            }
        }
    }

    /// Verify one page in place: `None` if the key holds no page, otherwise
    /// whether its contents fail the recorded checksum.
    fn page_corrupt(&self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> Option<bool> {
        let p = self.pool(pool_id)?;
        let &s = p.objects.get(&object)?;
        let &slot = p.obj_slots[s as usize].get(&index)?;
        let e = self.arena.get(slot);
        Some(e.payload.checksum() != e.sum)
    }

    /// Drop the oldest still-present ephemeral page; returns its key.
    fn evict_one_ephemeral(&mut self) -> Option<TmemKey> {
        while let Some(key) = self.ephemeral_fifo.pop_front() {
            // Lazy validation: the entry may refer to a page that has since
            // been flushed or whose pool was destroyed (a tombstone).
            let still_there = self.contains(key.pool, key.object, key.index);
            if still_there {
                self.flush_page(key.pool, key.object, key.index)
                    .expect("pool existed a moment ago");
                self.evictions += 1;
                return Some(key);
            }
        }
        None
    }

    /// Sweep FIFO tombstones once they dominate (same trigger as
    /// [`Pool::maybe_compact`]). Pool ids are never reused, so membership in
    /// the owning pool's page maps is the liveness test.
    #[inline]
    fn maybe_compact_fifo(&mut self) {
        if self.ephemeral_fifo.len() > 2 * self.ephemeral_pages as usize + TOMBSTONE_SLACK {
            self.compact_fifo();
        }
    }

    #[cold]
    #[inline(never)]
    fn compact_fifo(&mut self) {
        let pools = &self.pools;
        self.ephemeral_fifo.retain(|k| {
            pools
                .get(k.pool.0 as usize)
                .and_then(Option::as_ref)
                .is_some_and(|p| p.contains_key(k.object, k.index))
        });
    }

    /// Monotonic integrity counters. Callers diff snapshots around
    /// operations to attribute detections.
    pub fn integrity(&self) -> IntegrityCounters {
        self.integrity
    }

    /// Enable donor retention so [`TmemBackend::corrupt_page`] has wrong
    /// bytes to cross-wire into victims. The hypervisor arms this exactly
    /// when a fault profile with corruption probabilities is installed;
    /// unarmed backends never clone payloads and hold no donors.
    pub fn arm_corruption(&mut self) {
        self.arm_corruption = true;
    }

    /// Remember a recent payload as a corruption donor. Keeps the two most
    /// recent payloads with distinct checksums.
    fn note_donor(&mut self, sum: u64, payload: &P) {
        if self.donors.last().is_some_and(|(s, _)| *s == sum) {
            return;
        }
        self.donors.retain(|(s, _)| *s != sum);
        self.donors.push((sum, payload.clone()));
        if self.donors.len() > 2 {
            self.donors.remove(0);
        }
    }

    /// Fault-injection hook: replace the page's payload with a previously
    /// stored payload whose checksum differs, while keeping the checksum
    /// recorded at put time — genuinely wrong bytes (cross-wired with
    /// another page's contents) that verification is guaranteed to catch.
    ///
    /// Returns whether the corruption was applied; it is a no-op when the
    /// key holds no page or no distinct-checksum donor is available
    /// (requires [`TmemBackend::arm_corruption`]).
    pub fn corrupt_page(&mut self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> bool {
        let Some(pool) = self
            .pools
            .get_mut(pool_id.0 as usize)
            .and_then(Option::as_mut)
        else {
            return false;
        };
        let Some(s) = pool.obj_slot(object) else {
            return false;
        };
        let Some(&slot) = pool.obj_slots[s as usize].get(&index) else {
            return false;
        };
        let e = self.arena.get_mut(slot);
        let Some((_, donor)) = self.donors.iter().find(|(ds, _)| *ds != e.sum) else {
            return false;
        };
        e.payload = donor.clone();
        e.flagged = false;
        true
    }

    /// One scrubber/auditor pass: verify every stored page against its
    /// recorded checksum, quarantine (flush wholesale) each object holding
    /// at least one corrupt page, and audit the accounting invariants.
    ///
    /// Quarantine runs in (pool id, object id) order, so the victim stream
    /// is independent of hash-map iteration order and pinned by tests.
    /// Quarantining the whole object mirrors real scrubbers distrusting the
    /// blast radius of detected media errors, and keeps the guest's
    /// recovery story uniform: every page of the object becomes a miss /
    /// typed error, never wrong bytes.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut pages_checked = 0u64;
        let mut corrupt_pages = 0u64;
        let mut to_quarantine: Vec<(PoolId, ObjectId)> = Vec::new();
        let arena = &mut self.arena;
        let integrity = &mut self.integrity;
        for (pid, pool) in self.pools.iter().enumerate() {
            let Some(pool) = pool.as_ref() else { continue };
            for (&obj, &s) in pool.objects.iter() {
                let mut corrupt_here = false;
                for &slot in pool.obj_slots[s as usize].values() {
                    pages_checked += 1;
                    let e = arena.get_mut(slot);
                    if e.payload.checksum() != e.sum {
                        corrupt_pages += 1;
                        corrupt_here = true;
                        if !e.flagged {
                            e.flagged = true;
                            integrity.detections += 1;
                        }
                    }
                }
                if corrupt_here {
                    to_quarantine.push((PoolId(pid as u32), obj));
                }
            }
        }
        to_quarantine.sort_unstable();
        let mut quarantined = Vec::with_capacity(to_quarantine.len());
        for (pid, obj) in to_quarantine {
            let owner = self
                .pool_info(pid)
                .map(|(v, _)| v)
                .expect("pool existed during the scan");
            let pages = self
                .flush_object(pid, obj)
                .expect("pool existed during the scan");
            quarantined.push(QuarantinedObject {
                pool: pid,
                owner,
                object: obj,
                pages,
            });
        }
        ScrubReport {
            pages_checked,
            corrupt_pages,
            quarantined,
            accounting_ok: accounting_consistent(self),
        }
    }
}

/// Invariant check used by tests and debug assertions: global `used` equals
/// the sum of pool page counts, the sum of per-VM accounting, and the
/// arena's live slot count; the ephemeral live counter matches the
/// ephemeral pools' contents; every pool's cached page count matches its
/// object maps and its object-slot bookkeeping is balanced.
#[doc(hidden)]
pub fn accounting_consistent<P: PagePayload>(b: &TmemBackend<P>) -> bool {
    let pools_match = b.pools.iter().flatten().all(|p| {
        p.obj_slots.iter().map(|m| m.len() as u64).sum::<u64>() == p.page_count
            && p.objects.len() + p.free_objs.len() == p.obj_slots.len()
    });
    let by_pool: u64 = b.pools.iter().flatten().map(|p| p.page_count()).sum();
    let by_vm: u64 = b.vm_used.iter().sum();
    let ephemeral: u64 = b
        .pools
        .iter()
        .flatten()
        .filter(|p| p.kind == PoolKind::Ephemeral)
        .map(|p| p.page_count())
        .sum();
    pools_match
        && by_pool == b.used
        && by_vm == b.used
        && b.arena.live() as u64 == b.used
        && ephemeral == b.ephemeral_pages
        && b.used <= b.capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Fingerprint, PageBuf};

    fn persistent_pool(cap: u64) -> (TmemBackend<PageBuf>, PoolId) {
        let mut b = TmemBackend::new(cap);
        let p = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        (b, p)
    }

    #[test]
    fn put_get_roundtrips_bytes_exactly() {
        let (mut b, pool) = persistent_pool(8);
        let page = PageBuf::filled(0xAB);
        b.put(pool, ObjectId(1), 0, page.clone()).unwrap();
        let got = b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(got, page);
    }

    #[test]
    fn persistent_get_is_exclusive() {
        let (mut b, pool) = persistent_pool(8);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        assert_eq!(b.used(), 1);
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 0, "frontswap get must free the frame");
        assert_eq!(b.get(pool, ObjectId(1), 0), Err(TmemError::NoSuchPage));
    }

    #[test]
    fn ephemeral_get_is_a_copy() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(8);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(2)).unwrap();
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 1, "cleancache get must keep the page");
        assert!(b.get(pool, ObjectId(1), 0).is_ok());
    }

    #[test]
    fn persistent_put_fails_when_full() {
        let (mut b, pool) = persistent_pool(2);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert_eq!(
            b.put(pool, ObjectId(1), 2, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn replacement_put_needs_no_frame() {
        let (mut b, pool) = persistent_pool(1);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(out, PutOutcome::Replaced);
        assert_eq!(b.get(pool, ObjectId(1), 0).unwrap(), PageBuf::filled(9));
    }

    #[test]
    fn replacement_put_works_at_full_capacity() {
        // The node-full path must still find the existing key and replace
        // in place rather than failing with NoCapacity.
        let (mut b, pool) = persistent_pool(2);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert_eq!(b.free_pages(), 0);
        let out = b.put(pool, ObjectId(1), 1, PageBuf::filled(9)).unwrap();
        assert_eq!(out, PutOutcome::Replaced);
        assert_eq!(b.get(pool, ObjectId(1), 1).unwrap(), PageBuf::filled(9));
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn ephemeral_put_recycles_oldest_when_full() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 0))
        );
        assert!(!b.contains(pool, ObjectId(1), 0));
        assert!(b.contains(pool, ObjectId(1), 2));
        assert_eq!(b.evictions(), 1);
    }

    #[test]
    fn ephemeral_eviction_never_touches_persistent_pages() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pp = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let ep = b.new_pool(VmId(2), PoolKind::Ephemeral).unwrap();
        b.put(pp, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pp, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        // Node full of persistent pages: ephemeral put has nothing to evict.
        assert_eq!(
            b.put(ep, ObjectId(9), 0, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert!(b.contains(pp, ObjectId(1), 0));
        assert!(b.contains(pp, ObjectId(1), 1));
    }

    #[test]
    fn flush_page_and_object() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..4 {
            b.put(pool, ObjectId(7), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert!(b.flush_page(pool, ObjectId(7), 2).unwrap());
        assert!(
            !b.flush_page(pool, ObjectId(7), 2).unwrap(),
            "double flush is a no-op"
        );
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 3);
        assert_eq!(b.used(), 0);
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 0);
    }

    #[test]
    fn flush_object_spares_other_objects() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..3 {
            b.put(pool, ObjectId(7), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        b.put(pool, ObjectId(8), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 3);
        assert!(b.contains(pool, ObjectId(8), 0));
        assert_eq!(b.used(), 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn flush_object_counts_only_live_pages_after_churn() {
        // Consume and flush some of an object's pages, then re-put one:
        // flush_object must count each live page exactly once.
        let (mut b, pool) = persistent_pool(32);
        for i in 0..8 {
            b.put(pool, ObjectId(3), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        b.get(pool, ObjectId(3), 0).unwrap(); // exclusive: page gone
        b.flush_page(pool, ObjectId(3), 1).unwrap();
        b.put(pool, ObjectId(3), 1, PageBuf::filled(99)).unwrap();
        assert_eq!(b.flush_object(pool, ObjectId(3)).unwrap(), 7);
        assert_eq!(b.used(), 0);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn drained_objects_release_and_reuse_their_map_storage() {
        // Exclusive gets drain object after object; each emptied object's
        // map must be parked and reused, not leaked.
        let (mut b, pool) = persistent_pool(64);
        for o in 0..16u64 {
            for i in 0..4u32 {
                b.put(pool, ObjectId(o), i, PageBuf::filled(o as u8))
                    .unwrap();
            }
            for i in 0..4u32 {
                b.get(pool, ObjectId(o), i).unwrap();
            }
        }
        let p = b.pools[pool.0 as usize].as_ref().unwrap();
        assert_eq!(p.objects.len(), 0, "all objects drained");
        assert!(
            p.obj_slots.len() <= 2,
            "object map storage must be reused across objects, \
             not grown per object (got {} slots)",
            p.obj_slots.len()
        );
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn interleaved_object_access_stays_correct_through_mru_cache() {
        // Alternate between two objects so ops keep missing the MRU cache,
        // then flush one object and keep using the other.
        let (mut b, pool) = persistent_pool(64);
        for i in 0..8u32 {
            b.put(pool, ObjectId(1), i, PageBuf::filled(1)).unwrap();
            b.put(pool, ObjectId(2), i, PageBuf::filled(2)).unwrap();
        }
        assert_eq!(b.flush_object(pool, ObjectId(1)).unwrap(), 8);
        // Object 1 is gone; object 2 must be fully intact.
        assert!(!b.contains(pool, ObjectId(1), 0));
        for i in 0..8u32 {
            assert_eq!(b.get(pool, ObjectId(2), i).unwrap(), PageBuf::filled(2));
        }
        // Re-put into the flushed object: it must come back cleanly.
        b.put(pool, ObjectId(1), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(b.get(pool, ObjectId(1), 0).unwrap(), PageBuf::filled(9));
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn destroy_pool_frees_everything_and_invalidates_id() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..5 {
            b.put(pool, ObjectId(1), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert_eq!(b.destroy_pool(pool).unwrap(), 5);
        assert_eq!(b.used(), 0);
        assert_eq!(b.used_by(VmId(1)), 0);
        assert_eq!(
            b.put(pool, ObjectId(1), 0, PageBuf::filled(0)),
            Err(TmemError::NoSuchPool)
        );
        assert_eq!(b.destroy_pool(pool), Err(TmemError::NoSuchPool));
    }

    #[test]
    fn pool_ids_keep_growing_past_destroyed_holes() {
        let mut b: TmemBackend<Fingerprint> = TmemBackend::new(8);
        let p0 = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p1 = b.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        b.destroy_pool(p0).unwrap();
        let p2 = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        assert_eq!((p0.0, p1.0, p2.0), (0, 1, 2), "ids are never reused");
        assert_eq!(b.pool_count(), 2);
        assert_eq!(b.pool_info(p0), None);
        assert_eq!(b.pool_info(p2), Some((VmId(1), PoolKind::Ephemeral)));
    }

    #[test]
    fn per_vm_accounting_tracks_ownership() {
        let mut b: TmemBackend<Fingerprint> = TmemBackend::new(10);
        let p1 = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p2 = b.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        for i in 0..3 {
            b.put(p1, ObjectId(0), i, Fingerprint::of(i as u64, 0))
                .unwrap();
        }
        for i in 0..2 {
            b.put(p2, ObjectId(0), i, Fingerprint::of(i as u64, 0))
                .unwrap();
        }
        assert_eq!(b.used_by(VmId(1)), 3);
        assert_eq!(b.used_by(VmId(2)), 2);
        assert_eq!(b.used(), 5);
        b.get(p1, ObjectId(0), 0).unwrap();
        assert_eq!(b.used_by(VmId(1)), 2);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn stale_fifo_entries_are_skipped_on_eviction() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        // Flush the oldest; its FIFO entry goes stale.
        b.flush_page(pool, ObjectId(1), 0).unwrap();
        b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        // Node is full again; the next eviction must skip the stale entry
        // and evict page 1, not fail.
        let out = b.put(pool, ObjectId(1), 3, PageBuf::filled(3)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 1))
        );
    }

    #[test]
    fn get_from_unknown_pool_errors() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        assert_eq!(
            b.get(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
        assert_eq!(
            b.flush_page(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
    }

    #[test]
    fn reclaim_queue_compaction_preserves_victim_order() {
        // Churn a persistent pool hard enough to force several compactions,
        // then check the reclaim stream still yields oldest-first victims.
        let (mut b, pool) = persistent_pool(1024);
        for round in 0u64..8 {
            for i in 0..200u32 {
                b.put(pool, ObjectId(round), i, PageBuf::filled(i as u8))
                    .unwrap();
            }
            // Consume most of them via exclusive gets → tombstones.
            for i in 0..190u32 {
                b.get(pool, ObjectId(round), i).unwrap();
            }
        }
        // The queue must have been compacted below the raw 1600 insertions.
        let queued = {
            let p = b.pools[pool.0 as usize].as_ref().unwrap();
            p.put_order.len()
        };
        assert!(
            queued <= 2 * 80 + TOMBSTONE_SLACK + 200,
            "queue not compacted: {queued} entries for 80 live pages"
        );
        let victims = b.reclaim_oldest_persistent(pool, 3);
        assert_eq!(
            victims,
            vec![(ObjectId(0), 190), (ObjectId(0), 191), (ObjectId(0), 192)]
        );
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn corrupt_persistent_get_is_error_not_wrong_bytes() {
        let (mut b, pool) = persistent_pool(8);
        b.arm_corruption();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert!(b.corrupt_page(pool, ObjectId(1), 1));
        // Correct-or-error: the typed error, deterministically, on every
        // retry — the page stays in place and is counted detected once.
        assert_eq!(b.get(pool, ObjectId(1), 1), Err(TmemError::Corrupt));
        assert_eq!(b.get(pool, ObjectId(1), 1), Err(TmemError::Corrupt));
        assert!(b.contains(pool, ObjectId(1), 1));
        assert_eq!(b.integrity().detections, 1);
        assert_eq!(b.integrity().corrupt_dropped, 0);
        // The clean sibling is unaffected.
        assert_eq!(b.get(pool, ObjectId(1), 0).unwrap(), PageBuf::filled(1));
        // The guest's recovery flush removes it without another detection.
        assert!(b.flush_page(pool, ObjectId(1), 1).unwrap());
        assert_eq!(b.integrity().detections, 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn corrupt_ephemeral_get_degrades_to_clean_miss() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(8);
        b.arm_corruption();
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert!(b.corrupt_page(pool, ObjectId(1), 0));
        // Correct-or-miss: one typed error while dropping, then a miss.
        assert_eq!(b.get(pool, ObjectId(1), 0), Err(TmemError::Corrupt));
        assert_eq!(b.get(pool, ObjectId(1), 0), Err(TmemError::NoSuchPage));
        assert_eq!(b.used(), 1);
        assert_eq!(b.integrity().detections, 1);
        assert_eq!(b.integrity().corrupt_dropped, 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn corrupt_page_needs_a_distinct_donor() {
        let (mut b, pool) = persistent_pool(8);
        // Unarmed: no donors are retained.
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        assert!(!b.corrupt_page(pool, ObjectId(1), 0));
        b.arm_corruption();
        // One payload value seen: the only donor checksum matches the
        // victim's, so cross-wiring cannot produce a mismatch.
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        assert!(!b.corrupt_page(pool, ObjectId(1), 1));
        // A second, different payload provides the wrong bytes.
        b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        assert!(b.corrupt_page(pool, ObjectId(1), 2));
        assert_eq!(b.get(pool, ObjectId(1), 2), Err(TmemError::Corrupt));
        // Absent keys cannot be corrupted.
        assert!(!b.corrupt_page(pool, ObjectId(9), 0));
    }

    #[test]
    fn reclaim_withholds_corrupt_victims_from_swap_writeback() {
        let (mut b, pool) = persistent_pool(8);
        b.arm_corruption();
        for i in 0..3 {
            b.put(pool, ObjectId(1), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert!(b.corrupt_page(pool, ObjectId(1), 0));
        // The oldest victim is corrupt: it is flushed but never delivered,
        // so wrong bytes cannot reach the owner's swap device.
        let victims = b.reclaim_oldest_persistent(pool, 2);
        assert_eq!(victims, vec![(ObjectId(1), 1), (ObjectId(1), 2)]);
        assert!(!b.contains(pool, ObjectId(1), 0));
        assert_eq!(b.integrity().detections, 1);
        assert_eq!(b.integrity().corrupt_dropped, 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn scrub_quarantines_corrupt_objects_in_key_order() {
        let (mut b, pool) = persistent_pool(32);
        b.arm_corruption();
        for obj in [5u64, 2, 9] {
            for i in 0..3u32 {
                b.put(
                    pool,
                    ObjectId(obj),
                    i,
                    PageBuf::filled((obj as u8) * 10 + i as u8),
                )
                .unwrap();
            }
        }
        assert!(b.corrupt_page(pool, ObjectId(9), 1));
        assert!(b.corrupt_page(pool, ObjectId(2), 0));
        let report = b.scrub();
        assert_eq!(report.pages_checked, 9);
        assert_eq!(report.corrupt_pages, 2);
        assert!(report.accounting_ok);
        // Whole objects are quarantined, in (pool, object) order regardless
        // of hash-map iteration order.
        let order: Vec<_> = report
            .quarantined
            .iter()
            .map(|q| (q.pool, q.owner, q.object, q.pages))
            .collect();
        assert_eq!(
            order,
            vec![
                (pool, VmId(1), ObjectId(2), 3),
                (pool, VmId(1), ObjectId(9), 3),
            ]
        );
        assert_eq!(b.integrity().detections, 2);
        // The clean object survives; a second pass finds nothing.
        assert!(b.contains(pool, ObjectId(5), 0));
        assert_eq!(b.used(), 3);
        let again = b.scrub();
        assert_eq!(again.corrupt_pages, 0);
        assert!(again.quarantined.is_empty());
        assert_eq!(again.pages_checked, 3);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn destroying_a_pool_with_corrupt_pages_still_counts_detection() {
        let (mut b, pool) = persistent_pool(8);
        b.arm_corruption();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert!(b.corrupt_page(pool, ObjectId(1), 0));
        b.destroy_pool(pool).unwrap();
        assert_eq!(b.integrity().detections, 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn export_pool_returns_sorted_contents_and_removes_the_pool() {
        let (mut b, pool) = persistent_pool(32);
        for obj in [7u64, 1, 4] {
            for i in [3u32, 0, 1] {
                b.put(
                    pool,
                    ObjectId(obj),
                    i,
                    PageBuf::filled((obj + i as u64) as u8),
                )
                .unwrap();
            }
        }
        let (pages, purged) = b.export_pool(pool).unwrap();
        assert_eq!(purged, 0);
        let keys: Vec<_> = pages.iter().map(|&(o, i, _)| (o, i)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "export order must be (object, index) order");
        assert_eq!(pages.len(), 9);
        assert_eq!(
            pages.iter().find(|&&(o, i, _)| o == ObjectId(4) && i == 1),
            Some(&(ObjectId(4), 1, PageBuf::filled(5)))
        );
        assert_eq!(b.used(), 0);
        assert_eq!(b.used_by(VmId(1)), 0);
        assert_eq!(b.export_pool(pool), Err(TmemError::NoSuchPool));
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn export_pool_purges_corrupt_pages_instead_of_laundering_them() {
        let (mut b, pool) = persistent_pool(8);
        b.arm_corruption();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert!(b.corrupt_page(pool, ObjectId(1), 0));
        let (pages, purged) = b.export_pool(pool).unwrap();
        assert_eq!(purged, 1);
        assert_eq!(pages, vec![(ObjectId(1), 1, PageBuf::filled(2))]);
        assert_eq!(b.integrity().detections, 1);
        assert_eq!(b.integrity().corrupt_dropped, 1);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn ephemeral_fifo_compaction_preserves_eviction_order() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(1024);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        for i in 0..400u32 {
            b.put(pool, ObjectId(0), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        // Flush all but the last 10 → 390 tombstones, forcing compaction on
        // subsequent puts.
        for i in 0..390u32 {
            b.flush_page(pool, ObjectId(0), i).unwrap();
        }
        for i in 400..500u32 {
            b.put(pool, ObjectId(0), i, PageBuf::filled(i as u8))
                .unwrap();
        }
        assert!(
            b.ephemeral_fifo.len() <= 2 * 110 + TOMBSTONE_SLACK + 100,
            "fifo not compacted: {} entries for 110 live pages",
            b.ephemeral_fifo.len()
        );
        let evicted = b.evict_one_ephemeral().unwrap();
        assert_eq!(evicted, TmemKey::new(pool, ObjectId(0), 390));
        assert!(accounting_consistent(&b));
    }
}
