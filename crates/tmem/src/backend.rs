//! The tmem key–value page store.
//!
//! Semantics follow Xen's `common/tmem.c` as described in the paper and in
//! Magenheimer et al. (OLS 2009):
//!
//! * **Persistent pools (frontswap).** A successful `put` consumes one page
//!   frame; `get` is *exclusive* — it returns the page and frees the frame
//!   (a swap slot is read back exactly once before being invalidated).
//!   When no frame is free the put fails and the guest falls back to disk.
//! * **Ephemeral pools (cleancache).** Pages are a cache of clean pagecache
//!   data: `get` returns a copy and leaves the page, and when the node is
//!   out of frames a new ephemeral put may recycle the least-recently-added
//!   ephemeral page. Persistent pages are never evicted.
//! * `flush_page` / `flush_object` invalidate one page / every page of an
//!   object; `destroy_pool` drops everything a VM owns (VM teardown or
//!   process exit invalidating its swap slots).
//!
//! The backend also maintains the node-level accounting the paper's
//! Table I calls `node_info.free_tmem` and per-VM `tmem_used`.

use crate::error::TmemError;
use crate::key::{ObjectId, PageIndex, PoolId, TmemKey, VmId};
use crate::page::PagePayload;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Whether a pool's contents must survive until flushed (frontswap) or may
/// be dropped under pressure (cleancache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Frontswap-backed: contents are the only copy, gets are exclusive.
    Persistent,
    /// Cleancache-backed: contents are a clean cache, evictable, gets copy.
    Ephemeral,
}

/// Outcome of a successful put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// A new page frame was consumed.
    Stored,
    /// The key already existed; its contents were replaced in place and no
    /// new frame was consumed.
    Replaced,
    /// A new frame was obtained by evicting an ephemeral page (the evicted
    /// key is carried for observability).
    StoredAfterEviction(TmemKey),
}

#[derive(Debug)]
struct Pool<P> {
    owner: VmId,
    kind: PoolKind,
    // BTreeMap keeps flush_object and pool teardown deterministic.
    objects: BTreeMap<ObjectId, BTreeMap<PageIndex, P>>,
    page_count: u64,
    /// Persistent pages in put order (oldest first), validated lazily —
    /// the candidate stream for the hypervisor's slow reclaim.
    put_order: VecDeque<(ObjectId, PageIndex)>,
}

impl<P> Pool<P> {
    fn new(owner: VmId, kind: PoolKind) -> Self {
        Pool {
            owner,
            kind,
            objects: BTreeMap::new(),
            page_count: 0,
            put_order: VecDeque::new(),
        }
    }
}

/// The node-wide tmem backend: a budget of page frames plus the pools that
/// consume them.
#[derive(Debug)]
pub struct TmemBackend<P> {
    capacity: u64,
    used: u64,
    pools: HashMap<PoolId, Pool<P>>,
    next_pool_id: u32,
    per_vm_used: HashMap<VmId, u64>,
    /// Insertion-ordered queue of ephemeral pages, oldest first. Entries are
    /// validated lazily on pop (flushed pages simply get skipped).
    ephemeral_fifo: VecDeque<TmemKey>,
    evictions: u64,
}

impl<P: PagePayload> TmemBackend<P> {
    /// A backend owning `capacity` page frames pooled from idle and fallow
    /// node memory.
    pub fn new(capacity: u64) -> Self {
        TmemBackend {
            capacity,
            used: 0,
            pools: HashMap::new(),
            next_pool_id: 0,
            per_vm_used: HashMap::new(),
            ephemeral_fifo: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Total page-frame budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently holding pages.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Frames currently free (`node_info.free_tmem`).
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.used
    }

    /// Frames currently consumed by pools owned by `vm`.
    pub fn used_by(&self, vm: VmId) -> u64 {
        self.per_vm_used.get(&vm).copied().unwrap_or(0)
    }

    /// Number of ephemeral pages evicted so far (cleancache recycling).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of live pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Owner and kind of a pool, if it exists.
    pub fn pool_info(&self, pool: PoolId) -> Option<(VmId, PoolKind)> {
        self.pools.get(&pool).map(|p| (p.owner, p.kind))
    }

    /// Create a pool for `owner`. Mirrors the guest kernel module
    /// registering with tmem at initialization.
    pub fn new_pool(&mut self, owner: VmId, kind: PoolKind) -> Result<PoolId, TmemError> {
        let id = PoolId(self.next_pool_id);
        self.next_pool_id = self.next_pool_id.checked_add(1).ok_or(TmemError::PoolLimit)?;
        self.pools.insert(id, Pool::new(owner, kind));
        Ok(id)
    }

    /// Store a page. See [`PutOutcome`] for the three success shapes.
    ///
    /// Capacity rules: replacing an existing key never needs a frame; a new
    /// key needs one free frame; if none is free, an ephemeral put may
    /// recycle the oldest ephemeral page, a persistent put fails with
    /// [`TmemError::NoCapacity`].
    pub fn put(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        payload: P,
    ) -> Result<PutOutcome, TmemError> {
        let pool = self.pools.get(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let kind = pool.kind;
        let owner = pool.owner;

        // Replacement in place: no allocation needed.
        let exists = pool
            .objects
            .get(&object)
            .is_some_and(|o| o.contains_key(&index));
        if exists {
            let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
            pool.objects
                .get_mut(&object)
                .expect("object checked above")
                .insert(index, payload);
            return Ok(PutOutcome::Replaced);
        }

        let mut evicted = None;
        if self.used >= self.capacity {
            if kind == PoolKind::Ephemeral {
                evicted = self.evict_one_ephemeral();
            }
            if self.used >= self.capacity {
                return Err(TmemError::NoCapacity);
            }
        }

        let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
        pool.objects.entry(object).or_default().insert(index, payload);
        pool.page_count += 1;
        self.used += 1;
        *self.per_vm_used.entry(owner).or_insert(0) += 1;
        match kind {
            PoolKind::Ephemeral => self
                .ephemeral_fifo
                .push_back(TmemKey::new(pool_id, object, index)),
            PoolKind::Persistent => {
                let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
                pool.put_order.push_back((object, index));
            }
        }
        Ok(match evicted {
            Some(k) => PutOutcome::StoredAfterEviction(k),
            None => PutOutcome::Stored,
        })
    }

    /// Retrieve a page.
    ///
    /// Persistent pools: the page is removed and its frame freed (exclusive
    /// get — frontswap semantics). Ephemeral pools: a copy is returned and
    /// the page stays cached.
    pub fn get(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<P, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        match pool.kind {
            PoolKind::Ephemeral => pool
                .objects
                .get(&object)
                .and_then(|o| o.get(&index))
                .cloned()
                .ok_or(TmemError::NoSuchPage),
            PoolKind::Persistent => {
                let owner = pool.owner;
                let obj = pool.objects.get_mut(&object).ok_or(TmemError::NoSuchPage)?;
                let payload = obj.remove(&index).ok_or(TmemError::NoSuchPage)?;
                if obj.is_empty() {
                    pool.objects.remove(&object);
                }
                pool.page_count -= 1;
                self.used -= 1;
                self.debit(owner, 1);
                Ok(payload)
            }
        }
    }

    /// Invalidate one page. Returns whether a page was actually removed.
    pub fn flush_page(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<bool, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        let Some(obj) = pool.objects.get_mut(&object) else {
            return Ok(false);
        };
        if obj.remove(&index).is_none() {
            return Ok(false);
        }
        if obj.is_empty() {
            pool.objects.remove(&object);
        }
        pool.page_count -= 1;
        self.used -= 1;
        self.debit(owner, 1);
        Ok(true)
    }

    /// Invalidate every page of an object. Returns the number of pages
    /// removed.
    pub fn flush_object(&mut self, pool_id: PoolId, object: ObjectId) -> Result<u64, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        let Some(obj) = pool.objects.remove(&object) else {
            return Ok(0);
        };
        let n = obj.len() as u64;
        pool.page_count -= n;
        self.used -= n;
        self.debit(owner, n);
        Ok(n)
    }

    /// Destroy a pool and free everything in it. Returns the number of pages
    /// freed.
    pub fn destroy_pool(&mut self, pool_id: PoolId) -> Result<u64, TmemError> {
        let pool = self.pools.remove(&pool_id).ok_or(TmemError::NoSuchPool)?;
        self.used -= pool.page_count;
        self.debit(pool.owner, pool.page_count);
        Ok(pool.page_count)
    }

    /// True if the key currently holds a page.
    pub fn contains(&self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> bool {
        self.pools
            .get(&pool_id)
            .and_then(|p| p.objects.get(&object))
            .is_some_and(|o| o.contains_key(&index))
    }

    /// Number of pages held by one pool.
    pub fn pool_page_count(&self, pool_id: PoolId) -> Option<u64> {
        self.pools.get(&pool_id).map(|p| p.page_count)
    }

    fn debit(&mut self, owner: VmId, n: u64) {
        if n == 0 {
            return;
        }
        let e = self
            .per_vm_used
            .get_mut(&owner)
            .expect("accounting entry must exist for owner with pages");
        debug_assert!(*e >= n, "per-VM accounting underflow");
        *e -= n;
    }

    /// Remove and return up to `max` of the oldest persistent pages of a
    /// pool (the hypervisor's slow-reclaim victim stream). The pages are
    /// flushed from the store; the caller is responsible for writing them
    /// to the owning VM's swap device.
    pub fn reclaim_oldest_persistent(
        &mut self,
        pool_id: PoolId,
        max: u64,
    ) -> Vec<(ObjectId, PageIndex)> {
        let mut out = Vec::new();
        while (out.len() as u64) < max {
            let Some(pool) = self.pools.get_mut(&pool_id) else {
                break;
            };
            debug_assert_eq!(pool.kind, PoolKind::Persistent);
            let Some((obj, idx)) = pool.put_order.pop_front() else {
                break;
            };
            // Lazy validation: the entry may have been consumed by an
            // exclusive get or flush already.
            if self.contains(pool_id, obj, idx) {
                self.flush_page(pool_id, obj, idx)
                    .expect("pool existed a moment ago");
                out.push((obj, idx));
            }
        }
        out
    }

    /// Drop the oldest still-present ephemeral page; returns its key.
    fn evict_one_ephemeral(&mut self) -> Option<TmemKey> {
        while let Some(key) = self.ephemeral_fifo.pop_front() {
            // Lazy validation: the entry may refer to a page that has since
            // been flushed or whose pool was destroyed.
            let still_there = self.contains(key.pool, key.object, key.index);
            if still_there {
                self.flush_page(key.pool, key.object, key.index)
                    .expect("pool existed a moment ago");
                self.evictions += 1;
                return Some(key);
            }
        }
        None
    }
}

/// Invariant check used by tests and debug assertions: global `used` equals
/// the sum of pool page counts and the sum of per-VM accounting.
#[doc(hidden)]
pub fn accounting_consistent<P: PagePayload>(b: &TmemBackend<P>) -> bool {
    let by_pool: u64 = b.pools.values().map(|p| p.page_count).sum();
    let by_vm: u64 = b.per_vm_used.values().sum();
    let by_content: u64 = b
        .pools
        .values()
        .map(|p| p.objects.values().map(|o| o.len() as u64).sum::<u64>())
        .sum();
    by_pool == b.used && by_vm == b.used && by_content == b.used && b.used <= b.capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Fingerprint, PageBuf};

    fn persistent_pool(cap: u64) -> (TmemBackend<PageBuf>, PoolId) {
        let mut b = TmemBackend::new(cap);
        let p = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        (b, p)
    }

    #[test]
    fn put_get_roundtrips_bytes_exactly() {
        let (mut b, pool) = persistent_pool(8);
        let page = PageBuf::filled(0xAB);
        b.put(pool, ObjectId(1), 0, page.clone()).unwrap();
        let got = b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(got, page);
    }

    #[test]
    fn persistent_get_is_exclusive() {
        let (mut b, pool) = persistent_pool(8);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        assert_eq!(b.used(), 1);
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 0, "frontswap get must free the frame");
        assert_eq!(b.get(pool, ObjectId(1), 0), Err(TmemError::NoSuchPage));
    }

    #[test]
    fn ephemeral_get_is_a_copy() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(8);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(2)).unwrap();
        b.get(pool, ObjectId(1), 0).unwrap();
        assert_eq!(b.used(), 1, "cleancache get must keep the page");
        assert!(b.get(pool, ObjectId(1), 0).is_ok());
    }

    #[test]
    fn persistent_put_fails_when_full() {
        let (mut b, pool) = persistent_pool(2);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        assert_eq!(
            b.put(pool, ObjectId(1), 2, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn replacement_put_needs_no_frame() {
        let (mut b, pool) = persistent_pool(1);
        b.put(pool, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 0, PageBuf::filled(9)).unwrap();
        assert_eq!(out, PutOutcome::Replaced);
        assert_eq!(b.get(pool, ObjectId(1), 0).unwrap(), PageBuf::filled(9));
    }

    #[test]
    fn ephemeral_put_recycles_oldest_when_full() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        let out = b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 0))
        );
        assert!(!b.contains(pool, ObjectId(1), 0));
        assert!(b.contains(pool, ObjectId(1), 2));
        assert_eq!(b.evictions(), 1);
    }

    #[test]
    fn ephemeral_eviction_never_touches_persistent_pages() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pp = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let ep = b.new_pool(VmId(2), PoolKind::Ephemeral).unwrap();
        b.put(pp, ObjectId(1), 0, PageBuf::filled(1)).unwrap();
        b.put(pp, ObjectId(1), 1, PageBuf::filled(2)).unwrap();
        // Node full of persistent pages: ephemeral put has nothing to evict.
        assert_eq!(
            b.put(ep, ObjectId(9), 0, PageBuf::filled(3)),
            Err(TmemError::NoCapacity)
        );
        assert!(b.contains(pp, ObjectId(1), 0));
        assert!(b.contains(pp, ObjectId(1), 1));
    }

    #[test]
    fn flush_page_and_object() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..4 {
            b.put(pool, ObjectId(7), i, PageBuf::filled(i as u8)).unwrap();
        }
        assert!(b.flush_page(pool, ObjectId(7), 2).unwrap());
        assert!(!b.flush_page(pool, ObjectId(7), 2).unwrap(), "double flush is a no-op");
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 3);
        assert_eq!(b.used(), 0);
        assert_eq!(b.flush_object(pool, ObjectId(7)).unwrap(), 0);
    }

    #[test]
    fn destroy_pool_frees_everything_and_invalidates_id() {
        let (mut b, pool) = persistent_pool(8);
        for i in 0..5 {
            b.put(pool, ObjectId(1), i, PageBuf::filled(i as u8)).unwrap();
        }
        assert_eq!(b.destroy_pool(pool).unwrap(), 5);
        assert_eq!(b.used(), 0);
        assert_eq!(b.used_by(VmId(1)), 0);
        assert_eq!(
            b.put(pool, ObjectId(1), 0, PageBuf::filled(0)),
            Err(TmemError::NoSuchPool)
        );
    }

    #[test]
    fn per_vm_accounting_tracks_ownership() {
        let mut b: TmemBackend<Fingerprint> = TmemBackend::new(10);
        let p1 = b.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let p2 = b.new_pool(VmId(2), PoolKind::Persistent).unwrap();
        for i in 0..3 {
            b.put(p1, ObjectId(0), i, Fingerprint::of(i as u64, 0)).unwrap();
        }
        for i in 0..2 {
            b.put(p2, ObjectId(0), i, Fingerprint::of(i as u64, 0)).unwrap();
        }
        assert_eq!(b.used_by(VmId(1)), 3);
        assert_eq!(b.used_by(VmId(2)), 2);
        assert_eq!(b.used(), 5);
        b.get(p1, ObjectId(0), 0).unwrap();
        assert_eq!(b.used_by(VmId(1)), 2);
        assert!(accounting_consistent(&b));
    }

    #[test]
    fn stale_fifo_entries_are_skipped_on_eviction() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        let pool = b.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        b.put(pool, ObjectId(1), 0, PageBuf::filled(0)).unwrap();
        b.put(pool, ObjectId(1), 1, PageBuf::filled(1)).unwrap();
        // Flush the oldest; its FIFO entry goes stale.
        b.flush_page(pool, ObjectId(1), 0).unwrap();
        b.put(pool, ObjectId(1), 2, PageBuf::filled(2)).unwrap();
        // Node is full again; the next eviction must skip the stale entry
        // and evict page 1, not fail.
        let out = b.put(pool, ObjectId(1), 3, PageBuf::filled(3)).unwrap();
        assert_eq!(
            out,
            PutOutcome::StoredAfterEviction(TmemKey::new(pool, ObjectId(1), 1))
        );
    }

    #[test]
    fn get_from_unknown_pool_errors() {
        let mut b: TmemBackend<PageBuf> = TmemBackend::new(2);
        assert_eq!(
            b.get(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
        assert_eq!(
            b.flush_page(PoolId(42), ObjectId(0), 0),
            Err(TmemError::NoSuchPool)
        );
    }
}
