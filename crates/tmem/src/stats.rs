//! Table I: the memory statistics exchanged between hypervisor and Memory
//! Manager.
//!
//! The paper's Table I defines the full vocabulary. The hypervisor-resident
//! state is [`VmDataHyp`] (`vm_data_hyp[id].*`) and [`NodeInfo`]
//! (`node_info.*`); the per-interval snapshot shipped to the MM over the
//! TKM/netlink path is [`MemStats`] (`memstats.*`); and the MM's reply is a
//! vector of [`MmTarget`] (`mm_out[i].*`). The sampling interval is one
//! second.

use crate::key::VmId;
use serde::{Deserialize, Serialize};
use sim_core::metrics::Counter;
use sim_core::time::SimTime;

/// Per-VM state kept by the hypervisor (`vm_data_hyp[id]` in Table I), plus
/// the cumulative counters the policies and figures need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmDataHyp {
    /// Identifier of the VM within Xen.
    pub vm_id: VmId,
    /// Number of tmem pages currently used by the VM.
    pub tmem_used: u64,
    /// Target number of pages allocated to the VM, as set by the MM.
    pub mm_target: u64,
    /// Puts issued in the current sampling interval (success or not).
    pub puts_total: Counter,
    /// Puts that succeeded in the current sampling interval.
    pub puts_succ: Counter,
    /// Gets issued in the current sampling interval.
    pub gets_total: Counter,
    /// Gets that hit in the current sampling interval.
    pub gets_succ: Counter,
    /// Flush operations issued in the current sampling interval.
    pub flushes: Counter,
    /// Cumulative failed puts since VM registration. Algorithm 3
    /// (`reconf-static`) keys on this to decide whether a VM has ever been
    /// active on tmem.
    pub cumul_puts_failed: u64,
    /// Cumulative successful puts since VM registration.
    pub cumul_puts_succ: u64,
}

impl VmDataHyp {
    /// Fresh state for a VM that just registered with tmem. The initial
    /// target is supplied by the active policy (0 for reconf-static and
    /// smart-alloc, a fair share for static-alloc, the whole node for
    /// greedy).
    pub fn new(vm_id: VmId, initial_target: u64) -> Self {
        VmDataHyp {
            vm_id,
            tmem_used: 0,
            mm_target: initial_target,
            puts_total: Counter::default(),
            puts_succ: Counter::default(),
            gets_total: Counter::default(),
            gets_succ: Counter::default(),
            flushes: Counter::default(),
            cumul_puts_failed: 0,
            cumul_puts_succ: 0,
        }
    }

    /// Failed puts in the current interval.
    pub fn interval_failed_puts(&self) -> u64 {
        self.puts_total.get() - self.puts_succ.get()
    }

    /// Close the sampling interval: snapshot the interval counters into a
    /// [`VmStat`] and reset them.
    pub fn close_interval(&mut self) -> VmStat {
        let puts_total = self.puts_total.take();
        let puts_succ = self.puts_succ.take();
        let gets_total = self.gets_total.take();
        let gets_succ = self.gets_succ.take();
        let flushes = self.flushes.take();
        self.cumul_puts_failed += puts_total - puts_succ;
        self.cumul_puts_succ += puts_succ;
        VmStat {
            vm_id: self.vm_id,
            puts_total,
            puts_succ,
            gets_total,
            gets_succ,
            flushes,
            tmem_used: self.tmem_used,
            mm_target: self.mm_target,
            cumul_puts_failed: self.cumul_puts_failed,
        }
    }
}

/// Node-level state (`node_info` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Total pages available for tmem on the node.
    pub total_tmem: u64,
    /// Number of free pages available for tmem.
    pub free_tmem: u64,
    /// Number of VMs registered.
    pub vm_count: u32,
}

/// One VM's slice of a [`MemStats`] snapshot (`memstats.vm[i]` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmStat {
    /// Identifier of the VM within the MM.
    pub vm_id: VmId,
    /// Puts issued by the VM in the sampling interval.
    pub puts_total: u64,
    /// Puts that succeeded in the sampling interval.
    pub puts_succ: u64,
    /// Gets issued in the sampling interval.
    pub gets_total: u64,
    /// Gets that hit in the sampling interval.
    pub gets_succ: u64,
    /// Flushes issued in the sampling interval.
    pub flushes: u64,
    /// Pages of tmem in use by the VM at snapshot time.
    pub tmem_used: u64,
    /// The VM's target at snapshot time (policies read back their own
    /// previous decision from here, per Algorithm 4 line 10).
    pub mm_target: u64,
    /// Cumulative failed puts since registration (Algorithm 3 line 5).
    pub cumul_puts_failed: u64,
}

impl VmStat {
    /// Failed puts in this interval (Algorithm 4 line 8).
    pub fn failed_puts(&self) -> u64 {
        self.puts_total - self.puts_succ
    }
}

/// The statistics snapshot the hypervisor ships to the MM every sampling
/// interval (`memstats` in Table I).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Snapshot instant.
    pub at: SimTime,
    /// Node-level information.
    pub node: NodeInfo,
    /// Per-VM slices; `node.vm_count == vms.len()`.
    pub vms: Vec<VmStat>,
}

impl MemStats {
    /// Amount of active VMs as seen by the MM (`memstats.vm_count`).
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }
}

/// A sequence-stamped statistics message, as it travels the VIRQ + netlink
/// relay from the hypervisor to the user-space MM.
///
/// The hypervisor stamps every snapshot with a monotonically increasing
/// sequence number at sampling time. The relay path may drop, delay or
/// duplicate messages (fault injection); the sequence number lets the MM
/// detect gaps, discard duplicates idempotently and ignore stale reordered
/// snapshots — see `StatsHistory::observe` in the core crate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsMsg {
    /// Monotonic sample sequence number (1-based; assigned by the
    /// hypervisor at `sample()` time).
    pub seq: u64,
    /// The snapshot payload.
    pub stats: MemStats,
}

/// The MM's reply to a statistics message: a sequence-stamped target vector.
///
/// The MM numbers its pushes so the hypervisor can apply them idempotently:
/// a duplicate or reordered push with `seq` at or below the last applied one
/// is ignored rather than overwriting newer targets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetMsg {
    /// Monotonic push sequence number (1-based; assigned by the MM).
    pub seq: u64,
    /// The per-VM targets to install.
    pub targets: Vec<MmTarget>,
}

/// One entry of the MM's reply (`mm_out[i]` in Table I): a VM and its new
/// target allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmTarget {
    /// VM identifier that maps a VM to its target allocation.
    pub vm_id: VmId,
    /// Memory allocation target as calculated by the policy in the MM.
    pub mm_target: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_interval_resets_and_accumulates() {
        let mut d = VmDataHyp::new(VmId(3), 0);
        d.puts_total.add(10);
        d.puts_succ.add(7);
        d.gets_total.add(4);
        d.gets_succ.add(4);
        d.flushes.add(2);
        d.tmem_used = 7;
        let s = d.close_interval();
        assert_eq!(s.puts_total, 10);
        assert_eq!(s.puts_succ, 7);
        assert_eq!(s.failed_puts(), 3);
        assert_eq!(s.cumul_puts_failed, 3);
        assert_eq!(s.tmem_used, 7);
        // Interval counters reset; cumulative counters persist.
        assert_eq!(d.puts_total.get(), 0);
        assert_eq!(d.cumul_puts_failed, 3);
        d.puts_total.add(1);
        let s2 = d.close_interval();
        assert_eq!(s2.cumul_puts_failed, 4);
        assert_eq!(d.cumul_puts_succ, 7);
    }

    #[test]
    fn interval_failed_puts_reads_live_counters() {
        let mut d = VmDataHyp::new(VmId(1), 5);
        d.puts_total.add(6);
        d.puts_succ.add(2);
        assert_eq!(d.interval_failed_puts(), 4);
    }

    #[test]
    fn memstats_vm_count_matches() {
        let stats = MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: 100,
                free_tmem: 50,
                vm_count: 2,
            },
            vms: vec![
                VmStat {
                    vm_id: VmId(1),
                    puts_total: 0,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 25,
                    mm_target: 50,
                    cumul_puts_failed: 0,
                },
                VmStat {
                    vm_id: VmId(2),
                    puts_total: 0,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 25,
                    mm_target: 50,
                    cumul_puts_failed: 0,
                },
            ],
        };
        assert_eq!(stats.vm_count(), 2);
        assert_eq!(stats.node.vm_count as usize, stats.vm_count());
    }
}
