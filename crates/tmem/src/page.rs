//! Page payloads.
//!
//! The backend is generic over the payload type it stores per page. Two
//! implementations are provided:
//!
//! * [`PageBuf`] — a real 4 KiB byte buffer (cheaply clonable via
//!   [`bytes::Bytes`]). Unit, integration and property tests use it to prove
//!   byte-exact round-trips through put/get.
//! * [`Fingerprint`] — a 64-bit content fingerprint. Scenario-scale
//!   simulations store gigabytes of simulated pages; carrying real buffers
//!   would multiply host memory use for no benefit, while a fingerprint
//!   still catches any lost, duplicated or mixed-up page (the guest verifies
//!   the fingerprint of every page it gets back).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Size of one page, in bytes. x86 base pages, as in the paper's testbed.
pub const PAGE_SIZE: usize = 4096;

/// Marker trait for types the backend can store per page.
///
/// `Clone` is required because ephemeral (cleancache) gets return a copy
/// while leaving the stored page in place; `Eq` lets tests and guests verify
/// round-trips.
pub trait PagePayload: Clone + Eq + std::fmt::Debug {}
impl<T: Clone + Eq + std::fmt::Debug> PagePayload for T {}

/// A real page of data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuf(Bytes);

impl PageBuf {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        PageBuf(Bytes::from_static(&[0u8; PAGE_SIZE]))
    }

    /// Build a page from exactly [`PAGE_SIZE`] bytes.
    ///
    /// # Panics
    /// Panics if `data` is not exactly one page long — a short "page" would
    /// silently corrupt a guest, so this is a programming error.
    pub fn from_bytes(data: Bytes) -> Self {
        assert_eq!(
            data.len(),
            PAGE_SIZE,
            "page payload must be {PAGE_SIZE} bytes"
        );
        PageBuf(data)
    }

    /// A page filled with a repeating byte pattern (test helper).
    pub fn filled(byte: u8) -> Self {
        PageBuf(Bytes::from(vec![byte; PAGE_SIZE]))
    }

    /// Borrow the page contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Fingerprint of this page's contents (FNV-1a over the bytes), for
    /// cross-checking against [`Fingerprint`] payloads.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.0.iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Fingerprint(h)
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

/// A compact stand-in for page contents: a 64-bit fingerprint.
///
/// Guests in scenario simulations construct a fingerprint from the page's
/// identity and a per-page version counter, so stale data (a page returned
/// from tmem after the guest overwrote and re-put it) is detected exactly
/// like corruption would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Derive a fingerprint from a page identity and version.
    pub fn of(page_id: u64, version: u64) -> Self {
        // SplitMix64 finalizer: cheap, well-mixed.
        let mut z = page_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(version);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Fingerprint(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_page_sized_and_zero() {
        let p = PageBuf::zeroed();
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "must be 4096 bytes")]
    fn short_page_panics() {
        PageBuf::from_bytes(Bytes::from_static(b"short"));
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        assert_ne!(
            PageBuf::filled(1).fingerprint(),
            PageBuf::filled(2).fingerprint()
        );
        assert_eq!(
            PageBuf::filled(7).fingerprint(),
            PageBuf::filled(7).fingerprint()
        );
    }

    #[test]
    fn fingerprint_of_identity_and_version() {
        let a = Fingerprint::of(10, 0);
        let b = Fingerprint::of(10, 1);
        let c = Fingerprint::of(11, 0);
        assert_ne!(a, b, "version bump must change the fingerprint");
        assert_ne!(a, c, "page identity must change the fingerprint");
        assert_eq!(a, Fingerprint::of(10, 0));
    }
}
