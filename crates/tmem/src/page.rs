//! Page payloads.
//!
//! The backend is generic over the payload type it stores per page. Two
//! implementations are provided:
//!
//! * [`PageBuf`] — a real 4 KiB byte buffer (cheaply clonable via
//!   [`bytes::Bytes`]). Unit, integration and property tests use it to prove
//!   byte-exact round-trips through put/get.
//! * [`Fingerprint`] — a 64-bit content fingerprint. Scenario-scale
//!   simulations store gigabytes of simulated pages; carrying real buffers
//!   would multiply host memory use for no benefit, while a fingerprint
//!   still catches any lost, duplicated or mixed-up page (the guest verifies
//!   the fingerprint of every page it gets back).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Size of one page, in bytes. x86 base pages, as in the paper's testbed.
pub const PAGE_SIZE: usize = 4096;

/// Marker trait for types the backend can store per page.
///
/// `Clone` is required because ephemeral (cleancache) gets return a copy
/// while leaving the stored page in place; `Eq` lets tests and guests verify
/// round-trips; `Hash` feeds the per-page integrity summary the backend
/// records at put time and re-verifies on every get/flush/scrub.
pub trait PagePayload: Clone + Eq + Hash + std::fmt::Debug {
    /// Cheap integrity summary of the payload: a deterministic 64-bit
    /// checksum (Fx over the `Hash` stream — process-independent, so
    /// simulation outputs never depend on a per-process hasher seed).
    fn checksum(&self) -> u64 {
        let mut h = crate::fastmap::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}
impl<T: Clone + Eq + Hash + std::fmt::Debug> PagePayload for T {}

/// A real page of data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageBuf(Bytes);

impl PageBuf {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        PageBuf(Bytes::from_static(&[0u8; PAGE_SIZE]))
    }

    /// Build a page from exactly [`PAGE_SIZE`] bytes.
    ///
    /// # Panics
    /// Panics if `data` is not exactly one page long — a short "page" would
    /// silently corrupt a guest, so this is a programming error.
    pub fn from_bytes(data: Bytes) -> Self {
        assert_eq!(
            data.len(),
            PAGE_SIZE,
            "page payload must be {PAGE_SIZE} bytes"
        );
        PageBuf(data)
    }

    /// A page filled with a repeating byte pattern (test helper).
    pub fn filled(byte: u8) -> Self {
        PageBuf(Bytes::from(vec![byte; PAGE_SIZE]))
    }

    /// Borrow the page contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Fingerprint of this page's contents (FNV-1a over the bytes), for
    /// cross-checking against [`Fingerprint`] payloads.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.0.iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Fingerprint(h)
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

/// Handle to a page slot inside a [`PageArena`].
///
/// The backend's flat key map stores these 4-byte handles instead of the
/// payloads themselves, so map entries stay small and payload storage is
/// stable (never moved by a rehash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotHandle(u32);

/// Slab of page payload slots with a free list.
///
/// `alloc` reuses the most recently freed slot before growing the slab, so
/// steady-state put/flush churn touches a small, warm set of slots and
/// never calls into the global allocator (beyond amortized `Vec` growth up
/// to the high-water mark of live pages). Payloads are addressed by
/// [`SlotHandle`]; the arena itself knows nothing about tmem keys.
#[derive(Debug)]
pub struct PageArena<P> {
    slots: Vec<Option<P>>,
    free_list: Vec<u32>,
}

impl<P> Default for PageArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PageArena<P> {
    /// An empty arena.
    pub fn new() -> Self {
        PageArena {
            slots: Vec::new(),
            free_list: Vec::new(),
        }
    }

    /// Number of live (allocated) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free_list.len()
    }

    /// High-water mark: total slots ever grown (live + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Store `payload` in a slot, reusing a freed one when available.
    #[inline]
    pub fn alloc(&mut self, payload: P) -> SlotHandle {
        match self.free_list.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none(), "free list slot was live");
                self.slots[i as usize] = Some(payload);
                SlotHandle(i)
            }
            None => {
                let i = self.slots.len();
                assert!(i < u32::MAX as usize, "page arena slot space exhausted");
                self.slots.push(Some(payload));
                SlotHandle(i as u32)
            }
        }
    }

    /// Release a slot, returning its payload.
    ///
    /// # Panics
    /// Panics if the slot is already free — a double free means the caller's
    /// key map and the arena disagree, which would corrupt accounting.
    #[inline]
    pub fn free(&mut self, handle: SlotHandle) -> P {
        let payload = self.slots[handle.0 as usize]
            .take()
            .expect("double free of arena slot");
        self.free_list.push(handle.0);
        payload
    }

    /// Borrow the payload in a live slot.
    #[inline]
    pub fn get(&self, handle: SlotHandle) -> &P {
        self.slots[handle.0 as usize]
            .as_ref()
            .expect("stale arena handle")
    }

    /// Mutably borrow the payload in a live slot.
    #[inline]
    pub fn get_mut(&mut self, handle: SlotHandle) -> &mut P {
        self.slots[handle.0 as usize]
            .as_mut()
            .expect("stale arena handle")
    }
}

/// A compact stand-in for page contents: a 64-bit fingerprint.
///
/// Guests in scenario simulations construct a fingerprint from the page's
/// identity and a per-page version counter, so stale data (a page returned
/// from tmem after the guest overwrote and re-put it) is detected exactly
/// like corruption would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Derive a fingerprint from a page identity and version.
    pub fn of(page_id: u64, version: u64) -> Self {
        // SplitMix64 finalizer: cheap, well-mixed.
        let mut z = page_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(version);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Fingerprint(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_page_sized_and_zero() {
        let p = PageBuf::zeroed();
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "must be 4096 bytes")]
    fn short_page_panics() {
        PageBuf::from_bytes(Bytes::from_static(b"short"));
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        assert_ne!(
            PageBuf::filled(1).fingerprint(),
            PageBuf::filled(2).fingerprint()
        );
        assert_eq!(
            PageBuf::filled(7).fingerprint(),
            PageBuf::filled(7).fingerprint()
        );
    }

    #[test]
    fn arena_reuses_freed_slots_lifo() {
        let mut a: PageArena<u64> = PageArena::new();
        let h1 = a.alloc(1);
        let h2 = a.alloc(2);
        assert_eq!(a.live(), 2);
        assert_eq!(*a.get(h1), 1);
        assert_eq!(a.free(h1), 1);
        assert_eq!(a.live(), 1);
        // The freed slot is reused before the slab grows.
        let h3 = a.alloc(3);
        assert_eq!(h3, h1);
        assert_eq!(a.slot_count(), 2);
        *a.get_mut(h2) = 20;
        assert_eq!(*a.get(h2), 20);
        assert_eq!(a.free(h2), 20);
        assert_eq!(a.free(h3), 3);
        assert_eq!(a.live(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_double_free_panics() {
        let mut a: PageArena<u64> = PageArena::new();
        let h = a.alloc(7);
        a.free(h);
        a.free(h);
    }

    #[test]
    fn arena_holds_real_pages() {
        let mut a: PageArena<PageBuf> = PageArena::new();
        let h = a.alloc(PageBuf::filled(0xCD));
        assert_eq!(a.get(h).as_slice()[0], 0xCD);
        assert_eq!(a.free(h), PageBuf::filled(0xCD));
    }

    #[test]
    fn fingerprint_of_identity_and_version() {
        let a = Fingerprint::of(10, 0);
        let b = Fingerprint::of(10, 1);
        let c = Fingerprint::of(11, 0);
        assert_ne!(a, b, "version bump must change the fingerprint");
        assert_ne!(a, c, "page identity must change the fingerprint");
        assert_eq!(a, Fingerprint::of(10, 0));
    }
}
