//! Error and return codes for tmem operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hypercall-level return code, mirroring Table I's `S_TMEM` / `E_TMEM`
/// values: "Value used in the hypervisor indicating that a put (or other
/// tmem op.) has succeeded / cannot succeed."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReturnCode {
    /// The operation succeeded (`S_TMEM`).
    Success,
    /// The operation could not succeed (`E_TMEM`): capacity exhausted or
    /// target exceeded. The guest must fall back to its swap device.
    Failure,
}

impl ReturnCode {
    /// True for `S_TMEM`.
    pub fn is_success(self) -> bool {
        matches!(self, ReturnCode::Success)
    }
}

/// Structured errors from the backend. `ReturnCode` is what crosses the
/// simulated hypercall boundary; `TmemError` is what Rust callers see, with
/// enough detail for tests to assert on causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmemError {
    /// No free page frames in the tmem pool (and, for ephemeral pools,
    /// nothing evictable either).
    NoCapacity,
    /// The referenced pool does not exist (stale id or destroyed pool).
    NoSuchPool,
    /// The referenced page does not exist in the pool.
    NoSuchPage,
    /// The pool id space is exhausted.
    PoolLimit,
    /// The stored page failed its integrity check: its contents no longer
    /// match the checksum recorded at put time. The backend never returns
    /// the corrupt payload — persistent pages stay in place (so retries
    /// deterministically observe the same error until the page is flushed
    /// or scrubbed), ephemeral pages are dropped so the next get is a
    /// clean miss.
    Corrupt,
}

impl fmt::Display for TmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmemError::NoCapacity => write!(f, "no free tmem pages"),
            TmemError::NoSuchPool => write!(f, "no such tmem pool"),
            TmemError::NoSuchPage => write!(f, "no such tmem page"),
            TmemError::PoolLimit => write!(f, "tmem pool id space exhausted"),
            TmemError::Corrupt => write!(f, "tmem page failed integrity check"),
        }
    }
}

impl std::error::Error for TmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_code_predicates() {
        assert!(ReturnCode::Success.is_success());
        assert!(!ReturnCode::Failure.is_success());
    }

    #[test]
    fn errors_render_messages() {
        assert_eq!(TmemError::NoCapacity.to_string(), "no free tmem pages");
        assert!(TmemError::NoSuchPool.to_string().contains("pool"));
    }
}
