#![warn(missing_docs)]

//! Transcendent memory (tmem) backend substrate.
//!
//! This crate reimplements, in safe Rust, the hypervisor-side key–value page
//! store that Xen exposes to guests through the tmem hypercall interface
//! (Magenheimer et al., *Transcendent Memory and Linux*, OLS 2009):
//!
//! * pages are identified by a three-element tuple — pool id, 64-bit object
//!   id, 32-bit page index ([`TmemKey`]),
//! * pools are **persistent** (frontswap: a get must return exactly what was
//!   put, gets are exclusive/destructive) or **ephemeral** (cleancache: the
//!   hypervisor may drop pages at any time, gets are copies),
//! * the backend owns a fixed budget of page frames pooled from idle and
//!   fallow node memory; persistent puts fail when the budget is exhausted,
//!   ephemeral puts recycle the oldest ephemeral page.
//!
//! The store is generic over its page payload so unit and property tests can
//! round-trip full 4 KiB buffers ([`page::PageBuf`]) while large-scale
//! simulations carry a compact fingerprint ([`page::Fingerprint`]) that still
//! detects lost or mixed-up pages.
//!
//! The *policy* side of the paper (target allocations, Algorithm 1 gating)
//! deliberately does **not** live here: this crate is the vanilla substrate,
//! and `smartmem-xen` layers SmarTmem's enforcement on top of it, exactly as
//! the paper layers its hypervisor patch on top of stock Xen tmem.

pub mod backend;
pub mod error;
pub mod fastmap;
pub mod key;
pub mod page;
pub mod reference;
pub mod stats;

pub use backend::{
    IntegrityCounters, PoolKind, PutOutcome, QuarantinedObject, ScrubReport, TmemBackend,
};
pub use error::{ReturnCode, TmemError};
pub use fastmap::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use key::{ObjectId, PageIndex, PoolId, TmemKey, VmId};
pub use page::{Fingerprint, PageBuf, PAGE_SIZE};
