//! The original (pre-fast-path) tmem store, kept as a differential oracle.
//!
//! This is the seed implementation of the backend verbatim: nested
//! `BTreeMap<ObjectId, BTreeMap<PageIndex, P>>` per pool and
//! lazily-validated `VecDeque` candidate streams. It is retained for two
//! jobs only:
//!
//! * **equivalence testing** — the property suite drives random operation
//!   sequences through both this and [`crate::backend::TmemBackend`] and
//!   asserts identical observable outcomes (including eviction victims and
//!   reclaim order);
//! * **benchmark baseline** — the `datapath` criterion bench and the
//!   `smartmem-cli bench-parallel` perf record measure the fast path's
//!   speedup against this code, not against a guess.
//!
//! Do not use it in the simulator proper; it is deliberately the slow path.

use crate::backend::{PoolKind, PutOutcome};
use crate::error::TmemError;
use crate::key::{ObjectId, PageIndex, PoolId, TmemKey, VmId};
use crate::page::PagePayload;
use std::collections::{BTreeMap, HashMap, VecDeque};

#[derive(Debug)]
struct Pool<P> {
    owner: VmId,
    kind: PoolKind,
    objects: BTreeMap<ObjectId, BTreeMap<PageIndex, P>>,
    page_count: u64,
    put_order: VecDeque<(ObjectId, PageIndex)>,
}

impl<P> Pool<P> {
    fn new(owner: VmId, kind: PoolKind) -> Self {
        Pool {
            owner,
            kind,
            objects: BTreeMap::new(),
            page_count: 0,
            put_order: VecDeque::new(),
        }
    }
}

/// The seed backend: nested ordered maps, lazily-validated queues.
#[derive(Debug)]
pub struct ReferenceBackend<P> {
    capacity: u64,
    used: u64,
    pools: HashMap<PoolId, Pool<P>>,
    next_pool_id: u32,
    per_vm_used: HashMap<VmId, u64>,
    ephemeral_fifo: VecDeque<TmemKey>,
    evictions: u64,
}

impl<P: PagePayload> ReferenceBackend<P> {
    /// A backend owning `capacity` page frames.
    pub fn new(capacity: u64) -> Self {
        ReferenceBackend {
            capacity,
            used: 0,
            pools: HashMap::new(),
            next_pool_id: 0,
            per_vm_used: HashMap::new(),
            ephemeral_fifo: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Total page-frame budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently holding pages.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Frames currently free.
    pub fn free_pages(&self) -> u64 {
        self.capacity - self.used
    }

    /// Frames consumed by pools owned by `vm`.
    pub fn used_by(&self, vm: VmId) -> u64 {
        self.per_vm_used.get(&vm).copied().unwrap_or(0)
    }

    /// Ephemeral pages evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Create a pool for `owner`.
    pub fn new_pool(&mut self, owner: VmId, kind: PoolKind) -> Result<PoolId, TmemError> {
        let id = PoolId(self.next_pool_id);
        self.next_pool_id = self
            .next_pool_id
            .checked_add(1)
            .ok_or(TmemError::PoolLimit)?;
        self.pools.insert(id, Pool::new(owner, kind));
        Ok(id)
    }

    /// Store a page (seed semantics; see `TmemBackend::put`).
    pub fn put(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
        payload: P,
    ) -> Result<PutOutcome, TmemError> {
        let pool = self.pools.get(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let kind = pool.kind;
        let owner = pool.owner;

        let exists = pool
            .objects
            .get(&object)
            .is_some_and(|o| o.contains_key(&index));
        if exists {
            let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
            pool.objects
                .get_mut(&object)
                .expect("object checked above")
                .insert(index, payload);
            return Ok(PutOutcome::Replaced);
        }

        let mut evicted = None;
        if self.used >= self.capacity {
            if kind == PoolKind::Ephemeral {
                evicted = self.evict_one_ephemeral();
            }
            if self.used >= self.capacity {
                return Err(TmemError::NoCapacity);
            }
        }

        let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
        pool.objects
            .entry(object)
            .or_default()
            .insert(index, payload);
        pool.page_count += 1;
        self.used += 1;
        *self.per_vm_used.entry(owner).or_insert(0) += 1;
        match kind {
            PoolKind::Ephemeral => self
                .ephemeral_fifo
                .push_back(TmemKey::new(pool_id, object, index)),
            PoolKind::Persistent => {
                let pool = self.pools.get_mut(&pool_id).expect("pool checked above");
                pool.put_order.push_back((object, index));
            }
        }
        Ok(match evicted {
            Some(k) => PutOutcome::StoredAfterEviction(k),
            None => PutOutcome::Stored,
        })
    }

    /// Retrieve a page (exclusive for persistent pools).
    pub fn get(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<P, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        match pool.kind {
            PoolKind::Ephemeral => pool
                .objects
                .get(&object)
                .and_then(|o| o.get(&index))
                .cloned()
                .ok_or(TmemError::NoSuchPage),
            PoolKind::Persistent => {
                let owner = pool.owner;
                let obj = pool.objects.get_mut(&object).ok_or(TmemError::NoSuchPage)?;
                let payload = obj.remove(&index).ok_or(TmemError::NoSuchPage)?;
                if obj.is_empty() {
                    pool.objects.remove(&object);
                }
                pool.page_count -= 1;
                self.used -= 1;
                self.debit(owner, 1);
                Ok(payload)
            }
        }
    }

    /// Invalidate one page.
    pub fn flush_page(
        &mut self,
        pool_id: PoolId,
        object: ObjectId,
        index: PageIndex,
    ) -> Result<bool, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        let Some(obj) = pool.objects.get_mut(&object) else {
            return Ok(false);
        };
        if obj.remove(&index).is_none() {
            return Ok(false);
        }
        if obj.is_empty() {
            pool.objects.remove(&object);
        }
        pool.page_count -= 1;
        self.used -= 1;
        self.debit(owner, 1);
        Ok(true)
    }

    /// Invalidate every page of an object.
    pub fn flush_object(&mut self, pool_id: PoolId, object: ObjectId) -> Result<u64, TmemError> {
        let pool = self.pools.get_mut(&pool_id).ok_or(TmemError::NoSuchPool)?;
        let owner = pool.owner;
        let Some(obj) = pool.objects.remove(&object) else {
            return Ok(0);
        };
        let n = obj.len() as u64;
        pool.page_count -= n;
        self.used -= n;
        self.debit(owner, n);
        Ok(n)
    }

    /// Destroy a pool and free everything in it.
    pub fn destroy_pool(&mut self, pool_id: PoolId) -> Result<u64, TmemError> {
        let pool = self.pools.remove(&pool_id).ok_or(TmemError::NoSuchPool)?;
        self.used -= pool.page_count;
        self.debit(pool.owner, pool.page_count);
        Ok(pool.page_count)
    }

    /// True if the key currently holds a page.
    pub fn contains(&self, pool_id: PoolId, object: ObjectId, index: PageIndex) -> bool {
        self.pools
            .get(&pool_id)
            .and_then(|p| p.objects.get(&object))
            .is_some_and(|o| o.contains_key(&index))
    }

    /// Number of pages held by one pool.
    pub fn pool_page_count(&self, pool_id: PoolId) -> Option<u64> {
        self.pools.get(&pool_id).map(|p| p.page_count)
    }

    fn debit(&mut self, owner: VmId, n: u64) {
        if n == 0 {
            return;
        }
        let e = self
            .per_vm_used
            .get_mut(&owner)
            .expect("accounting entry must exist for owner with pages");
        debug_assert!(*e >= n, "per-VM accounting underflow");
        *e -= n;
    }

    /// Remove and return up to `max` of the oldest persistent pages of a
    /// pool.
    pub fn reclaim_oldest_persistent(
        &mut self,
        pool_id: PoolId,
        max: u64,
    ) -> Vec<(ObjectId, PageIndex)> {
        let mut out = Vec::new();
        while (out.len() as u64) < max {
            let Some(pool) = self.pools.get_mut(&pool_id) else {
                break;
            };
            debug_assert_eq!(pool.kind, PoolKind::Persistent);
            let Some((obj, idx)) = pool.put_order.pop_front() else {
                break;
            };
            if self.contains(pool_id, obj, idx) {
                self.flush_page(pool_id, obj, idx)
                    .expect("pool existed a moment ago");
                out.push((obj, idx));
            }
        }
        out
    }

    fn evict_one_ephemeral(&mut self) -> Option<TmemKey> {
        while let Some(key) = self.ephemeral_fifo.pop_front() {
            let still_there = self.contains(key.pool, key.object, key.index);
            if still_there {
                self.flush_page(key.pool, key.object, key.index)
                    .expect("pool existed a moment ago");
                self.evictions += 1;
                return Some(key);
            }
        }
        None
    }
}
