//! Identifiers: VMs, pools and the three-element tmem page key.
//!
//! Per the paper (§II-B): "Every tmem page is identified by a three-element
//! tuple (its key), consisting of the pool identifier, a 64-bit object
//! identifier and a 32-bit offset or page identifier."

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual machine identifier, as assigned by the hypervisor
/// (`vm_data_hyp[id].vm_id` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM{}", self.0)
    }
}

/// A tmem pool identifier. Pools are created per guest kernel module
/// initialization and owned by exactly one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

/// The 64-bit object identifier, extracted by the guest kernel from the
/// address of the page (frontswap: swap type; cleancache: inode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// The 32-bit page index within an object (frontswap: swap offset;
/// cleancache: page offset in file).
pub type PageIndex = u32;

/// The full three-element tmem key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TmemKey {
    /// Pool the page belongs to (implies the owning VM).
    pub pool: PoolId,
    /// Object identifier within the pool.
    pub object: ObjectId,
    /// Page index within the object.
    pub index: PageIndex,
}

impl TmemKey {
    /// Build a key from its three components.
    pub fn new(pool: PoolId, object: ObjectId, index: PageIndex) -> Self {
        TmemKey {
            pool,
            object,
            index,
        }
    }
}

impl fmt::Display for TmemKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/obj{:x}/{}", self.pool, self.object.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_value_types() {
        let a = TmemKey::new(PoolId(1), ObjectId(0xdead), 7);
        let b = TmemKey::new(PoolId(1), ObjectId(0xdead), 7);
        let c = TmemKey::new(PoolId(1), ObjectId(0xdead), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn display_formats_are_readable() {
        let k = TmemKey::new(PoolId(2), ObjectId(255), 3);
        assert_eq!(k.to_string(), "pool2/objff/3");
        assert_eq!(VmId(1).to_string(), "VM1");
    }
}
