#![warn(missing_docs)]

//! Deterministic discrete-event simulation core for the SmarTmem reproduction.
//!
//! This crate is the substrate under every other crate in the workspace. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated clock,
//! * [`EventQueue`] — a stable (FIFO-on-tie) discrete-event queue,
//! * [`rng`] — seedable, dependency-light deterministic PRNGs,
//! * [`CostModel`] — the latency model that converts memory-system events
//!   (RAM touches, tmem hypercalls, disk accesses) into simulated time,
//! * [`metrics`] — counters, time-series recorders and summary statistics
//!   used to regenerate the paper's figures,
//! * [`faults`] — deterministic, seed-driven control-plane fault injection
//!   (dropped/delayed/duplicated samples, lost netlink messages, failed
//!   hypercalls, MM crash schedules) consulted by the control-plane edges,
//! * [`trace`] — the flight recorder: a zero-cost-when-disabled structured
//!   event layer every subsystem emits into, with a bounded ring buffer, a
//!   metrics registry and a hand-rolled JSONL codec.
//!
//! Everything here is deterministic: two runs with the same seeds produce
//! bit-identical event orders and metric streams. The integration tests in
//! the workspace root assert this property end-to-end.

pub mod cost;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod netmodel;
pub mod rng;
pub mod time;
pub mod trace;

pub use cost::CostModel;
pub use event::EventQueue;
pub use faults::{FaultInjector, FaultLedger, FaultProfile, NetlinkFate, SampleFate};
pub use metrics::{Counter, Histogram, Summary, TimeSeries};
pub use netmodel::{Link, NetModel};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceConfig, TraceData, Tracer};
