//! Deterministic, seed-driven control-plane fault injection.
//!
//! SmarTmem's control loop crosses three failure domains: the hypervisor's
//! per-second VIRQ sampling, the dom0 TKM's netlink relay, and the
//! user-space Memory Manager process. Each edge can lose, delay, duplicate
//! or reorder its traffic, hypercall pushes can fail, and the MM can crash
//! outright. This module centralizes *whether* each of those faults happens
//! on a given message: the control-plane components consult a
//! [`FaultInjector`] at every edge crossing and record the outcome in a
//! [`FaultLedger`].
//!
//! Determinism contract: an injector is seeded explicitly and draws from its
//! own [`SplitMix64`] stream, independent of every workload stream, so a
//! `(profile, seed)` pair replays the exact same fault schedule — the chaos
//! determinism tests pin this down to report bytes. A disabled profile
//! ([`FaultProfile::none`]) never alters any decision, keeping fault-free
//! runs byte-identical to a build without the injector.

use crate::rng::SplitMix64;
use crate::trace::{FaultKind, Payload, Subsystem, Tracer};
use serde::{Deserialize, Serialize};

/// Probabilities and schedules for control-plane faults.
///
/// All probabilities are per-message and must lie in `[0, 1]`. The default
/// profile is fully disabled (all zero, no crash scheduled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability a VIRQ statistics sample is dropped before reaching dom0.
    pub virq_drop: f64,
    /// Probability a VIRQ sample is held back one interval (delivered late,
    /// behind the next sample).
    pub virq_delay: f64,
    /// Probability a VIRQ sample is delivered twice.
    pub virq_duplicate: f64,
    /// Probability a netlink stats message (dom0 → MM) is lost.
    pub netlink_drop: f64,
    /// Probability a netlink stats message is deferred behind the next one
    /// (reordering).
    pub netlink_reorder: f64,
    /// Probability a `SetTargets` hypercall push fails (timeout/EAGAIN).
    pub hypercall_fail: f64,
    /// MM cycle count at which the MM process crashes (once per run).
    pub mm_crash_at_cycle: Option<u64>,
    /// Sampling intervals the watchdog waits before restarting a crashed MM.
    pub mm_restart_after: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The disabled profile: no fault is ever injected.
    pub fn none() -> Self {
        FaultProfile {
            virq_drop: 0.0,
            virq_delay: 0.0,
            virq_duplicate: 0.0,
            netlink_drop: 0.0,
            netlink_reorder: 0.0,
            hypercall_fail: 0.0,
            mm_crash_at_cycle: None,
            mm_restart_after: 3,
        }
    }

    /// True when no fault can ever fire under this profile.
    pub fn is_disabled(&self) -> bool {
        self.virq_drop == 0.0
            && self.virq_delay == 0.0
            && self.virq_duplicate == 0.0
            && self.netlink_drop == 0.0
            && self.netlink_reorder == 0.0
            && self.hypercall_fail == 0.0
            && self.mm_crash_at_cycle.is_none()
    }

    /// Validate the profile: probabilities in `[0, 1]` (and jointly ≤ 1 per
    /// edge, since the fates of one message are mutually exclusive), restart
    /// delay positive. Returns an actionable message on violation.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("virq_drop", self.virq_drop),
            ("virq_delay", self.virq_delay),
            ("virq_duplicate", self.virq_duplicate),
            ("netlink_drop", self.netlink_drop),
            ("netlink_reorder", self.netlink_reorder),
            ("hypercall_fail", self.hypercall_fail),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!(
                    "fault probability {name} = {p} is outside [0, 1]; \
                     probabilities are per-message"
                ));
            }
        }
        let virq_sum = self.virq_drop + self.virq_delay + self.virq_duplicate;
        if virq_sum > 1.0 {
            return Err(format!(
                "virq fault probabilities sum to {virq_sum} > 1; drop, delay \
                 and duplicate are mutually exclusive fates of one sample"
            ));
        }
        let nl_sum = self.netlink_drop + self.netlink_reorder;
        if nl_sum > 1.0 {
            return Err(format!(
                "netlink fault probabilities sum to {nl_sum} > 1; drop and \
                 reorder are mutually exclusive fates of one message"
            ));
        }
        if self.mm_crash_at_cycle.is_some() && self.mm_restart_after == 0 {
            return Err(
                "mm_restart_after must be >= 1 interval when an MM crash is \
                 scheduled (0 would model a crash the watchdog never observes)"
                    .into(),
            );
        }
        Ok(())
    }

    /// The per-message probability fields, in declaration order. These
    /// names are the schema of on-disk chaos-profile files: the scenario
    /// DSL reads and writes profiles through [`FaultProfile::prob`] /
    /// [`FaultProfile::set_prob`], so a field added here is automatically
    /// legal in `.toml` profiles (and anything else is rejected by name).
    pub const PROB_FIELDS: [&'static str; 6] = [
        "virq_drop",
        "virq_delay",
        "virq_duplicate",
        "netlink_drop",
        "netlink_reorder",
        "hypercall_fail",
    ];

    /// Read a probability field by its schema name.
    pub fn prob(&self, field: &str) -> Option<f64> {
        match field {
            "virq_drop" => Some(self.virq_drop),
            "virq_delay" => Some(self.virq_delay),
            "virq_duplicate" => Some(self.virq_duplicate),
            "netlink_drop" => Some(self.netlink_drop),
            "netlink_reorder" => Some(self.netlink_reorder),
            "hypercall_fail" => Some(self.hypercall_fail),
            _ => None,
        }
    }

    /// Set a probability field by its schema name. Rejects unknown names
    /// (listing the legal ones) and out-of-range values; cross-field
    /// constraints are still [`FaultProfile::validate`]'s job.
    pub fn set_prob(&mut self, field: &str, value: f64) -> Result<(), String> {
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            return Err(format!(
                "fault probability {field} = {value} is outside [0, 1]; \
                 probabilities are per-message"
            ));
        }
        let slot = match field {
            "virq_drop" => &mut self.virq_drop,
            "virq_delay" => &mut self.virq_delay,
            "virq_duplicate" => &mut self.virq_duplicate,
            "netlink_drop" => &mut self.netlink_drop,
            "netlink_reorder" => &mut self.netlink_reorder,
            "hypercall_fail" => &mut self.hypercall_fail,
            other => {
                return Err(format!(
                    "unknown fault field '{other}' (known: {}, mm_crash_at_cycle, \
                     mm_restart_after)",
                    Self::PROB_FIELDS.join(", ")
                ))
            }
        };
        *slot = value;
        Ok(())
    }

    /// Render the profile as the body of an on-disk chaos file: one
    /// `key = value` line per non-default field, schema names throughout.
    /// The output round-trips through the scenario DSL's chaos parser.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for field in Self::PROB_FIELDS {
            let p = self.prob(field).expect("every schema field is readable");
            if p != 0.0 {
                out.push_str(&format!("{field} = {p}\n"));
            }
        }
        if let Some(cycle) = self.mm_crash_at_cycle {
            out.push_str(&format!("mm_crash_at_cycle = {cycle}\n"));
            out.push_str(&format!("mm_restart_after = {}\n", self.mm_restart_after));
        }
        out
    }
}

/// What happens to one VIRQ statistics sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// Delivered normally.
    Deliver,
    /// Lost; dom0 never sees this interval's sample.
    Drop,
    /// Held back one interval and delivered behind the next sample.
    Delay,
    /// Delivered twice (retransmission glitch).
    Duplicate,
}

/// What happens to one netlink stats message (dom0 → MM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlinkFate {
    /// Delivered normally.
    Deliver,
    /// Lost in the socket; the MM never sees it.
    Drop,
    /// Deferred behind the next message (reordering).
    Reorder,
}

/// Running totals of injected faults and degradation events for one run.
///
/// The ledger mixes *injected* counts (the injector's own decisions) with
/// *observed* counts the control-plane components report back (retries,
/// restarts, stale intervals, invariant checks) so chaos reports can show
/// the whole episode in one place.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLedger {
    /// VIRQ samples delivered normally.
    pub samples_delivered: u64,
    /// VIRQ samples dropped.
    pub samples_dropped: u64,
    /// VIRQ samples delayed one interval.
    pub samples_delayed: u64,
    /// VIRQ samples duplicated.
    pub samples_duplicated: u64,
    /// Netlink stats messages dropped.
    pub netlink_dropped: u64,
    /// Netlink stats messages reordered.
    pub netlink_reordered: u64,
    /// `SetTargets` pushes that failed (first attempts and retries).
    pub hypercalls_failed: u64,
    /// Retry attempts issued by the dom0 relay.
    pub hypercall_retries: u64,
    /// Pushes abandoned after exhausting the retry budget.
    pub hypercalls_abandoned: u64,
    /// Pushes superseded by a newer target vector while pending retry.
    pub hypercalls_superseded: u64,
    /// MM crash episodes.
    pub mm_crashes: u64,
    /// MM watchdog restarts.
    pub mm_restarts: u64,
    /// Snapshot sequence gaps the MM detected (each gap may span several
    /// missing samples).
    pub seq_gaps: u64,
    /// Duplicate/stale snapshots the MM discarded idempotently.
    pub snapshots_discarded: u64,
    /// Sampling intervals the hypervisor spent in stale-target fallback.
    pub stale_intervals: u64,
    /// tmem accounting invariant checks performed.
    pub invariant_checks: u64,
    /// tmem accounting invariant violations observed (must stay 0).
    pub invariant_violations: u64,
}

impl FaultLedger {
    /// Total faults injected at any edge (not counting degradation
    /// bookkeeping like retries or stale intervals).
    pub fn injected(&self) -> u64 {
        self.samples_dropped
            + self.samples_delayed
            + self.samples_duplicated
            + self.netlink_dropped
            + self.netlink_reordered
            + self.hypercalls_failed
            + self.mm_crashes
    }
}

/// The per-run fault decision engine: a profile, a private RNG stream and
/// the ledger.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: SplitMix64,
    ledger: FaultLedger,
    crash_fired: bool,
    tracer: Tracer,
}

impl FaultInjector {
    /// An injector for `profile`, drawing from a stream seeded by `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultInjector {
            profile,
            rng: SplitMix64::new(seed).derive("faults"),
            ledger: FaultLedger::default(),
            crash_fired: false,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a flight-recorder handle; every injected fault then emits one
    /// [`Payload::Fault`] event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn trace_fault(&self, kind: FaultKind) {
        self.tracer
            .emit(|| (None, Subsystem::Fault, Payload::Fault { kind }));
    }

    /// An injector that never injects anything.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultProfile::none(), 0)
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fate of one VIRQ statistics sample.
    pub fn sample_fate(&mut self) -> SampleFate {
        let p = &self.profile;
        if p.virq_drop == 0.0 && p.virq_delay == 0.0 && p.virq_duplicate == 0.0 {
            self.ledger.samples_delivered += 1;
            return SampleFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.virq_drop {
            self.ledger.samples_dropped += 1;
            self.trace_fault(FaultKind::SampleDrop);
            SampleFate::Drop
        } else if x < p.virq_drop + p.virq_delay {
            self.ledger.samples_delayed += 1;
            self.trace_fault(FaultKind::SampleDelay);
            SampleFate::Delay
        } else if x < p.virq_drop + p.virq_delay + p.virq_duplicate {
            self.ledger.samples_duplicated += 1;
            self.trace_fault(FaultKind::SampleDuplicate);
            SampleFate::Duplicate
        } else {
            self.ledger.samples_delivered += 1;
            SampleFate::Deliver
        }
    }

    /// Decide the fate of one netlink stats message.
    pub fn netlink_fate(&mut self) -> NetlinkFate {
        let p = &self.profile;
        if p.netlink_drop == 0.0 && p.netlink_reorder == 0.0 {
            return NetlinkFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.netlink_drop {
            self.ledger.netlink_dropped += 1;
            self.trace_fault(FaultKind::NetlinkDrop);
            NetlinkFate::Drop
        } else if x < p.netlink_drop + p.netlink_reorder {
            self.ledger.netlink_reordered += 1;
            self.trace_fault(FaultKind::NetlinkReorder);
            NetlinkFate::Reorder
        } else {
            NetlinkFate::Deliver
        }
    }

    /// Decide whether one `SetTargets` hypercall push fails.
    pub fn hypercall_fails(&mut self) -> bool {
        if self.profile.hypercall_fail == 0.0 {
            return false;
        }
        let fails = self.rng.next_f64() < self.profile.hypercall_fail;
        if fails {
            self.ledger.hypercalls_failed += 1;
            self.trace_fault(FaultKind::HypercallFail);
        }
        fails
    }

    /// Whether the MM should crash now, given it has completed `cycle`
    /// processing cycles. Fires at most once per run.
    pub fn mm_should_crash(&mut self, cycle: u64) -> bool {
        match self.profile.mm_crash_at_cycle {
            Some(at) if !self.crash_fired && cycle >= at => {
                self.crash_fired = true;
                self.ledger.mm_crashes += 1;
                self.trace_fault(FaultKind::MmCrash);
                true
            }
            _ => false,
        }
    }

    /// Read access to the ledger.
    pub fn ledger(&self) -> &FaultLedger {
        &self.ledger
    }

    /// Mutable ledger access for components reporting observed degradation
    /// events (retries, restarts, stale intervals, invariant checks).
    pub fn ledger_mut(&mut self) -> &mut FaultLedger {
        &mut self.ledger
    }

    /// Consume the injector, returning its final ledger.
    pub fn into_ledger(self) -> FaultLedger {
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_never_injects() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(inj.sample_fate(), SampleFate::Deliver);
            assert_eq!(inj.netlink_fate(), NetlinkFate::Deliver);
            assert!(!inj.hypercall_fails());
            assert!(!inj.mm_should_crash(u64::MAX));
        }
        assert_eq!(inj.ledger().injected(), 0);
        assert_eq!(inj.ledger().samples_delivered, 1000);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let profile = FaultProfile {
            virq_drop: 0.3,
            virq_delay: 0.1,
            virq_duplicate: 0.1,
            netlink_drop: 0.2,
            hypercall_fail: 0.25,
            ..FaultProfile::none()
        };
        let mut a = FaultInjector::new(profile.clone(), 99);
        let mut b = FaultInjector::new(profile, 99);
        for _ in 0..500 {
            assert_eq!(a.sample_fate(), b.sample_fate());
            assert_eq!(a.netlink_fate(), b.netlink_fate());
            assert_eq!(a.hypercall_fails(), b.hypercall_fails());
        }
        assert_eq!(a.ledger(), b.ledger());
        assert!(a.ledger().injected() > 0, "faults must actually fire");
    }

    #[test]
    fn fate_frequencies_track_probabilities() {
        let profile = FaultProfile {
            virq_drop: 0.5,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 7);
        for _ in 0..10_000 {
            inj.sample_fate();
        }
        let dropped = inj.ledger().samples_dropped as f64 / 10_000.0;
        assert!((dropped - 0.5).abs() < 0.03, "drop rate was {dropped}");
    }

    #[test]
    fn crash_fires_exactly_once_at_threshold() {
        let profile = FaultProfile {
            mm_crash_at_cycle: Some(5),
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 1);
        assert!(!inj.mm_should_crash(4));
        assert!(inj.mm_should_crash(5));
        assert!(!inj.mm_should_crash(6), "one crash per run");
        assert_eq!(inj.ledger().mm_crashes, 1);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = FaultProfile::none();
        assert!(p.validate().is_ok());
        p.virq_drop = 1.5;
        assert!(p.validate().unwrap_err().contains("outside [0, 1]"));
        p.virq_drop = 0.7;
        p.virq_delay = 0.4;
        assert!(p.validate().unwrap_err().contains("sum"));
        p.virq_delay = 0.0;
        p.virq_drop = -0.1;
        assert!(p.validate().is_err());
        p.virq_drop = 0.0;
        p.mm_crash_at_cycle = Some(3);
        p.mm_restart_after = 0;
        assert!(p.validate().unwrap_err().contains("mm_restart_after"));
    }

    #[test]
    fn prob_fields_cover_every_probability() {
        let mut p = FaultProfile::none();
        for (i, field) in FaultProfile::PROB_FIELDS.iter().enumerate() {
            assert_eq!(p.prob(field), Some(0.0));
            let v = (i + 1) as f64 / 100.0;
            p.set_prob(field, v).unwrap();
            assert_eq!(p.prob(field), Some(v));
        }
        assert_eq!(p.prob("mm_crash_at_cycle"), None, "not a probability");
        let err = p.set_prob("virq_flood", 0.1).unwrap_err();
        assert!(err.contains("unknown fault field"), "{err}");
        assert!(err.contains("virq_drop"), "should list known fields: {err}");
        let err = p.set_prob("virq_drop", 1.5).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
        assert!(p.set_prob("virq_drop", f64::NAN).is_err());
    }

    #[test]
    fn to_toml_names_match_schema_and_skip_defaults() {
        assert_eq!(FaultProfile::none().to_toml(), "");
        let p = FaultProfile {
            virq_drop: 0.30,
            netlink_drop: 0.20,
            mm_crash_at_cycle: Some(5),
            mm_restart_after: 3,
            ..FaultProfile::none()
        };
        let toml = p.to_toml();
        assert_eq!(
            toml,
            "virq_drop = 0.3\nnetlink_drop = 0.2\n\
             mm_crash_at_cycle = 5\nmm_restart_after = 3\n"
        );
    }

    #[test]
    fn disabled_detection() {
        assert!(FaultProfile::none().is_disabled());
        let p = FaultProfile {
            hypercall_fail: 0.01,
            ..FaultProfile::none()
        };
        assert!(!p.is_disabled());
        let crash_only = FaultProfile {
            mm_crash_at_cycle: Some(1),
            ..FaultProfile::none()
        };
        assert!(!crash_only.is_disabled());
    }
}
