//! Deterministic, seed-driven control-plane fault injection.
//!
//! SmarTmem's control loop crosses three failure domains: the hypervisor's
//! per-second VIRQ sampling, the dom0 TKM's netlink relay, and the
//! user-space Memory Manager process. Each edge can lose, delay, duplicate
//! or reorder its traffic, hypercall pushes can fail, and the MM can crash
//! outright. This module centralizes *whether* each of those faults happens
//! on a given message: the control-plane components consult a
//! [`FaultInjector`] at every edge crossing and record the outcome in a
//! [`FaultLedger`].
//!
//! Determinism contract: an injector is seeded explicitly and draws from its
//! own [`SplitMix64`] stream, independent of every workload stream, so a
//! `(profile, seed)` pair replays the exact same fault schedule — the chaos
//! determinism tests pin this down to report bytes. A disabled profile
//! ([`FaultProfile::none`]) never alters any decision, keeping fault-free
//! runs byte-identical to a build without the injector.

use crate::rng::SplitMix64;
use crate::trace::{FaultKind, Payload, Subsystem, Tracer};
use serde::{Deserialize, Serialize};

/// Probabilities and schedules for control-plane faults.
///
/// All probabilities are per-message and must lie in `[0, 1]`. The default
/// profile is fully disabled (all zero, no crash scheduled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability a VIRQ statistics sample is dropped before reaching dom0.
    pub virq_drop: f64,
    /// Probability a VIRQ sample is held back one interval (delivered late,
    /// behind the next sample).
    pub virq_delay: f64,
    /// Probability a VIRQ sample is delivered twice.
    pub virq_duplicate: f64,
    /// Probability a netlink stats message (dom0 → MM) is lost.
    pub netlink_drop: f64,
    /// Probability a netlink stats message is deferred behind the next one
    /// (reordering).
    pub netlink_reorder: f64,
    /// Probability a `SetTargets` hypercall push fails (timeout/EAGAIN).
    pub hypercall_fail: f64,
    /// Probability a stored page's contents are corrupted in flight by a
    /// bit flip (per admitted put, either pool kind).
    pub page_bitflip: f64,
    /// Probability a put is torn — only part of the page lands, leaving
    /// contents that do not match the recorded integrity summary.
    pub torn_write: f64,
    /// Probability an ephemeral page is silently dropped right after a
    /// successful put (the guest is told it stored; the pool forgets it).
    pub ephemeral_loss: f64,
    /// Probability a persistent put fails with a backend I/O error (the
    /// guest sees a failed put and falls back to its swap disk).
    pub put_io_fail: f64,
    /// MM cycle count at which the MM process crashes (once per run).
    pub mm_crash_at_cycle: Option<u64>,
    /// Sampling intervals the watchdog waits before restarting a crashed MM.
    pub mm_restart_after: u64,
    /// Brownout period in sampling intervals: every `brownout_every`
    /// intervals the backend goes dark for the last [`brownout_for`]
    /// intervals of the period, rejecting every put. 0 disables brownouts.
    ///
    /// [`brownout_for`]: FaultProfile::brownout_for
    pub brownout_every: u64,
    /// Length of each brownout window, in sampling intervals (must be
    /// `1..=brownout_every` when brownouts are enabled).
    pub brownout_for: u64,
    /// Run the pool scrubber every this many sampling intervals (plus one
    /// final pass at scenario end). 0 disables periodic scrubbing.
    pub scrub_every: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The disabled profile: no fault is ever injected.
    pub fn none() -> Self {
        FaultProfile {
            virq_drop: 0.0,
            virq_delay: 0.0,
            virq_duplicate: 0.0,
            netlink_drop: 0.0,
            netlink_reorder: 0.0,
            hypercall_fail: 0.0,
            page_bitflip: 0.0,
            torn_write: 0.0,
            ephemeral_loss: 0.0,
            put_io_fail: 0.0,
            mm_crash_at_cycle: None,
            mm_restart_after: 3,
            brownout_every: 0,
            brownout_for: 0,
            scrub_every: 0,
        }
    }

    /// True when no fault can ever fire under this profile.
    pub fn is_disabled(&self) -> bool {
        self.virq_drop == 0.0
            && self.virq_delay == 0.0
            && self.virq_duplicate == 0.0
            && self.netlink_drop == 0.0
            && self.netlink_reorder == 0.0
            && self.hypercall_fail == 0.0
            && self.mm_crash_at_cycle.is_none()
            && !self.has_data_plane()
    }

    /// True when any data-plane machinery (corruption, loss, put I/O
    /// failure, brownout windows or periodic scrubbing) is active. The
    /// scenario runner attaches a [`DataFaultInjector`] to the hypervisor
    /// exactly when this holds.
    pub fn has_data_plane(&self) -> bool {
        self.page_bitflip > 0.0
            || self.torn_write > 0.0
            || self.ephemeral_loss > 0.0
            || self.put_io_fail > 0.0
            || self.brownout_every > 0
            || self.scrub_every > 0
    }

    /// Validate the profile: probabilities in `[0, 1]` (and jointly ≤ 1 per
    /// edge, since the fates of one message are mutually exclusive), restart
    /// delay positive. Returns an actionable message on violation.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("virq_drop", self.virq_drop),
            ("virq_delay", self.virq_delay),
            ("virq_duplicate", self.virq_duplicate),
            ("netlink_drop", self.netlink_drop),
            ("netlink_reorder", self.netlink_reorder),
            ("hypercall_fail", self.hypercall_fail),
            ("page_bitflip", self.page_bitflip),
            ("torn_write", self.torn_write),
            ("ephemeral_loss", self.ephemeral_loss),
            ("put_io_fail", self.put_io_fail),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!(
                    "fault probability {name} = {p} is outside [0, 1]; \
                     probabilities are per-message"
                ));
            }
        }
        let virq_sum = self.virq_drop + self.virq_delay + self.virq_duplicate;
        if virq_sum > 1.0 {
            return Err(format!(
                "virq fault probabilities sum to {virq_sum} > 1; drop, delay \
                 and duplicate are mutually exclusive fates of one sample"
            ));
        }
        let nl_sum = self.netlink_drop + self.netlink_reorder;
        if nl_sum > 1.0 {
            return Err(format!(
                "netlink fault probabilities sum to {nl_sum} > 1; drop and \
                 reorder are mutually exclusive fates of one message"
            ));
        }
        let pers_sum = self.page_bitflip + self.torn_write + self.put_io_fail;
        if pers_sum > 1.0 {
            return Err(format!(
                "persistent-put fault probabilities sum to {pers_sum} > 1; \
                 bit flip, torn write and I/O failure are mutually exclusive \
                 fates of one put"
            ));
        }
        let eph_sum = self.page_bitflip + self.torn_write + self.ephemeral_loss;
        if eph_sum > 1.0 {
            return Err(format!(
                "ephemeral-put fault probabilities sum to {eph_sum} > 1; bit \
                 flip, torn write and silent loss are mutually exclusive fates \
                 of one put"
            ));
        }
        if self.brownout_every > 0 && !(1..=self.brownout_every).contains(&self.brownout_for) {
            return Err(format!(
                "brownout_for = {} must lie in 1..={} (the brownout window \
                 cannot be empty or longer than its period brownout_every)",
                self.brownout_for, self.brownout_every
            ));
        }
        if self.brownout_every == 0 && self.brownout_for > 0 {
            return Err("brownout_for is set but brownout_every = 0 schedules no \
                 brownout window (set brownout_every or drop brownout_for)"
                .into());
        }
        if self.mm_crash_at_cycle.is_some() && self.mm_restart_after == 0 {
            return Err(
                "mm_restart_after must be >= 1 interval when an MM crash is \
                 scheduled (0 would model a crash the watchdog never observes)"
                    .into(),
            );
        }
        Ok(())
    }

    /// The per-message probability fields, in declaration order. These
    /// names are the schema of on-disk chaos-profile files: the scenario
    /// DSL reads and writes profiles through [`FaultProfile::prob`] /
    /// [`FaultProfile::set_prob`], so a field added here is automatically
    /// legal in `.toml` profiles (and anything else is rejected by name).
    pub const PROB_FIELDS: [&'static str; 10] = [
        "virq_drop",
        "virq_delay",
        "virq_duplicate",
        "netlink_drop",
        "netlink_reorder",
        "hypercall_fail",
        "page_bitflip",
        "torn_write",
        "ephemeral_loss",
        "put_io_fail",
    ];

    /// Read a probability field by its schema name.
    pub fn prob(&self, field: &str) -> Option<f64> {
        match field {
            "virq_drop" => Some(self.virq_drop),
            "virq_delay" => Some(self.virq_delay),
            "virq_duplicate" => Some(self.virq_duplicate),
            "netlink_drop" => Some(self.netlink_drop),
            "netlink_reorder" => Some(self.netlink_reorder),
            "hypercall_fail" => Some(self.hypercall_fail),
            "page_bitflip" => Some(self.page_bitflip),
            "torn_write" => Some(self.torn_write),
            "ephemeral_loss" => Some(self.ephemeral_loss),
            "put_io_fail" => Some(self.put_io_fail),
            _ => None,
        }
    }

    /// Set a probability field by its schema name. Rejects unknown names
    /// (listing the legal ones) and out-of-range values; cross-field
    /// constraints are still [`FaultProfile::validate`]'s job.
    pub fn set_prob(&mut self, field: &str, value: f64) -> Result<(), String> {
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            return Err(format!(
                "fault probability {field} = {value} is outside [0, 1]; \
                 probabilities are per-message"
            ));
        }
        let slot = match field {
            "virq_drop" => &mut self.virq_drop,
            "virq_delay" => &mut self.virq_delay,
            "virq_duplicate" => &mut self.virq_duplicate,
            "netlink_drop" => &mut self.netlink_drop,
            "netlink_reorder" => &mut self.netlink_reorder,
            "hypercall_fail" => &mut self.hypercall_fail,
            "page_bitflip" => &mut self.page_bitflip,
            "torn_write" => &mut self.torn_write,
            "ephemeral_loss" => &mut self.ephemeral_loss,
            "put_io_fail" => &mut self.put_io_fail,
            other => {
                return Err(format!(
                    "unknown fault field '{other}' (known: {}, mm_crash_at_cycle, \
                     mm_restart_after, brownout_every, brownout_for, scrub_every)",
                    Self::PROB_FIELDS.join(", ")
                ))
            }
        };
        *slot = value;
        Ok(())
    }

    /// Render the profile as the body of an on-disk chaos file: one
    /// `key = value` line per non-default field, schema names throughout.
    /// The output round-trips through the scenario DSL's chaos parser.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for field in Self::PROB_FIELDS {
            let p = self.prob(field).expect("every schema field is readable");
            if p != 0.0 {
                out.push_str(&format!("{field} = {p}\n"));
            }
        }
        if let Some(cycle) = self.mm_crash_at_cycle {
            out.push_str(&format!("mm_crash_at_cycle = {cycle}\n"));
            out.push_str(&format!("mm_restart_after = {}\n", self.mm_restart_after));
        }
        if self.brownout_every > 0 {
            out.push_str(&format!("brownout_every = {}\n", self.brownout_every));
            out.push_str(&format!("brownout_for = {}\n", self.brownout_for));
        }
        if self.scrub_every > 0 {
            out.push_str(&format!("scrub_every = {}\n", self.scrub_every));
        }
        out
    }
}

/// What happens to one VIRQ statistics sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// Delivered normally.
    Deliver,
    /// Lost; dom0 never sees this interval's sample.
    Drop,
    /// Held back one interval and delivered behind the next sample.
    Delay,
    /// Delivered twice (retransmission glitch).
    Duplicate,
}

/// What happens to one netlink stats message (dom0 → MM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlinkFate {
    /// Delivered normally.
    Deliver,
    /// Lost in the socket; the MM never sees it.
    Drop,
    /// Deferred behind the next message (reordering).
    Reorder,
}

/// Running totals of injected faults and degradation events for one run.
///
/// The ledger mixes *injected* counts (the injector's own decisions) with
/// *observed* counts the control-plane components report back (retries,
/// restarts, stale intervals, invariant checks) so chaos reports can show
/// the whole episode in one place.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLedger {
    /// VIRQ samples delivered normally.
    pub samples_delivered: u64,
    /// VIRQ samples dropped.
    pub samples_dropped: u64,
    /// VIRQ samples delayed one interval.
    pub samples_delayed: u64,
    /// VIRQ samples duplicated.
    pub samples_duplicated: u64,
    /// Netlink stats messages dropped.
    pub netlink_dropped: u64,
    /// Netlink stats messages reordered.
    pub netlink_reordered: u64,
    /// `SetTargets` pushes that failed (first attempts and retries).
    pub hypercalls_failed: u64,
    /// Retry attempts issued by the dom0 relay.
    pub hypercall_retries: u64,
    /// Pushes abandoned after exhausting the retry budget.
    pub hypercalls_abandoned: u64,
    /// Pushes superseded by a newer target vector while pending retry.
    pub hypercalls_superseded: u64,
    /// MM crash episodes.
    pub mm_crashes: u64,
    /// MM watchdog restarts.
    pub mm_restarts: u64,
    /// Snapshot sequence gaps the MM detected (each gap may span several
    /// missing samples).
    pub seq_gaps: u64,
    /// Duplicate/stale snapshots the MM discarded idempotently.
    pub snapshots_discarded: u64,
    /// Sampling intervals the hypervisor spent in stale-target fallback.
    pub stale_intervals: u64,
    /// tmem accounting invariant checks performed.
    pub invariant_checks: u64,
    /// tmem accounting invariant violations observed (must stay 0).
    pub invariant_violations: u64,
    /// Data plane: page bit flips injected into stored pages.
    pub bitflips_injected: u64,
    /// Data plane: torn writes injected into stored pages.
    pub torn_writes_injected: u64,
    /// Data plane: ephemeral pages silently dropped after a successful put.
    pub ephemeral_losses_injected: u64,
    /// Data plane: persistent puts failed with an injected I/O error.
    pub put_io_failures_injected: u64,
    /// Data plane: puts rejected inside a brownout window.
    pub brownout_rejections: u64,
    /// Data plane: sampling intervals spent inside a brownout window.
    pub brownout_ticks: u64,
    /// Data plane: checksum mismatches detected (each corrupted page is
    /// counted once, at first detection — get, flush, reclaim or scrub).
    pub corruptions_detected: u64,
    /// Data plane: detected corruptions the guest recovered from (clean
    /// ephemeral miss, or persistent retry/requeue rebuilding the page).
    pub corruptions_recovered: u64,
    /// Data plane: corrupt objects quarantined (removed wholesale) by the
    /// scrubber.
    pub objects_quarantined: u64,
    /// Data plane: scrubber passes completed.
    pub scrub_passes: u64,
    /// Data plane: pages checksum-verified by the scrubber.
    pub scrub_pages_checked: u64,
    /// Fleet: VMs migrated off this host.
    pub migrations_out: u64,
    /// Fleet: VMs that landed on this host by migration.
    pub migrations_in: u64,
    /// Fleet: tmem pages (local + far) exported by outbound migrations.
    pub migrate_pages: u64,
    /// Fleet: corrupt pages found at migration export and dropped there
    /// (never transferred or laundered into the destination).
    pub migrate_purged: u64,
    /// Fleet: imported pages that found no tmem room on the destination
    /// and spilled to its swap disk.
    pub migrate_spilled: u64,
}

impl FaultLedger {
    /// Total faults injected at any edge (not counting degradation
    /// bookkeeping like retries or stale intervals).
    pub fn injected(&self) -> u64 {
        self.samples_dropped
            + self.samples_delayed
            + self.samples_duplicated
            + self.netlink_dropped
            + self.netlink_reordered
            + self.hypercalls_failed
            + self.mm_crashes
            + self.bitflips_injected
            + self.torn_writes_injected
            + self.ephemeral_losses_injected
            + self.put_io_failures_injected
            + self.brownout_rejections
    }
}

/// The per-run fault decision engine: a profile, a private RNG stream and
/// the ledger.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: SplitMix64,
    ledger: FaultLedger,
    crash_fired: bool,
    tracer: Tracer,
}

impl FaultInjector {
    /// An injector for `profile`, drawing from a stream seeded by `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultInjector {
            profile,
            rng: SplitMix64::new(seed).derive("faults"),
            ledger: FaultLedger::default(),
            crash_fired: false,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a flight-recorder handle; every injected fault then emits one
    /// [`Payload::Fault`] event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn trace_fault(&self, kind: FaultKind) {
        self.tracer
            .emit(|| (None, Subsystem::Fault, Payload::Fault { kind }));
    }

    /// An injector that never injects anything.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultProfile::none(), 0)
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fate of one VIRQ statistics sample.
    pub fn sample_fate(&mut self) -> SampleFate {
        let p = &self.profile;
        if p.virq_drop == 0.0 && p.virq_delay == 0.0 && p.virq_duplicate == 0.0 {
            self.ledger.samples_delivered += 1;
            return SampleFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.virq_drop {
            self.ledger.samples_dropped += 1;
            self.trace_fault(FaultKind::SampleDrop);
            SampleFate::Drop
        } else if x < p.virq_drop + p.virq_delay {
            self.ledger.samples_delayed += 1;
            self.trace_fault(FaultKind::SampleDelay);
            SampleFate::Delay
        } else if x < p.virq_drop + p.virq_delay + p.virq_duplicate {
            self.ledger.samples_duplicated += 1;
            self.trace_fault(FaultKind::SampleDuplicate);
            SampleFate::Duplicate
        } else {
            self.ledger.samples_delivered += 1;
            SampleFate::Deliver
        }
    }

    /// Decide the fate of one netlink stats message.
    pub fn netlink_fate(&mut self) -> NetlinkFate {
        let p = &self.profile;
        if p.netlink_drop == 0.0 && p.netlink_reorder == 0.0 {
            return NetlinkFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.netlink_drop {
            self.ledger.netlink_dropped += 1;
            self.trace_fault(FaultKind::NetlinkDrop);
            NetlinkFate::Drop
        } else if x < p.netlink_drop + p.netlink_reorder {
            self.ledger.netlink_reordered += 1;
            self.trace_fault(FaultKind::NetlinkReorder);
            NetlinkFate::Reorder
        } else {
            NetlinkFate::Deliver
        }
    }

    /// Decide whether one `SetTargets` hypercall push fails.
    pub fn hypercall_fails(&mut self) -> bool {
        if self.profile.hypercall_fail == 0.0 {
            return false;
        }
        let fails = self.rng.next_f64() < self.profile.hypercall_fail;
        if fails {
            self.ledger.hypercalls_failed += 1;
            self.trace_fault(FaultKind::HypercallFail);
        }
        fails
    }

    /// Whether the MM should crash now, given it has completed `cycle`
    /// processing cycles. Fires at most once per run.
    pub fn mm_should_crash(&mut self, cycle: u64) -> bool {
        match self.profile.mm_crash_at_cycle {
            Some(at) if !self.crash_fired && cycle >= at => {
                self.crash_fired = true;
                self.ledger.mm_crashes += 1;
                self.trace_fault(FaultKind::MmCrash);
                true
            }
            _ => false,
        }
    }

    /// Read access to the ledger.
    pub fn ledger(&self) -> &FaultLedger {
        &self.ledger
    }

    /// Mutable ledger access for components reporting observed degradation
    /// events (retries, restarts, stale intervals, invariant checks).
    pub fn ledger_mut(&mut self) -> &mut FaultLedger {
        &mut self.ledger
    }

    /// Consume the injector, returning its final ledger.
    pub fn into_ledger(self) -> FaultLedger {
        self.ledger
    }
}

/// The fate the data-plane injector assigns to one admitted tmem put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutFate {
    /// Stored intact.
    Deliver,
    /// Stored, then the page contents flip a bit (checksum now stale).
    Bitflip,
    /// Stored torn: the page contents do not match the recorded summary.
    Torn,
    /// The put fails with a backend I/O error (persistent pools only).
    IoFail,
    /// Stored, then silently dropped (ephemeral pools only).
    Lose,
}

/// Running totals of data-plane faults and the integrity machinery's
/// responses, kept by the hypervisor alongside its [`DataFaultInjector`]
/// and folded into the run's [`FaultLedger`] at scenario end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataFaultLedger {
    /// Page bit flips injected.
    pub bitflips_injected: u64,
    /// Torn writes injected.
    pub torn_writes_injected: u64,
    /// Ephemeral pages silently dropped after a successful put.
    pub ephemeral_losses_injected: u64,
    /// Persistent puts failed with an injected I/O error.
    pub put_io_failures_injected: u64,
    /// Puts rejected inside a brownout window.
    pub brownout_rejections: u64,
    /// Sampling intervals spent inside a brownout window.
    pub brownout_ticks: u64,
    /// Checksum mismatches detected (once per corrupted page).
    pub corruptions_detected: u64,
    /// Detected corruptions the guest recovered from.
    pub corruptions_recovered: u64,
    /// Corrupt objects quarantined by the scrubber.
    pub objects_quarantined: u64,
    /// Scrubber passes completed.
    pub scrub_passes: u64,
    /// Pages checksum-verified by the scrubber.
    pub scrub_pages_checked: u64,
}

impl DataFaultLedger {
    /// Add the data-plane totals onto a run's [`FaultLedger`].
    pub fn fold_into(&self, l: &mut FaultLedger) {
        l.bitflips_injected += self.bitflips_injected;
        l.torn_writes_injected += self.torn_writes_injected;
        l.ephemeral_losses_injected += self.ephemeral_losses_injected;
        l.put_io_failures_injected += self.put_io_failures_injected;
        l.brownout_rejections += self.brownout_rejections;
        l.brownout_ticks += self.brownout_ticks;
        l.corruptions_detected += self.corruptions_detected;
        l.corruptions_recovered += self.corruptions_recovered;
        l.objects_quarantined += self.objects_quarantined;
        l.scrub_passes += self.scrub_passes;
        l.scrub_pages_checked += self.scrub_pages_checked;
    }
}

/// The data-plane fault decision engine: a profile, a private RNG stream
/// (independent of the control-plane injector's, so enabling data faults
/// never perturbs a control-plane schedule) and the data-fault ledger.
///
/// The determinism contract matches [`FaultInjector`]'s: every decision
/// method early-returns without touching the RNG when the probabilities it
/// consults are all zero, and the brownout/scrub schedules are pure
/// functions of the interval counter — so a profile with (say) only
/// `scrub_every` set draws zero RNG and perturbs nothing.
#[derive(Debug, Clone)]
pub struct DataFaultInjector {
    profile: FaultProfile,
    rng: SplitMix64,
    ledger: DataFaultLedger,
    intervals: u64,
}

impl DataFaultInjector {
    /// An injector for `profile`, drawing from a `"data-faults"` stream
    /// derived from `seed` (disjoint from the control-plane `"faults"`
    /// stream).
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        DataFaultInjector {
            profile,
            rng: SplitMix64::new(seed).derive("data-faults"),
            ledger: DataFaultLedger::default(),
            intervals: 0,
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fate of one admitted persistent put. Ledger counts are
    /// the caller's job: a fate only counts once it is actually applied
    /// (a put that then fails on capacity injected nothing).
    pub fn persistent_put_fate(&mut self) -> PutFate {
        let p = &self.profile;
        if p.page_bitflip == 0.0 && p.torn_write == 0.0 && p.put_io_fail == 0.0 {
            return PutFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.page_bitflip {
            PutFate::Bitflip
        } else if x < p.page_bitflip + p.torn_write {
            PutFate::Torn
        } else if x < p.page_bitflip + p.torn_write + p.put_io_fail {
            PutFate::IoFail
        } else {
            PutFate::Deliver
        }
    }

    /// Decide the fate of one admitted ephemeral put.
    pub fn ephemeral_put_fate(&mut self) -> PutFate {
        let p = &self.profile;
        if p.page_bitflip == 0.0 && p.torn_write == 0.0 && p.ephemeral_loss == 0.0 {
            return PutFate::Deliver;
        }
        let x = self.rng.next_f64();
        if x < p.page_bitflip {
            PutFate::Bitflip
        } else if x < p.page_bitflip + p.torn_write {
            PutFate::Torn
        } else if x < p.page_bitflip + p.torn_write + p.ephemeral_loss {
            PutFate::Lose
        } else {
            PutFate::Deliver
        }
    }

    /// Close one sampling interval: advances the brownout/scrub clock and
    /// returns whether the *new* interval sits inside a brownout window
    /// (counting it in the ledger if so). Draws no RNG.
    pub fn tick_interval(&mut self) -> bool {
        self.intervals += 1;
        let browned = self.in_brownout();
        if browned {
            self.ledger.brownout_ticks += 1;
        }
        browned
    }

    /// Whether the backend is currently inside a brownout window: the last
    /// `brownout_for` intervals of every `brownout_every`-interval period.
    pub fn in_brownout(&self) -> bool {
        let every = self.profile.brownout_every;
        every > 0 && self.intervals % every >= every - self.profile.brownout_for
    }

    /// Whether a periodic scrub pass is due at the interval that just
    /// closed ([`Self::tick_interval`] must have been called first).
    pub fn scrub_due(&self) -> bool {
        let every = self.profile.scrub_every;
        every > 0 && self.intervals.is_multiple_of(every)
    }

    /// Read access to the data-fault ledger.
    pub fn ledger(&self) -> &DataFaultLedger {
        &self.ledger
    }

    /// Mutable ledger access for the hypervisor's injection/detection/
    /// recovery bookkeeping.
    pub fn ledger_mut(&mut self) -> &mut DataFaultLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_never_injects() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(inj.sample_fate(), SampleFate::Deliver);
            assert_eq!(inj.netlink_fate(), NetlinkFate::Deliver);
            assert!(!inj.hypercall_fails());
            assert!(!inj.mm_should_crash(u64::MAX));
        }
        assert_eq!(inj.ledger().injected(), 0);
        assert_eq!(inj.ledger().samples_delivered, 1000);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let profile = FaultProfile {
            virq_drop: 0.3,
            virq_delay: 0.1,
            virq_duplicate: 0.1,
            netlink_drop: 0.2,
            hypercall_fail: 0.25,
            ..FaultProfile::none()
        };
        let mut a = FaultInjector::new(profile.clone(), 99);
        let mut b = FaultInjector::new(profile, 99);
        for _ in 0..500 {
            assert_eq!(a.sample_fate(), b.sample_fate());
            assert_eq!(a.netlink_fate(), b.netlink_fate());
            assert_eq!(a.hypercall_fails(), b.hypercall_fails());
        }
        assert_eq!(a.ledger(), b.ledger());
        assert!(a.ledger().injected() > 0, "faults must actually fire");
    }

    #[test]
    fn fate_frequencies_track_probabilities() {
        let profile = FaultProfile {
            virq_drop: 0.5,
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 7);
        for _ in 0..10_000 {
            inj.sample_fate();
        }
        let dropped = inj.ledger().samples_dropped as f64 / 10_000.0;
        assert!((dropped - 0.5).abs() < 0.03, "drop rate was {dropped}");
    }

    #[test]
    fn crash_fires_exactly_once_at_threshold() {
        let profile = FaultProfile {
            mm_crash_at_cycle: Some(5),
            ..FaultProfile::none()
        };
        let mut inj = FaultInjector::new(profile, 1);
        assert!(!inj.mm_should_crash(4));
        assert!(inj.mm_should_crash(5));
        assert!(!inj.mm_should_crash(6), "one crash per run");
        assert_eq!(inj.ledger().mm_crashes, 1);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = FaultProfile::none();
        assert!(p.validate().is_ok());
        p.virq_drop = 1.5;
        assert!(p.validate().unwrap_err().contains("outside [0, 1]"));
        p.virq_drop = 0.7;
        p.virq_delay = 0.4;
        assert!(p.validate().unwrap_err().contains("sum"));
        p.virq_delay = 0.0;
        p.virq_drop = -0.1;
        assert!(p.validate().is_err());
        p.virq_drop = 0.0;
        p.mm_crash_at_cycle = Some(3);
        p.mm_restart_after = 0;
        assert!(p.validate().unwrap_err().contains("mm_restart_after"));
    }

    #[test]
    fn prob_fields_cover_every_probability() {
        let mut p = FaultProfile::none();
        for (i, field) in FaultProfile::PROB_FIELDS.iter().enumerate() {
            assert_eq!(p.prob(field), Some(0.0));
            let v = (i + 1) as f64 / 100.0;
            p.set_prob(field, v).unwrap();
            assert_eq!(p.prob(field), Some(v));
        }
        assert_eq!(p.prob("mm_crash_at_cycle"), None, "not a probability");
        let err = p.set_prob("virq_flood", 0.1).unwrap_err();
        assert!(err.contains("unknown fault field"), "{err}");
        assert!(err.contains("virq_drop"), "should list known fields: {err}");
        let err = p.set_prob("virq_drop", 1.5).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");
        assert!(p.set_prob("virq_drop", f64::NAN).is_err());
    }

    #[test]
    fn to_toml_names_match_schema_and_skip_defaults() {
        assert_eq!(FaultProfile::none().to_toml(), "");
        let p = FaultProfile {
            virq_drop: 0.30,
            netlink_drop: 0.20,
            mm_crash_at_cycle: Some(5),
            mm_restart_after: 3,
            ..FaultProfile::none()
        };
        let toml = p.to_toml();
        assert_eq!(
            toml,
            "virq_drop = 0.3\nnetlink_drop = 0.2\n\
             mm_crash_at_cycle = 5\nmm_restart_after = 3\n"
        );
    }

    #[test]
    fn data_plane_validation_rejects_bad_profiles() {
        let mut p = FaultProfile::none();
        p.page_bitflip = 0.6;
        p.torn_write = 0.3;
        p.put_io_fail = 0.2;
        assert!(p.validate().unwrap_err().contains("persistent-put"));
        p.put_io_fail = 0.0;
        p.ephemeral_loss = 0.2;
        assert!(p.validate().unwrap_err().contains("ephemeral-put"));
        p = FaultProfile::none();
        p.brownout_every = 10;
        assert!(p.validate().unwrap_err().contains("brownout_for"));
        p.brownout_for = 11;
        assert!(p.validate().is_err(), "window longer than period");
        p.brownout_for = 10;
        assert!(p.validate().is_ok());
        p = FaultProfile::none();
        p.brownout_for = 2;
        assert!(p.validate().unwrap_err().contains("brownout_every"));
    }

    #[test]
    fn data_plane_to_toml_round_trip_fields() {
        let p = FaultProfile {
            page_bitflip: 0.02,
            put_io_fail: 0.05,
            brownout_every: 20,
            brownout_for: 4,
            scrub_every: 5,
            ..FaultProfile::none()
        };
        assert_eq!(
            p.to_toml(),
            "page_bitflip = 0.02\nput_io_fail = 0.05\n\
             brownout_every = 20\nbrownout_for = 4\nscrub_every = 5\n"
        );
    }

    #[test]
    fn data_injector_same_seed_same_schedule() {
        let profile = FaultProfile {
            page_bitflip: 0.2,
            torn_write: 0.1,
            ephemeral_loss: 0.2,
            put_io_fail: 0.1,
            ..FaultProfile::none()
        };
        let mut a = DataFaultInjector::new(profile.clone(), 99);
        let mut b = DataFaultInjector::new(profile, 99);
        let mut non_deliver = 0;
        for _ in 0..500 {
            let (fa, fb) = (a.persistent_put_fate(), b.persistent_put_fate());
            assert_eq!(fa, fb);
            assert_eq!(a.ephemeral_put_fate(), b.ephemeral_put_fate());
            if fa != PutFate::Deliver {
                non_deliver += 1;
            }
        }
        assert!(non_deliver > 50, "fates must actually fire: {non_deliver}");
    }

    #[test]
    fn data_injector_zero_probs_draw_no_rng() {
        // A scrub-only profile must decide every put without touching its
        // RNG: two injectors stay in lockstep even when one also answers
        // thousands of put-fate queries the other never sees.
        let profile = FaultProfile {
            scrub_every: 5,
            ..FaultProfile::none()
        };
        let mut a = DataFaultInjector::new(profile.clone(), 7);
        let b = DataFaultInjector::new(profile, 7);
        for _ in 0..1000 {
            assert_eq!(a.persistent_put_fate(), PutFate::Deliver);
            assert_eq!(a.ephemeral_put_fate(), PutFate::Deliver);
        }
        assert_eq!(a.rng, b.rng, "zero-probability paths must not draw");
        assert_eq!(a.ledger(), b.ledger());
    }

    #[test]
    fn brownout_windows_are_the_tail_of_each_period() {
        let profile = FaultProfile {
            brownout_every: 10,
            brownout_for: 3,
            put_io_fail: 0.0,
            ..FaultProfile::none()
        };
        let mut inj = DataFaultInjector::new(profile, 0);
        let mut browned = Vec::new();
        for interval in 1..=20u64 {
            if inj.tick_interval() {
                browned.push(interval);
            }
        }
        assert_eq!(browned, [7, 8, 9, 17, 18, 19]);
        assert_eq!(inj.ledger().brownout_ticks, 6);
    }

    #[test]
    fn scrub_schedule_fires_every_period() {
        let profile = FaultProfile {
            scrub_every: 4,
            ..FaultProfile::none()
        };
        let mut inj = DataFaultInjector::new(profile, 0);
        let due: Vec<u64> = (1..=12u64)
            .filter(|_| {
                inj.tick_interval();
                inj.scrub_due()
            })
            .collect();
        assert_eq!(due.len(), 3, "intervals 4, 8, 12");
    }

    #[test]
    fn data_ledger_folds_into_fault_ledger() {
        let dl = DataFaultLedger {
            bitflips_injected: 1,
            torn_writes_injected: 2,
            ephemeral_losses_injected: 3,
            put_io_failures_injected: 4,
            brownout_rejections: 5,
            brownout_ticks: 6,
            corruptions_detected: 7,
            corruptions_recovered: 8,
            objects_quarantined: 9,
            scrub_passes: 10,
            scrub_pages_checked: 11,
        };
        let mut l = FaultLedger::default();
        dl.fold_into(&mut l);
        assert_eq!(l.bitflips_injected, 1);
        assert_eq!(l.put_io_failures_injected, 4);
        assert_eq!(l.scrub_pages_checked, 11);
        // Injected totals include every data-plane injection class but not
        // the detection/recovery bookkeeping.
        assert_eq!(l.injected(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn disabled_detection() {
        assert!(FaultProfile::none().is_disabled());
        let p = FaultProfile {
            hypercall_fail: 0.01,
            ..FaultProfile::none()
        };
        assert!(!p.is_disabled());
        let crash_only = FaultProfile {
            mm_crash_at_cycle: Some(1),
            ..FaultProfile::none()
        };
        assert!(!crash_only.is_disabled());
    }
}
