//! Counters, time-series recorders and summary statistics.
//!
//! The paper's figures come in two flavours: bar charts of mean running time
//! with standard deviation over five repetitions (Figs. 3, 5, 7, 9) and
//! per-second time-series of tmem occupancy (Figs. 4, 6, 8, 10). [`Summary`]
//! serves the former, [`TimeSeries`] the latter. [`Counter`] is a plain
//! saturating event counter used throughout the hypervisor and guest.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Reset to zero, returning the previous value. Used when the hypervisor
    /// closes a sampling interval.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

/// A sampled time-series: `(instant, value)` pairs in non-decreasing time
/// order. Backing storage for the occupancy figures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Samples must arrive in non-decreasing time order;
    /// out-of-order appends panic in debug builds.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "time series went backwards");
        }
        self.points.push((t, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sampled value, or `None` for an empty series.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Time-weighted mean of the series (trapezoidal, assuming the value
    /// holds until the next sample). `None` for series shorter than 2.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0.as_nanos() - w[0].0.as_nanos()) as f64;
            area += w[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            None
        } else {
            Some(area / span)
        }
    }

    /// Value in effect at instant `t`: the last sample at or before `t`.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }
}

/// Online mean / standard deviation accumulator (Welford), used to summarize
/// the five repetitions of every scenario run exactly as the paper's bar
/// charts do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 for fewer than two
    /// observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Fold another summary into this one (parallel Welford, Chan et al.):
    /// the result is as if every observation of `other` had been
    /// [`record`](Summary::record)ed here. Associative up to floating-point
    /// rounding; exact for counts, min and max.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log2-bucketed histogram of `u64` observations (latencies in
/// sim-nanoseconds, queue depths). Bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i - 1]`; bucket 0 holds exact zeros. Merging is exact and
/// associative — bucket counts are plain sums — which is what lets
/// per-cell trace metrics be folded across an experiment grid without any
/// loss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Number of buckets in a [`Histogram`]: one per possible bit length of a
/// `u64`, plus the dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (the value reported for any
    /// percentile that lands in that bucket).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index = bit length of the value; index 0 = zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0.0 < p <= 1.0`), clamped to the observed maximum. `None` when
    /// empty. Guarantee: at least `ceil(p · count)` observations are ≤ the
    /// returned value.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. Exact: the result is
    /// indistinguishable from having recorded every observation here.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_take_resets() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of that classic dataset is ~2.138.
        assert!((s.stddev() - 2.1380899352993947).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_degenerate_cases() {
        let empty = Summary::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.stddev(), 0.0);
        assert_eq!(empty.min(), None);
        let one: Summary = [3.5].into_iter().collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn time_series_value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(30.0));
        assert_eq!(ts.max(), Some(30.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_interval() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 0.0);
        ts.push(SimTime::from_secs(9), 100.0); // value 0 held for 9s
        ts.push(SimTime::from_secs(10), 100.0); // value 100 held for 1s
        let m = ts.time_weighted_mean().unwrap();
        assert!((m - 10.0).abs() < 1e-9, "mean={m}");
    }

    #[test]
    fn summary_merge_matches_single_fold() {
        let xs = [2.0, 4.0, 4.0, 4.0];
        let ys = [5.0, 5.0, 7.0, 9.0];
        let whole: Summary = xs.iter().chain(&ys).copied().collect();
        let mut left: Summary = xs.into_iter().collect();
        let right: Summary = ys.into_iter().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());

        let mut empty = Summary::new();
        empty.merge(&whole);
        assert_eq!(empty, whole, "merging into empty copies");
        let mut whole2 = whole;
        whole2.merge(&Summary::new());
        assert_eq!(whole2, whole, "merging empty is a no-op");
    }

    #[test]
    fn histogram_percentiles_bound_from_above() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 8, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1022);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // Median rank 4 lands in bucket [2,3] → upper bound 3.
        assert_eq!(h.percentile(0.5), Some(3));
        // p100 is clamped to the observed max, not the bucket top (1023).
        assert_eq!(h.percentile(1.0), Some(1000));
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.5), None);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [4u64, 5, 6] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 100, 7] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_series_helpers() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.max(), None);
        assert_eq!(ts.time_weighted_mean(), None);
    }
}
