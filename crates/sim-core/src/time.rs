//! Simulated time.
//!
//! The simulation clock is a monotonically non-decreasing count of
//! nanoseconds since the start of the experiment. Nanosecond resolution is
//! fine enough to express a single resident-page touch (~hundreds of ns) and
//! wide enough (u64) for ~584 years of simulated time, so overflow is not a
//! practical concern; arithmetic is still checked in debug builds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole simulated seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole simulated milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking, so callers comparing snapshots taken out of order get a
    /// sensible answer.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole simulated seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole simulated milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole simulated microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Length in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale the duration by a dimensionless factor (e.g. CPU-contention
    /// dilation). Rounds to the nearest nanosecond.
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative time scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!((t - SimTime::from_secs(3)).as_nanos(), 250_000_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scale_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.scale(1.25).as_nanos(), 13); // 12.5 rounds to 13
        assert_eq!(d.scale(0.0).as_nanos(), 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn from_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimDuration::from_micros(1000), SimDuration::from_millis(1));
    }
}
