//! The cluster interconnect model.
//!
//! Multi-host runs move bulk page traffic (VM migrations, far-memory
//! spills) across a modelled network link. The model is deliberately
//! simple — a fixed per-transfer latency plus a per-page serialization
//! cost, queued FIFO behind a single `busy_until` horizon — because what
//! the fleet experiments rely on is the *ordering* pressure a shared link
//! puts on migrations, not packet-level fidelity. Everything here is
//! integer-nanosecond arithmetic with zero RNG, so cluster runs stay
//! bit-deterministic and a disabled network model can never perturb
//! existing goldens.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Latency/bandwidth parameters of one cluster link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// Fixed cost of one transfer: connection setup, protocol handshake,
    /// propagation. Charged once per transfer regardless of size.
    pub latency: SimDuration,
    /// Serialization time of one 4 KiB page at the link's sustained
    /// bandwidth.
    pub page_transfer: SimDuration,
}

impl NetModel {
    /// A 10 GbE-class datacenter link: ~50 µs setup, 4 KiB at ~10 Gbit/s
    /// ≈ 3.2 µs/page.
    pub fn datacenter() -> Self {
        NetModel {
            latency: SimDuration::from_micros(50),
            page_transfer: SimDuration::from_nanos(3_200),
        }
    }

    /// A 1 GbE commodity link: ~200 µs setup, ~32 µs/page.
    pub fn commodity() -> Self {
        NetModel {
            latency: SimDuration::from_micros(200),
            page_transfer: SimDuration::from_micros(32),
        }
    }

    /// Wire time of one transfer moving `pages` pages, exclusive of
    /// queueing. Monotone in `pages` by construction.
    pub fn transfer_time(&self, pages: u64) -> SimDuration {
        SimDuration(self.latency.as_nanos() + pages * self.page_transfer.as_nanos())
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::datacenter()
    }
}

/// One shared link with FIFO queueing: a transfer enqueued while the link
/// is busy starts when the previous transfer finishes. Tracks aggregate
/// traffic counters for the fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// The latency/bandwidth model this link applies.
    pub model: NetModel,
    /// Time at which the link becomes idle again.
    pub busy_until: SimTime,
    /// Total transfers enqueued.
    pub transfers: u64,
    /// Total pages moved across the link.
    pub pages_moved: u64,
    /// Accumulated time transfers spent waiting behind earlier transfers.
    pub queue_wait: SimDuration,
}

impl Link {
    /// A fresh, idle link.
    pub fn new(model: NetModel) -> Self {
        Link {
            model,
            busy_until: SimTime::ZERO,
            transfers: 0,
            pages_moved: 0,
            queue_wait: SimDuration::ZERO,
        }
    }

    /// Enqueue a transfer of `pages` pages at `now`. Returns
    /// `(start, finish)`: the transfer starts at `max(now, busy_until)`
    /// and occupies the link until `start + transfer_time(pages)`.
    pub fn enqueue(&mut self, now: SimTime, pages: u64) -> (SimTime, SimTime) {
        let start = if self.busy_until > now {
            self.queue_wait += SimDuration(self.busy_until.as_nanos() - now.as_nanos());
            self.busy_until
        } else {
            now
        };
        let finish = start + self.model.transfer_time(pages);
        self.busy_until = finish;
        self.transfers += 1;
        self.pages_moved += pages;
        (start, finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_deterministic_and_monotone() {
        let m = NetModel::datacenter();
        let mut prev = SimDuration::ZERO;
        for pages in 0..256u64 {
            let t = m.transfer_time(pages);
            assert_eq!(t, m.transfer_time(pages), "same input, same output");
            assert!(t >= prev, "transfer time must be monotone in size");
            assert!(t > SimDuration::ZERO, "latency floor always applies");
            prev = t;
        }
    }

    #[test]
    fn transfer_time_is_exactly_latency_plus_pages() {
        let m = NetModel::commodity();
        let t = m.transfer_time(17);
        assert_eq!(
            t.as_nanos(),
            m.latency.as_nanos() + 17 * m.page_transfer.as_nanos()
        );
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = Link::new(NetModel::datacenter());
        let now = SimTime(1_000_000);
        let (start, finish) = link.enqueue(now, 8);
        assert_eq!(start, now);
        assert_eq!(finish, now + link.model.transfer_time(8));
        assert_eq!(link.queue_wait, SimDuration::ZERO);
    }

    #[test]
    fn busy_link_queues_fifo() {
        let mut link = Link::new(NetModel::datacenter());
        let now = SimTime(0);
        let (_, f1) = link.enqueue(now, 100);
        let (s2, f2) = link.enqueue(now, 100);
        assert_eq!(s2, f1, "second transfer waits for the first");
        assert_eq!(f2, f1 + link.model.transfer_time(100));
        let (s3, _) = link.enqueue(f2, 1);
        assert_eq!(s3, f2, "link idle again once drained");
        assert_eq!(link.transfers, 3);
        assert_eq!(link.pages_moved, 201);
        assert_eq!(
            link.queue_wait,
            link.model.transfer_time(100),
            "only the second transfer waited, for exactly one transfer time"
        );
    }

    #[test]
    fn counters_accumulate() {
        let mut link = Link::new(NetModel::commodity());
        for i in 0..10 {
            link.enqueue(SimTime(i), 5);
        }
        assert_eq!(link.transfers, 10);
        assert_eq!(link.pages_moved, 50);
    }
}
