//! Discrete-event queue.
//!
//! A classic calendar queue built on [`std::collections::BinaryHeap`]. Two
//! properties matter for reproducibility:
//!
//! 1. **Stability** — events scheduled for the same instant pop in the order
//!    they were pushed (FIFO tie-break via a monotonically increasing
//!    sequence number), so the simulation never depends on heap internals.
//! 2. **Monotonicity** — popping an event advances the queue's notion of
//!    "now"; scheduling into the past is a logic error and panics in debug
//!    builds (it is clamped to "now" in release builds so a small rounding
//!    slip cannot corrupt a long experiment).

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: its due time, a stable sequence number and the payload.
#[derive(Debug)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

// Ordering is by (due, seq); the payload never participates, so `E` needs no
// `Ord` bound and ties break FIFO.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A deterministic discrete-event queue over event payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current simulated time: the due time of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (for progress reporting and
    /// runaway detection).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at the absolute instant `due`.
    ///
    /// Scheduling into the past panics in debug builds; in release builds
    /// the event is clamped to `now` so it fires immediately.
    pub fn schedule_at(&mut self, due: SimTime, event: E) {
        debug_assert!(
            due >= self.now,
            "event scheduled in the past: due={due} now={}",
            self.now
        );
        let due = due.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { due, seq, event }));
    }

    /// Schedule `event` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.due >= self.now, "event queue time went backwards");
        self.now = s.due;
        self.popped += 1;
        Some((s.due, s.event))
    }

    /// Due time of the next pending event without popping it.
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.due)
    }

    /// Pop the next event *and every further event due at the same
    /// instant*, appending them to `out` in FIFO order; advances the clock
    /// and returns the batch's shared due time.
    ///
    /// Dispatching a drained batch in order is indistinguishable from
    /// popping one event at a time: events scheduled while the batch is
    /// being processed carry higher sequence numbers than everything
    /// already drained, so they would have popped after the remaining
    /// batch members in the one-at-a-time scheme too — they simply form
    /// the next batch.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let Reverse(first) = self.heap.pop()?;
        debug_assert!(first.due >= self.now, "event queue time went backwards");
        let due = first.due;
        self.now = due;
        self.popped += 1;
        out.push(first.event);
        while let Some(Reverse(s)) = self.heap.peek() {
            if s.due != due {
                break;
            }
            let Reverse(s) = self.heap.pop().expect("peeked just above");
            self.popped += 1;
            out.push(s.event);
        }
        Some(due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), ());
        q.pop();
        q.schedule_after(SimDuration(50), ());
        assert_eq!(q.peek_due(), Some(SimTime(150)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), ());
        q.pop();
        q.schedule_at(SimTime(50), ());
    }

    #[test]
    fn pop_batch_drains_exactly_the_same_instant() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(10), "b");
        q.schedule_at(SimTime(20), "c");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime(10)));
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(q.now(), SimTime(10));
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime(20)));
        assert_eq!(batch, vec!["c"]);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn pop_batch_matches_pop_one_at_a_time() {
        // The same interleaved schedule (including events scheduled at the
        // current instant mid-processing) must dispatch identically under
        // both draining schemes.
        fn schedule(q: &mut EventQueue<u32>) {
            q.schedule_at(SimTime(5), 0);
            q.schedule_at(SimTime(5), 1);
            q.schedule_at(SimTime(9), 4);
            q.schedule_at(SimTime(5), 2);
        }
        let mut singles = Vec::new();
        let mut q = EventQueue::new();
        schedule(&mut q);
        while let Some((t, e)) = q.pop() {
            // A handler scheduling more work at `now` — lands after the
            // rest of the instant, before later times.
            if e == 1 {
                q.schedule_at(t, 3);
            }
            singles.push((t, e));
        }

        let mut batched = Vec::new();
        let mut q = EventQueue::new();
        schedule(&mut q);
        let mut batch = Vec::new();
        while let Some(t) = q.pop_batch(&mut batch) {
            for e in batch.drain(..) {
                if e == 1 {
                    q.schedule_at(t, 3);
                }
                batched.push((t, e));
            }
        }
        assert_eq!(singles, batched);
        assert_eq!(
            batched,
            vec![
                (SimTime(5), 0),
                (SimTime(5), 1),
                (SimTime(5), 2),
                (SimTime(5), 3),
                (SimTime(9), 4),
            ]
        );
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_due(), None);
    }
}
