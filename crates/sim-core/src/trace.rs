//! Flight recorder: zero-cost-when-disabled structured event tracing.
//!
//! The paper's evaluation is read off per-second telemetry; this module is
//! the simulator's equivalent of that telemetry plane, generalized into a
//! structured event stream every subsystem emits into:
//!
//! * tmem datapath: put/get/flush/evict with outcome and pool, including
//!   the `tmem_used < mm_target` admission operands from Algorithm 1,
//! * control plane: VIRQ sample fates, netlink relay enqueue/shed/retry,
//!   MM policy decisions with the per-VM target vector and the Eq. 1/2
//!   rescale inputs,
//! * fault layer: every injected fault.
//!
//! Events carry `(SimTime, vm, subsystem, payload)` and flow into a bounded
//! ring buffer inside a [`Recorder`]; a [`TraceMetrics`] registry (counters
//! plus [`Histogram`]s of put latency and relay queue depth) aggregates
//! alongside. The handle every component holds is a [`Tracer`] — a cheap
//! clone of an `Option<Rc<RefCell<Recorder>>>`. When tracing is disabled
//! the option is `None` and [`Tracer::emit`] is a single branch: the
//! closure that would build the event is never called, so disabled runs
//! stay byte-identical to a build without the recorder.
//!
//! The schema is a load-bearing contract: `scenarios::trace_check` re-derives
//! tmem occupancy and the fault ledger purely from the event stream and
//! asserts they match the live accounting, and a golden JSONL file pins the
//! serialized form byte-exactly.

use crate::cost::CostModel;
use crate::faults::{NetlinkFate, SampleFate};
use crate::metrics::Histogram;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Version stamped into every JSONL trace header. Bump when the event
/// schema changes shape; `inspect`/replay reject traces from other versions.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Default ring-buffer capacity (events) when a [`TraceConfig`] does not
/// override it. Large enough to hold every event of the shipped scenarios
/// at report scale.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Switch + sizing for the flight recorder, carried inside the run
/// configuration. Absent (`None` at the config level) means tracing is
/// fully disabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; the oldest event is dropped (and
    /// counted) once the ring is full.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The tmem datapath (put/get/flush/evict/reclaim).
    Tmem,
    /// Hypervisor control state (target-vector application).
    Hypervisor,
    /// Per-second VIRQ sampling (sample fates, interval closes).
    Virq,
    /// The dom0 TKM netlink relay (enqueue/shed/push/retry).
    Relay,
    /// The user-space Memory Manager (decisions, discards, crashes).
    Mm,
    /// The fault-injection layer (one event per injected fault).
    Fault,
    /// The fleet layer (far-memory tier traffic, VM migrations).
    Fleet,
}

impl Subsystem {
    /// Stable lower-case label used in the JSONL form and `--filter`.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Tmem => "tmem",
            Subsystem::Hypervisor => "hyp",
            Subsystem::Virq => "virq",
            Subsystem::Relay => "relay",
            Subsystem::Mm => "mm",
            Subsystem::Fault => "fault",
            Subsystem::Fleet => "fleet",
        }
    }

    /// Inverse of [`Subsystem::as_str`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "tmem" => Subsystem::Tmem,
            "hyp" => Subsystem::Hypervisor,
            "virq" => Subsystem::Virq,
            "relay" => Subsystem::Relay,
            "mm" => Subsystem::Mm,
            "fault" => Subsystem::Fault,
            "fleet" => Subsystem::Fleet,
            _ => return None,
        })
    }

    /// All subsystems, in schema order.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Tmem,
        Subsystem::Hypervisor,
        Subsystem::Virq,
        Subsystem::Relay,
        Subsystem::Mm,
        Subsystem::Fault,
        Subsystem::Fleet,
    ];
}

/// Outcome of one tmem put as seen by the admission path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutResult {
    /// Stored into a free frame.
    Stored,
    /// Overwrote an existing copy of the same key (no frame consumed).
    Replaced,
    /// Stored after evicting an ephemeral victim page.
    StoredEvict,
    /// Rejected by Algorithm 1: `tmem_used >= mm_target`.
    RejectTarget,
    /// Admitted by the target check but no free frame existed.
    RejectCapacity,
    /// Admitted by the target check but rejected by the data-fault layer
    /// (injected I/O failure or backend brownout window).
    RejectIo,
    /// Admitted by the target check, found local tmem full, and spilled
    /// into the far-memory tier instead. No local frame consumed.
    StoredFar,
}

impl PutResult {
    /// Whether the page ended up in tmem (local or far tier).
    pub fn is_success(self) -> bool {
        matches!(
            self,
            PutResult::Stored | PutResult::Replaced | PutResult::StoredEvict | PutResult::StoredFar
        )
    }

    /// Whether a new frame was consumed.
    pub fn consumed_frame(self) -> bool {
        matches!(self, PutResult::Stored | PutResult::StoredEvict)
    }

    fn as_str(self) -> &'static str {
        match self {
            PutResult::Stored => "stored",
            PutResult::Replaced => "replaced",
            PutResult::StoredEvict => "stored_evict",
            PutResult::RejectTarget => "reject_target",
            PutResult::RejectCapacity => "reject_cap",
            PutResult::RejectIo => "reject_io",
            PutResult::StoredFar => "stored_far",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "stored" => PutResult::Stored,
            "replaced" => PutResult::Replaced,
            "stored_evict" => PutResult::StoredEvict,
            "reject_target" => PutResult::RejectTarget,
            "reject_cap" => PutResult::RejectCapacity,
            "reject_io" => PutResult::RejectIo,
            "stored_far" => PutResult::StoredFar,
            _ => return None,
        })
    }
}

/// Outcome of one `SetTargets` push attempt through the dom0 relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The hypercall went through (fresh or stale-rejected — see the
    /// separate `TargetsApplied` event for which).
    Landed,
    /// The hypercall failed; the push is parked for backoff retry.
    Parked,
    /// A parked push was replaced by a newer target vector.
    Superseded,
    /// The retry budget was exhausted; the push is dropped.
    Abandoned,
}

impl PushOutcome {
    fn as_str(self) -> &'static str {
        match self {
            PushOutcome::Landed => "landed",
            PushOutcome::Parked => "parked",
            PushOutcome::Superseded => "superseded",
            PushOutcome::Abandoned => "abandoned",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "landed" => PushOutcome::Landed,
            "parked" => PushOutcome::Parked,
            "superseded" => PushOutcome::Superseded,
            "abandoned" => PushOutcome::Abandoned,
            _ => return None,
        })
    }
}

/// One injected fault, as decided by the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A VIRQ sample was dropped.
    SampleDrop,
    /// A VIRQ sample was delayed one interval.
    SampleDelay,
    /// A VIRQ sample was duplicated.
    SampleDuplicate,
    /// A netlink stats message was lost.
    NetlinkDrop,
    /// A netlink stats message was reordered.
    NetlinkReorder,
    /// A `SetTargets` hypercall failed.
    HypercallFail,
    /// The MM process crashed.
    MmCrash,
    /// A stored page's contents were bit-flipped.
    PageBitflip,
    /// A put landed torn (contents do not match the integrity summary).
    TornWrite,
    /// An ephemeral page was silently dropped after a successful put.
    EphemeralLoss,
    /// A persistent put failed with an injected backend I/O error.
    PutIoFail,
    /// A put was rejected inside a backend brownout window.
    BrownoutReject,
    /// One sampling interval spent inside a brownout window.
    BrownoutTick,
    /// A checksum mismatch was detected (first detection of that page).
    CorruptDetected,
    /// The guest recovered from a detected corruption (clean miss or
    /// retry/requeue rebuild).
    CorruptRecovered,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::SampleDrop => "sample_drop",
            FaultKind::SampleDelay => "sample_delay",
            FaultKind::SampleDuplicate => "sample_dup",
            FaultKind::NetlinkDrop => "netlink_drop",
            FaultKind::NetlinkReorder => "netlink_reorder",
            FaultKind::HypercallFail => "hypercall_fail",
            FaultKind::MmCrash => "mm_crash",
            FaultKind::PageBitflip => "page_bitflip",
            FaultKind::TornWrite => "torn_write",
            FaultKind::EphemeralLoss => "ephemeral_loss",
            FaultKind::PutIoFail => "put_io_fail",
            FaultKind::BrownoutReject => "brownout_reject",
            FaultKind::BrownoutTick => "brownout_tick",
            FaultKind::CorruptDetected => "corrupt_detected",
            FaultKind::CorruptRecovered => "corrupt_recovered",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "sample_drop" => FaultKind::SampleDrop,
            "sample_delay" => FaultKind::SampleDelay,
            "sample_dup" => FaultKind::SampleDuplicate,
            "netlink_drop" => FaultKind::NetlinkDrop,
            "netlink_reorder" => FaultKind::NetlinkReorder,
            "hypercall_fail" => FaultKind::HypercallFail,
            "mm_crash" => FaultKind::MmCrash,
            "page_bitflip" => FaultKind::PageBitflip,
            "torn_write" => FaultKind::TornWrite,
            "ephemeral_loss" => FaultKind::EphemeralLoss,
            "put_io_fail" => FaultKind::PutIoFail,
            "brownout_reject" => FaultKind::BrownoutReject,
            "brownout_tick" => FaultKind::BrownoutTick,
            "corrupt_detected" => FaultKind::CorruptDetected,
            "corrupt_recovered" => FaultKind::CorruptRecovered,
            _ => return None,
        })
    }
}

fn sample_fate_str(f: SampleFate) -> &'static str {
    match f {
        SampleFate::Deliver => "deliver",
        SampleFate::Drop => "drop",
        SampleFate::Delay => "delay",
        SampleFate::Duplicate => "dup",
    }
}

fn sample_fate_from_str(s: &str) -> Option<SampleFate> {
    Some(match s {
        "deliver" => SampleFate::Deliver,
        "drop" => SampleFate::Drop,
        "delay" => SampleFate::Delay,
        "dup" => SampleFate::Duplicate,
        _ => return None,
    })
}

fn netlink_fate_str(f: NetlinkFate) -> &'static str {
    match f {
        NetlinkFate::Deliver => "deliver",
        NetlinkFate::Drop => "drop",
        NetlinkFate::Reorder => "reorder",
    }
}

fn netlink_fate_from_str(s: &str) -> Option<NetlinkFate> {
    Some(match s {
        "deliver" => NetlinkFate::Deliver,
        "drop" => NetlinkFate::Drop,
        "reorder" => NetlinkFate::Reorder,
        _ => return None,
    })
}

/// The typed body of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// One tmem put with its Algorithm 1 admission operands: `used` and
    /// `target` are the values of `tmem_used` and `mm_target` the admission
    /// check compared (after any stale-target fallback).
    Put {
        /// Pool the put targeted.
        pool: u32,
        /// Admission/storage outcome.
        result: PutResult,
        /// `tmem_used` operand of the admission check.
        used: u64,
        /// Effective `mm_target` operand of the admission check.
        target: u64,
    },
    /// An ephemeral page was evicted to make room (the event's `vm` is the
    /// *victim* owner; the beneficiary emits a `Put` with
    /// [`PutResult::StoredEvict`]).
    Evict {
        /// Pool the victim page belonged to.
        pool: u32,
    },
    /// One tmem get.
    Get {
        /// Pool queried.
        pool: u32,
        /// Whether the page was present.
        hit: bool,
        /// Whether the hit freed the frame (persistent-pool exclusive get).
        freed: bool,
    },
    /// One flush (single page).
    Flush {
        /// Pool flushed.
        pool: u32,
        /// Frames actually freed (0 when the page was absent).
        pages: u64,
    },
    /// A tmem pool was created. Makes the trace self-describing: replay
    /// learns each pool's kind here, so ephemeral (cleancache) traffic can
    /// be told apart from frontswap traffic without out-of-band context.
    PoolCreate {
        /// Pool created.
        pool: u32,
        /// True for ephemeral (cleancache) pools, false for persistent
        /// (frontswap) pools.
        ephemeral: bool,
    },
    /// A whole object or pool was destroyed.
    PoolDestroy {
        /// Pool destroyed.
        pool: u32,
        /// Frames freed.
        pages: u64,
    },
    /// The hypervisor reclaimed over-target persistent pages back to the
    /// guest (they fall through to disk).
    Reclaim {
        /// Pool reclaimed from.
        pool: u32,
        /// Frames reclaimed.
        pages: u64,
    },
    /// A `SetTargets` hypercall reached the hypervisor.
    TargetsApplied {
        /// Push sequence number.
        seq: u64,
        /// Entries in the target vector.
        entries: u32,
        /// False when the idempotence guard rejected a stale sequence.
        applied: bool,
    },
    /// The hypervisor emitted a VIRQ statistics sample with this fate.
    VirqSample {
        /// Sample sequence number.
        seq: u64,
        /// Fate assigned by the fault layer.
        fate: SampleFate,
    },
    /// One sampling interval closed (after MM drive, reclaim and the
    /// accounting invariant check). The `k`-th `IntervalClose` aligns with
    /// the `k`-th point of every recorded time-series.
    IntervalClose {
        /// Sample sequence number of the interval.
        seq: u64,
        /// Whether the hypervisor spent this interval in stale-target
        /// fallback (only ever true when an MM is attached).
        stale: bool,
        /// Result of the tmem accounting invariant check.
        ok: bool,
    },
    /// A netlink stats message crossed (or failed to cross) the dom0 → MM
    /// edge.
    NetlinkStats {
        /// Sample sequence number carried by the message.
        seq: u64,
        /// Fate assigned by the fault layer.
        fate: NetlinkFate,
    },
    /// The relay enqueued a stats message for the MM.
    RelayEnqueue {
        /// Sample sequence number.
        seq: u64,
        /// Queue depth after the enqueue.
        depth: u64,
    },
    /// The relay shed its oldest queued message at capacity.
    RelayShed {
        /// Sample sequence number of the shed (oldest) message.
        seq: u64,
    },
    /// One `SetTargets` push attempt through the relay.
    RelayPush {
        /// Push sequence number.
        seq: u64,
        /// Attempt number (1 = first try; ≥ 2 = backoff retry).
        attempt: u32,
        /// What happened to the attempt.
        outcome: PushOutcome,
    },
    /// The MM processed one fresh snapshot and decided.
    MmDecision {
        /// Sequence of the snapshot consumed.
        seq_in: u64,
        /// Push sequence assigned (0 when not sent).
        push_seq: u64,
        /// Whether a target vector was transmitted (false = suppressed or
        /// warming up).
        sent: bool,
        /// Whether the MM was inside its post-restart rebuild window.
        warming: bool,
        /// The computed per-VM target vector `(vm, mm_target)`.
        targets: Vec<(u32, u64)>,
        /// When the policy rescaled (Eq. 2): `(sum_targets, local_tmem)`
        /// inputs of the proportional rescale.
        rescale: Option<(u64, u64)>,
    },
    /// The MM discarded a duplicate/stale snapshot idempotently.
    MmDiscard {
        /// Sequence of the discarded snapshot.
        seq_in: u64,
    },
    /// The MM process crashed.
    MmCrash {
        /// MM cycle count at the crash.
        cycle: u64,
    },
    /// The watchdog restarted a crashed MM.
    MmRestart,
    /// The fault layer injected a fault.
    Fault {
        /// Which fault fired.
        kind: FaultKind,
    },
    /// The data-fault layer silently removed stored pages (ephemeral loss,
    /// a corrupt ephemeral page dropped on get, a corrupt persistent
    /// victim dropped during reclaim, or a scrubber quarantine). The
    /// event's `vm` is the owner whose occupancy shrank.
    DataPurge {
        /// Pool the pages were removed from.
        pool: u32,
        /// Frames freed.
        pages: u64,
    },
    /// One pool-scrubber pass completed (node-wide).
    Scrub {
        /// Pages checksum-verified.
        checked: u64,
        /// Corrupt pages found by this pass.
        corrupt: u64,
        /// Corrupt objects quarantined by this pass.
        quarantined: u64,
    },
    /// A get missed local tmem and was serviced by the far-memory tier
    /// (the far copy is consumed — exclusive read). Emitted in addition
    /// to the `Get` event, which reports `freed: false` because no
    /// *local* frame was released.
    FarGet {
        /// Pool the far copy belonged to.
        pool: u32,
    },
    /// Far-tier entries were purged by a flush/destroy of their pool.
    FarFlush {
        /// Pool flushed.
        pool: u32,
        /// Far entries removed.
        pages: u64,
    },
    /// A VM began migrating off this host. Emitted on the *source* host's
    /// trace; the pages named here leave this host's accounting.
    MigrateOut {
        /// Clean local tmem pages exported.
        pages: u64,
        /// Far-tier entries exported.
        far: u64,
        /// Corrupt pages found at export and dropped (never transferred).
        purged: u64,
        /// Resident RAM pages transferred alongside.
        ram: u64,
    },
    /// A migrating VM landed on this host. Emitted on the *destination*
    /// host's trace. `pages + far + spilled` equals the source's
    /// `pages + far` — conservation, checked by replay.
    MigrateIn {
        /// Pages stored into the destination's local tmem.
        pages: u64,
        /// Entries stored into the destination's far tier.
        far: u64,
        /// Pages that found no tmem room and spilled to the destination's
        /// swap disk.
        spilled: u64,
    },
    /// A migrated VM resumed on its destination host.
    MigrateDone {
        /// Pause-to-resume downtime in sim-nanoseconds.
        downtime: u64,
    },
}

/// One recorded event: `(SimTime, vm, subsystem, payload)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated instant of the event.
    pub at: SimTime,
    /// VM the event is attributed to (`None` for node-wide control-plane
    /// events).
    pub vm: Option<u32>,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Typed body.
    pub payload: Payload,
}

/// Aggregated metrics registry, maintained by the [`Recorder`] as events
/// arrive. All fields are exact counts; merging across cells is exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceMetrics {
    /// Total puts attempted.
    pub puts: u64,
    /// Puts rejected (target or capacity).
    pub puts_rejected: u64,
    /// Total gets.
    pub gets: u64,
    /// Gets that hit.
    pub get_hits: u64,
    /// Frames freed by flushes and pool destroys.
    pub flush_pages: u64,
    /// Ephemeral evictions.
    pub evictions: u64,
    /// Frames reclaimed over target.
    pub reclaimed_pages: u64,
    /// VIRQ samples emitted.
    pub virq_samples: u64,
    /// Stats messages enqueued by the relay.
    pub relay_enqueued: u64,
    /// Stats messages shed at queue capacity.
    pub relay_shed: u64,
    /// `SetTargets` push attempts.
    pub relay_pushes: u64,
    /// Push attempts that were backoff retries (attempt ≥ 2).
    pub relay_retries: u64,
    /// MM decisions (fresh snapshots processed).
    pub mm_decisions: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Put latency in sim-nanoseconds, from the cost model: a copying
    /// hypercall for admitted puts, a no-copy hypercall for rejects.
    pub put_latency: Histogram,
    /// Relay queue depth observed at each enqueue.
    pub relay_depth: Histogram,
}

impl TraceMetrics {
    /// Fraction of puts rejected by admission (0 when no puts).
    pub fn reject_ratio(&self) -> f64 {
        if self.puts == 0 {
            0.0
        } else {
            self.puts_rejected as f64 / self.puts as f64
        }
    }

    /// Fold another registry into this one (exact).
    pub fn merge(&mut self, other: &TraceMetrics) {
        self.puts += other.puts;
        self.puts_rejected += other.puts_rejected;
        self.gets += other.gets;
        self.get_hits += other.get_hits;
        self.flush_pages += other.flush_pages;
        self.evictions += other.evictions;
        self.reclaimed_pages += other.reclaimed_pages;
        self.virq_samples += other.virq_samples;
        self.relay_enqueued += other.relay_enqueued;
        self.relay_shed += other.relay_shed;
        self.relay_pushes += other.relay_pushes;
        self.relay_retries += other.relay_retries;
        self.mm_decisions += other.mm_decisions;
        self.faults_injected += other.faults_injected;
        self.put_latency.merge(&other.put_latency);
        self.relay_depth.merge(&other.relay_depth);
    }
}

/// The per-run event sink: a clock cell, a bounded ring of events, and the
/// metrics registry. Owned behind `Rc<RefCell<…>>` by every [`Tracer`]
/// clone in one simulation cell; never crosses threads (only the plain
/// [`TraceData`] extracted at the end does).
#[derive(Debug)]
pub struct Recorder {
    now: SimTime,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    dropped_oldest: u64,
    metrics: TraceMetrics,
    cost: Option<CostModel>,
}

impl Recorder {
    /// A recorder holding at most `capacity` events. `cost` enables the
    /// put-latency histogram (latencies are read off the cost model).
    pub fn new(capacity: usize, cost: Option<CostModel>) -> Self {
        Recorder {
            now: SimTime::ZERO,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped_oldest: 0,
            metrics: TraceMetrics::default(),
            cost,
        }
    }

    fn record(&mut self, vm: Option<u32>, subsystem: Subsystem, payload: Payload) {
        match &payload {
            Payload::Put { result, .. } => {
                self.metrics.puts += 1;
                if !result.is_success() {
                    self.metrics.puts_rejected += 1;
                }
                if let Some(cost) = &self.cost {
                    let lat = if result.is_success() {
                        cost.tmem_hypercall
                    } else {
                        cost.tmem_hypercall_nocopy
                    };
                    self.metrics.put_latency.record(lat.as_nanos());
                }
            }
            Payload::Evict { .. } => self.metrics.evictions += 1,
            Payload::Get { hit, .. } => {
                self.metrics.gets += 1;
                if *hit {
                    self.metrics.get_hits += 1;
                }
            }
            Payload::Flush { pages, .. } | Payload::PoolDestroy { pages, .. } => {
                self.metrics.flush_pages += pages;
            }
            Payload::Reclaim { pages, .. } => self.metrics.reclaimed_pages += pages,
            Payload::VirqSample { .. } => self.metrics.virq_samples += 1,
            Payload::RelayEnqueue { depth, .. } => {
                self.metrics.relay_enqueued += 1;
                self.metrics.relay_depth.record(*depth);
            }
            Payload::RelayShed { .. } => self.metrics.relay_shed += 1,
            Payload::RelayPush { attempt, .. } => {
                self.metrics.relay_pushes += 1;
                if *attempt >= 2 {
                    self.metrics.relay_retries += 1;
                }
            }
            Payload::MmDecision { .. } => self.metrics.mm_decisions += 1,
            Payload::Fault { .. } => self.metrics.faults_injected += 1,
            Payload::PoolCreate { .. }
            | Payload::TargetsApplied { .. }
            | Payload::IntervalClose { .. }
            | Payload::NetlinkStats { .. }
            | Payload::MmDiscard { .. }
            | Payload::MmCrash { .. }
            | Payload::MmRestart
            | Payload::DataPurge { .. }
            | Payload::Scrub { .. }
            | Payload::FarGet { .. }
            | Payload::FarFlush { .. }
            | Payload::MigrateOut { .. }
            | Payload::MigrateIn { .. }
            | Payload::MigrateDone { .. } => {}
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped_oldest += 1;
        }
        self.ring.push_back(TraceEvent {
            at: self.now,
            vm,
            subsystem,
            payload,
        });
    }
}

/// The cheap, cloneable handle every component holds. Disabled tracers
/// carry `None`: [`Tracer::emit`] is then a single branch and the event
/// closure is never evaluated.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Rc<RefCell<Recorder>>>);

impl Tracer {
    /// A tracer that records nothing (the default).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer backed by a fresh recorder.
    pub fn new(recorder: Recorder) -> Self {
        Tracer(Some(Rc::new(RefCell::new(recorder))))
    }

    /// Build from an optional [`TraceConfig`] (the run-config plumbing).
    pub fn from_config(cfg: Option<&TraceConfig>, cost: &CostModel) -> Self {
        match cfg {
            Some(tc) => Tracer::new(Recorder::new(tc.capacity, Some(cost.clone()))),
            None => Tracer::disabled(),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advance the recorder's clock; every subsequent event is stamped with
    /// `t`. The simulation driver calls this once per dispatched event.
    #[inline]
    pub fn set_now(&self, t: SimTime) {
        if let Some(rec) = &self.0 {
            rec.borrow_mut().now = t;
        }
    }

    /// Emit one event. The closure builds `(vm, subsystem, payload)` and is
    /// only evaluated when tracing is enabled — call sites pay one branch
    /// when disabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> (Option<u32>, Subsystem, Payload)) {
        if let Some(rec) = &self.0 {
            let (vm, subsystem, payload) = f();
            rec.borrow_mut().record(vm, subsystem, payload);
        }
    }

    /// Drain the recorder into a plain, `Send` [`TraceData`]. Returns
    /// `None` for disabled tracers. Other live handles keep pointing at the
    /// (now empty) recorder.
    pub fn finish(&self) -> Option<TraceData> {
        let rec = self.0.as_ref()?;
        let mut rec = rec.borrow_mut();
        Some(TraceData {
            events: std::mem::take(&mut rec.ring).into_iter().collect(),
            dropped_oldest: std::mem::take(&mut rec.dropped_oldest),
            metrics: std::mem::take(&mut rec.metrics),
        })
    }
}

/// Identity stamped into a JSONL trace header.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceHeader {
    /// Scenario name.
    pub scenario: String,
    /// Policy name.
    pub policy: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Subsystem filter applied at write time (`None` = full trace). A
    /// filtered trace is not replayable and is flagged as such here.
    pub filter: Option<String>,
}

/// The extracted, thread-safe result of one recording: the event list plus
/// aggregate metrics. This is what crosses from a worker cell back to the
/// experiment engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceData {
    /// Recorded events in emission order.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring because capacity was exceeded. A
    /// replay verifier requires this to be 0.
    pub dropped_oldest: u64,
    /// Aggregated counters and histograms.
    pub metrics: TraceMetrics,
}

/// A trace parsed back from JSONL: header fields plus events.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// Schema version from the header.
    pub version: u32,
    /// Scenario name from the header.
    pub scenario: String,
    /// Policy name from the header.
    pub policy: String,
    /// Root seed from the header.
    pub seed: u64,
    /// Ring-buffer drops declared by the header.
    pub dropped_oldest: u64,
    /// Write-time subsystem filter, if any.
    pub filter: Option<String>,
    /// Parsed events in file order.
    pub events: Vec<TraceEvent>,
}

impl TraceData {
    /// Serialize as JSONL: one header object, then one compact object per
    /// event, with a fixed key order so equal traces are byte-equal.
    /// `filter` restricts the written events to the listed subsystems (the
    /// recorder always records everything; filtering is a write-time view).
    pub fn to_jsonl(&self, header: &TraceHeader, filter: Option<&[Subsystem]>) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"smartmem-trace\",\"version\":{},\"scenario\":{},\"policy\":{},\"seed\":{},\"dropped\":{}",
            TRACE_SCHEMA_VERSION,
            json_string(&header.scenario),
            json_string(&header.policy),
            header.seed,
            self.dropped_oldest
        );
        let filter_label = filter.map(|subs| {
            subs.iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(",")
        });
        if let Some(label) = &filter_label {
            let _ = write!(out, ",\"filter\":{}", json_string(label));
        }
        out.push_str("}\n");
        for ev in &self.events {
            if let Some(subs) = filter {
                if !subs.contains(&ev.subsystem) {
                    continue;
                }
            }
            write_event(&mut out, ev);
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL trace produced by [`TraceData::to_jsonl`]. Strict:
    /// unknown schema names, versions, subsystems or event kinds are
    /// errors, so schema drift is caught at the boundary.
    pub fn parse_jsonl(s: &str) -> Result<ParsedTrace, String> {
        let mut lines = s.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| "empty trace: missing header line".to_string())?;
        let header = parse_json_object(first).map_err(|e| format!("header: {e}"))?;
        if get_str(&header, "schema")? != "smartmem-trace" {
            return Err("header: not a smartmem-trace file".into());
        }
        let version = get_u64(&header, "version")? as u32;
        if version != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported trace schema version {version} (expected {TRACE_SCHEMA_VERSION})"
            ));
        }
        let mut events = Vec::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let obj = parse_json_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(event_from_fields(&obj).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(ParsedTrace {
            version,
            scenario: get_str(&header, "scenario")?.to_string(),
            policy: get_str(&header, "policy")?.to_string(),
            seed: get_u64(&header, "seed")?,
            dropped_oldest: get_u64(&header, "dropped")?,
            filter: find(&header, "filter").map(|v| match v {
                Json::S(s) => s.clone(),
                other => format!("{other:?}"),
            }),
            events,
        })
    }
}

// ---------------------------------------------------------------------------
// JSONL writing
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    let _ = write!(out, "{{\"t\":{}", ev.at.as_nanos());
    if let Some(vm) = ev.vm {
        let _ = write!(out, ",\"vm\":{vm}");
    }
    let _ = write!(out, ",\"sub\":\"{}\"", ev.subsystem.as_str());
    match &ev.payload {
        Payload::Put {
            pool,
            result,
            used,
            target,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"put\",\"pool\":{pool},\"res\":\"{}\",\"used\":{used},\"target\":{target}",
                result.as_str()
            );
        }
        Payload::Evict { pool } => {
            let _ = write!(out, ",\"ev\":\"evict\",\"pool\":{pool}");
        }
        Payload::Get { pool, hit, freed } => {
            let _ = write!(
                out,
                ",\"ev\":\"get\",\"pool\":{pool},\"hit\":{hit},\"freed\":{freed}"
            );
        }
        Payload::Flush { pool, pages } => {
            let _ = write!(out, ",\"ev\":\"flush\",\"pool\":{pool},\"pages\":{pages}");
        }
        Payload::PoolCreate { pool, ephemeral } => {
            let _ = write!(
                out,
                ",\"ev\":\"pool_create\",\"pool\":{pool},\"ephemeral\":{ephemeral}"
            );
        }
        Payload::PoolDestroy { pool, pages } => {
            let _ = write!(
                out,
                ",\"ev\":\"pool_destroy\",\"pool\":{pool},\"pages\":{pages}"
            );
        }
        Payload::Reclaim { pool, pages } => {
            let _ = write!(out, ",\"ev\":\"reclaim\",\"pool\":{pool},\"pages\":{pages}");
        }
        Payload::TargetsApplied {
            seq,
            entries,
            applied,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"targets_applied\",\"seq\":{seq},\"entries\":{entries},\"applied\":{applied}"
            );
        }
        Payload::VirqSample { seq, fate } => {
            let _ = write!(
                out,
                ",\"ev\":\"sample\",\"seq\":{seq},\"fate\":\"{}\"",
                sample_fate_str(*fate)
            );
        }
        Payload::IntervalClose { seq, stale, ok } => {
            let _ = write!(
                out,
                ",\"ev\":\"interval\",\"seq\":{seq},\"stale\":{stale},\"ok\":{ok}"
            );
        }
        Payload::NetlinkStats { seq, fate } => {
            let _ = write!(
                out,
                ",\"ev\":\"stats_msg\",\"seq\":{seq},\"fate\":\"{}\"",
                netlink_fate_str(*fate)
            );
        }
        Payload::RelayEnqueue { seq, depth } => {
            let _ = write!(out, ",\"ev\":\"enqueue\",\"seq\":{seq},\"depth\":{depth}");
        }
        Payload::RelayShed { seq } => {
            let _ = write!(out, ",\"ev\":\"shed\",\"seq\":{seq}");
        }
        Payload::RelayPush {
            seq,
            attempt,
            outcome,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"push\",\"seq\":{seq},\"attempt\":{attempt},\"outcome\":\"{}\"",
                outcome.as_str()
            );
        }
        Payload::MmDecision {
            seq_in,
            push_seq,
            sent,
            warming,
            targets,
            rescale,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"decision\",\"seq_in\":{seq_in},\"push_seq\":{push_seq},\"sent\":{sent},\"warming\":{warming},\"targets\":["
            );
            for (i, (vm, tgt)) in targets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{vm},{tgt}]");
            }
            out.push(']');
            if let Some((sum, cap)) = rescale {
                let _ = write!(out, ",\"rescale\":[{sum},{cap}]");
            }
        }
        Payload::MmDiscard { seq_in } => {
            let _ = write!(out, ",\"ev\":\"discard\",\"seq_in\":{seq_in}");
        }
        Payload::MmCrash { cycle } => {
            let _ = write!(out, ",\"ev\":\"crash\",\"cycle\":{cycle}");
        }
        Payload::MmRestart => {
            out.push_str(",\"ev\":\"restart\"");
        }
        Payload::Fault { kind } => {
            let _ = write!(out, ",\"ev\":\"fault\",\"kind\":\"{}\"", kind.as_str());
        }
        Payload::DataPurge { pool, pages } => {
            let _ = write!(
                out,
                ",\"ev\":\"data_purge\",\"pool\":{pool},\"pages\":{pages}"
            );
        }
        Payload::Scrub {
            checked,
            corrupt,
            quarantined,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"scrub\",\"checked\":{checked},\"corrupt\":{corrupt},\"quarantined\":{quarantined}"
            );
        }
        Payload::FarGet { pool } => {
            let _ = write!(out, ",\"ev\":\"far_get\",\"pool\":{pool}");
        }
        Payload::FarFlush { pool, pages } => {
            let _ = write!(
                out,
                ",\"ev\":\"far_flush\",\"pool\":{pool},\"pages\":{pages}"
            );
        }
        Payload::MigrateOut {
            pages,
            far,
            purged,
            ram,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"migrate_out\",\"pages\":{pages},\"far\":{far},\"purged\":{purged},\"ram\":{ram}"
            );
        }
        Payload::MigrateIn {
            pages,
            far,
            spilled,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"migrate_in\",\"pages\":{pages},\"far\":{far},\"spilled\":{spilled}"
            );
        }
        Payload::MigrateDone { downtime } => {
            let _ = write!(out, ",\"ev\":\"migrate_done\",\"downtime\":{downtime}");
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// JSONL parsing (hand-rolled: the vendored serde is a no-op stub)
// ---------------------------------------------------------------------------

/// Minimal JSON value for the flat objects the trace format uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    U(u64),
    B(bool),
    S(String),
    A(Vec<Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(x) if x == b => Ok(()),
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or("unterminated string")? {
                b'"' => return Ok(out),
                b'\\' => match self.bump().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")? as char;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                },
                b => {
                    // Re-assemble multi-byte UTF-8 sequences byte-wise.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let slice = self.bytes.get(start..end).ok_or("truncated UTF-8")?;
                        let s = std::str::from_utf8(slice).map_err(|_| "invalid UTF-8")?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(Json::S(self.string()?)),
            b't' => {
                self.literal("true")?;
                Ok(Json::B(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Json::B(false))
            }
            b'[' => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Json::A(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::A(items)),
                        other => {
                            return Err(format!(
                                "expected ',' or ']' in array, found {:?}",
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
            }
            b'0'..=b'9' => {
                let mut n = 0u64;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d - b'0') as u64))
                        .ok_or("integer overflow")?;
                    self.pos += 1;
                }
                Ok(Json::U(n))
            }
            other => Err(format!("unexpected character '{}'", other as char)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("expected literal '{lit}'"));
            }
        }
        Ok(())
    }
}

fn parse_json_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = Parser::new(line);
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(fields);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.expect(b':')?;
        let value = p.value()?;
        fields.push((key, value));
        p.skip_ws();
        match p.bump() {
            Some(b',') => continue,
            Some(b'}') => return Ok(fields),
            other => {
                return Err(format!(
                    "expected ',' or '}}' in object, found {:?}",
                    other.map(|c| c as char)
                ))
            }
        }
    }
}

fn find<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    match find(fields, key) {
        Some(Json::U(n)) => Ok(*n),
        Some(other) => Err(format!("field '{key}' is not an integer: {other:?}")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn get_bool(fields: &[(String, Json)], key: &str) -> Result<bool, String> {
    match find(fields, key) {
        Some(Json::B(b)) => Ok(*b),
        Some(other) => Err(format!("field '{key}' is not a bool: {other:?}")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn get_str<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match find(fields, key) {
        Some(Json::S(s)) => Ok(s),
        Some(other) => Err(format!("field '{key}' is not a string: {other:?}")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn event_from_fields(obj: &[(String, Json)]) -> Result<TraceEvent, String> {
    let at = SimTime(get_u64(obj, "t")?);
    let vm = match find(obj, "vm") {
        Some(Json::U(n)) => Some(*n as u32),
        Some(other) => return Err(format!("field 'vm' is not an integer: {other:?}")),
        None => None,
    };
    let sub = get_str(obj, "sub")?;
    let subsystem =
        Subsystem::from_label(sub).ok_or_else(|| format!("unknown subsystem '{sub}'"))?;
    let ev = get_str(obj, "ev")?;
    let payload = match ev {
        "put" => {
            let res = get_str(obj, "res")?;
            Payload::Put {
                pool: get_u64(obj, "pool")? as u32,
                result: PutResult::from_str(res)
                    .ok_or_else(|| format!("unknown put result '{res}'"))?,
                used: get_u64(obj, "used")?,
                target: get_u64(obj, "target")?,
            }
        }
        "evict" => Payload::Evict {
            pool: get_u64(obj, "pool")? as u32,
        },
        "get" => Payload::Get {
            pool: get_u64(obj, "pool")? as u32,
            hit: get_bool(obj, "hit")?,
            freed: get_bool(obj, "freed")?,
        },
        "flush" => Payload::Flush {
            pool: get_u64(obj, "pool")? as u32,
            pages: get_u64(obj, "pages")?,
        },
        "pool_create" => Payload::PoolCreate {
            pool: get_u64(obj, "pool")? as u32,
            ephemeral: get_bool(obj, "ephemeral")?,
        },
        "pool_destroy" => Payload::PoolDestroy {
            pool: get_u64(obj, "pool")? as u32,
            pages: get_u64(obj, "pages")?,
        },
        "reclaim" => Payload::Reclaim {
            pool: get_u64(obj, "pool")? as u32,
            pages: get_u64(obj, "pages")?,
        },
        "targets_applied" => Payload::TargetsApplied {
            seq: get_u64(obj, "seq")?,
            entries: get_u64(obj, "entries")? as u32,
            applied: get_bool(obj, "applied")?,
        },
        "sample" => {
            let fate = get_str(obj, "fate")?;
            Payload::VirqSample {
                seq: get_u64(obj, "seq")?,
                fate: sample_fate_from_str(fate)
                    .ok_or_else(|| format!("unknown sample fate '{fate}'"))?,
            }
        }
        "interval" => Payload::IntervalClose {
            seq: get_u64(obj, "seq")?,
            stale: get_bool(obj, "stale")?,
            ok: get_bool(obj, "ok")?,
        },
        "stats_msg" => {
            let fate = get_str(obj, "fate")?;
            Payload::NetlinkStats {
                seq: get_u64(obj, "seq")?,
                fate: netlink_fate_from_str(fate)
                    .ok_or_else(|| format!("unknown netlink fate '{fate}'"))?,
            }
        }
        "enqueue" => Payload::RelayEnqueue {
            seq: get_u64(obj, "seq")?,
            depth: get_u64(obj, "depth")?,
        },
        "shed" => Payload::RelayShed {
            seq: get_u64(obj, "seq")?,
        },
        "push" => {
            let outcome = get_str(obj, "outcome")?;
            Payload::RelayPush {
                seq: get_u64(obj, "seq")?,
                attempt: get_u64(obj, "attempt")? as u32,
                outcome: PushOutcome::from_str(outcome)
                    .ok_or_else(|| format!("unknown push outcome '{outcome}'"))?,
            }
        }
        "decision" => {
            let targets = match find(obj, "targets") {
                Some(Json::A(items)) => items
                    .iter()
                    .map(|item| match item {
                        Json::A(pair) => match pair.as_slice() {
                            [Json::U(vm), Json::U(tgt)] => Ok((*vm as u32, *tgt)),
                            _ => Err("target entry is not a [vm, target] pair".to_string()),
                        },
                        _ => Err("target entry is not an array".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("missing or malformed 'targets'".into()),
            };
            let rescale = match find(obj, "rescale") {
                Some(Json::A(pair)) => match pair.as_slice() {
                    [Json::U(sum), Json::U(cap)] => Some((*sum, *cap)),
                    _ => return Err("'rescale' is not a [sum, cap] pair".into()),
                },
                Some(_) => return Err("'rescale' is not an array".into()),
                None => None,
            };
            Payload::MmDecision {
                seq_in: get_u64(obj, "seq_in")?,
                push_seq: get_u64(obj, "push_seq")?,
                sent: get_bool(obj, "sent")?,
                warming: get_bool(obj, "warming")?,
                targets,
                rescale,
            }
        }
        "discard" => Payload::MmDiscard {
            seq_in: get_u64(obj, "seq_in")?,
        },
        "crash" => Payload::MmCrash {
            cycle: get_u64(obj, "cycle")?,
        },
        "restart" => Payload::MmRestart,
        "fault" => {
            let kind = get_str(obj, "kind")?;
            Payload::Fault {
                kind: FaultKind::from_str(kind)
                    .ok_or_else(|| format!("unknown fault kind '{kind}'"))?,
            }
        }
        "data_purge" => Payload::DataPurge {
            pool: get_u64(obj, "pool")? as u32,
            pages: get_u64(obj, "pages")?,
        },
        "scrub" => Payload::Scrub {
            checked: get_u64(obj, "checked")?,
            corrupt: get_u64(obj, "corrupt")?,
            quarantined: get_u64(obj, "quarantined")?,
        },
        "far_get" => Payload::FarGet {
            pool: get_u64(obj, "pool")? as u32,
        },
        "far_flush" => Payload::FarFlush {
            pool: get_u64(obj, "pool")? as u32,
            pages: get_u64(obj, "pages")?,
        },
        "migrate_out" => Payload::MigrateOut {
            pages: get_u64(obj, "pages")?,
            far: get_u64(obj, "far")?,
            purged: get_u64(obj, "purged")?,
            ram: get_u64(obj, "ram")?,
        },
        "migrate_in" => Payload::MigrateIn {
            pages: get_u64(obj, "pages")?,
            far: get_u64(obj, "far")?,
            spilled: get_u64(obj, "spilled")?,
        },
        "migrate_done" => Payload::MigrateDone {
            downtime: get_u64(obj, "downtime")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceEvent {
        at,
        vm,
        subsystem,
        payload,
    })
}

/// Parse a `--filter subsys=a,b` value (the part after `subsys=`) into a
/// subsystem list. Rejects unknown names with the valid set in the message.
pub fn parse_subsystem_filter(list: &str) -> Result<Vec<Subsystem>, String> {
    let mut subs = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let sub = Subsystem::from_label(name).ok_or_else(|| {
            format!(
                "unknown subsystem '{name}' (valid: {})",
                Subsystem::ALL
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        if !subs.contains(&sub) {
            subs.push(sub);
        }
    }
    if subs.is_empty() {
        return Err("empty subsystem filter".into());
    }
    Ok(subs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(Option<u32>, Subsystem, Payload)> {
        vec![
            (
                Some(1),
                Subsystem::Tmem,
                Payload::Put {
                    pool: 0,
                    result: PutResult::Stored,
                    used: 10,
                    target: 100,
                },
            ),
            (
                Some(1),
                Subsystem::Tmem,
                Payload::Put {
                    pool: 0,
                    result: PutResult::RejectTarget,
                    used: 100,
                    target: 100,
                },
            ),
            (
                Some(2),
                Subsystem::Tmem,
                Payload::Get {
                    pool: 1,
                    hit: true,
                    freed: true,
                },
            ),
            (
                None,
                Subsystem::Virq,
                Payload::VirqSample {
                    seq: 1,
                    fate: SampleFate::Drop,
                },
            ),
            (
                None,
                Subsystem::Relay,
                Payload::RelayEnqueue { seq: 1, depth: 1 },
            ),
            (
                None,
                Subsystem::Relay,
                Payload::RelayPush {
                    seq: 1,
                    attempt: 2,
                    outcome: PushOutcome::Landed,
                },
            ),
            (
                None,
                Subsystem::Mm,
                Payload::MmDecision {
                    seq_in: 1,
                    push_seq: 1,
                    sent: true,
                    warming: false,
                    targets: vec![(1, 100), (2, 200)],
                    rescale: Some((400, 300)),
                },
            ),
            (
                None,
                Subsystem::Fault,
                Payload::Fault {
                    kind: FaultKind::SampleDrop,
                },
            ),
            (None, Subsystem::Mm, Payload::MmRestart),
            (
                Some(1),
                Subsystem::Tmem,
                Payload::Put {
                    pool: 0,
                    result: PutResult::RejectIo,
                    used: 10,
                    target: 100,
                },
            ),
            (
                Some(2),
                Subsystem::Tmem,
                Payload::DataPurge { pool: 1, pages: 3 },
            ),
            (
                None,
                Subsystem::Tmem,
                Payload::Scrub {
                    checked: 64,
                    corrupt: 2,
                    quarantined: 1,
                },
            ),
            (
                Some(1),
                Subsystem::Fault,
                Payload::Fault {
                    kind: FaultKind::CorruptDetected,
                },
            ),
        ]
    }

    fn record_all() -> TraceData {
        let tracer = Tracer::new(Recorder::new(1024, Some(CostModel::hdd())));
        for (i, (vm, sub, payload)) in sample_events().into_iter().enumerate() {
            tracer.set_now(SimTime(i as u64 * 1_000));
            tracer.emit(|| (vm, sub, payload));
        }
        tracer.finish().expect("enabled tracer yields data")
    }

    #[test]
    fn disabled_tracer_never_evaluates_the_closure() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.set_now(SimTime(5));
        tracer.emit(|| unreachable!("closure must not run when disabled"));
        assert_eq!(tracer.finish(), None);
    }

    #[test]
    fn jsonl_round_trips_every_payload_kind() {
        let data = record_all();
        let header = TraceHeader {
            scenario: "scenario1".into(),
            policy: "smart-alloc".into(),
            seed: 42,
            filter: None,
        };
        let jsonl = data.to_jsonl(&header, None);
        let parsed = TraceData::parse_jsonl(&jsonl).expect("own output parses");
        assert_eq!(parsed.version, TRACE_SCHEMA_VERSION);
        assert_eq!(parsed.scenario, "scenario1");
        assert_eq!(parsed.policy, "smart-alloc");
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.dropped_oldest, 0);
        assert_eq!(parsed.events, data.events, "lossless round trip");
    }

    #[test]
    fn write_filter_restricts_subsystems() {
        let data = record_all();
        let header = TraceHeader::default();
        let jsonl = data.to_jsonl(&header, Some(&[Subsystem::Tmem]));
        let parsed = TraceData::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.filter.as_deref(), Some("tmem"));
        assert_eq!(parsed.events.len(), 6);
        assert!(parsed.events.iter().all(|e| e.subsystem == Subsystem::Tmem));
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let tracer = Tracer::new(Recorder::new(2, None));
        for seq in 0..5 {
            tracer.emit(|| (None, Subsystem::Virq, Payload::RelayShed { seq }));
        }
        let data = tracer.finish().unwrap();
        assert_eq!(data.dropped_oldest, 3);
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.events[0].payload, Payload::RelayShed { seq: 3 });
        assert_eq!(data.events[1].payload, Payload::RelayShed { seq: 4 });
    }

    #[test]
    fn metrics_aggregate_alongside_events() {
        let data = record_all();
        let m = &data.metrics;
        assert_eq!(m.puts, 3);
        assert_eq!(m.puts_rejected, 2, "RejectIo counts as a reject");
        assert_eq!(m.gets, 1);
        assert_eq!(m.get_hits, 1);
        assert_eq!(m.virq_samples, 1);
        assert_eq!(m.relay_enqueued, 1);
        assert_eq!(m.relay_pushes, 1);
        assert_eq!(m.relay_retries, 1, "attempt 2 counts as a retry");
        assert_eq!(m.mm_decisions, 1);
        assert_eq!(m.faults_injected, 2, "data-plane faults count too");
        assert!((m.reject_ratio() - 2.0 / 3.0).abs() < 1e-12);
        // Latencies come from the cost model: one copying put (6 µs), two
        // rejected puts (2 µs).
        assert_eq!(m.put_latency.count(), 3);
        assert_eq!(m.put_latency.min(), Some(2_000));
        assert_eq!(m.put_latency.max(), Some(6_000));
    }

    #[test]
    fn filter_parser_rejects_unknown_names() {
        assert_eq!(
            parse_subsystem_filter("tmem,virq").unwrap(),
            vec![Subsystem::Tmem, Subsystem::Virq]
        );
        assert!(parse_subsystem_filter("bogus").is_err());
        assert!(parse_subsystem_filter("").is_err());
    }

    #[test]
    fn parser_reports_schema_drift() {
        assert!(TraceData::parse_jsonl("").is_err());
        assert!(TraceData::parse_jsonl("{\"schema\":\"other\",\"version\":1}").is_err());
        let wrong_version = format!(
            "{{\"schema\":\"smartmem-trace\",\"version\":{},\"scenario\":\"s\",\"policy\":\"p\",\"seed\":0,\"dropped\":0}}\n",
            TRACE_SCHEMA_VERSION + 1
        );
        assert!(TraceData::parse_jsonl(&wrong_version)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn strings_with_escapes_survive() {
        let s = "a \"quoted\" name\\with\nweird\tchars";
        let json = json_string(s);
        let mut p = Parser::new(&json);
        assert_eq!(p.string().unwrap(), s);
    }
}
