//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulator (workload access patterns,
//! dataset synthesis, jitter) draws from a [`SplitMix64`] generator seeded
//! from an experiment-level root seed plus a stable component label. This
//! keeps components statistically independent while making whole-experiment
//! replay bit-exact — the determinism integration test relies on it.
//!
//! `SplitMix64` (Steele, Lea & Flood, OOPSLA'14) is tiny, passes BigCrush
//! when used as a 64-bit stream, and needs no feature flags from the `rand`
//! crate; we only implement [`rand::RngCore`] on top of it so the usual
//! distribution adaptors work.

use rand::{Error, RngCore, SeedableRng};

/// A 64-bit SplitMix generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive a child generator from this experiment seed and a component
    /// label, e.g. `root.derive("vm1/usemem")`. Labels are hashed with FNV-1a
    /// so adding a component never perturbs the streams of existing ones.
    pub fn derive(&self, label: &str) -> SplitMix64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Mix the label hash with the parent state without advancing the
        // parent, so derivation order is irrelevant.
        SplitMix64::new(self.state ^ h.rotate_left(17))
    }

    /// Next 64 bits of the stream.
    ///
    /// Named like (but distinct from) `Iterator::next` on purpose: this is
    /// the conventional name for a raw PRNG step.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift
    /// rejection method to avoid modulo bias.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn derive_is_order_independent_and_label_sensitive() {
        let root = SplitMix64::new(7);
        let mut x1 = root.derive("vm1");
        let mut y1 = root.derive("vm2");
        // Deriving in the opposite order yields the same children.
        let mut y2 = root.derive("vm2");
        let mut x2 = root.derive("vm1");
        assert_eq!(x1.next(), x2.next());
        assert_eq!(y1.next(), y2.next());
        // Distinct labels yield distinct streams.
        assert_ne!(root.derive("vm1").next(), root.derive("vm2").next());
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut rng = SplitMix64::new(123);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval_with_reasonable_mean() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // A second fill from the same state must differ (stream advances).
        let snapshot = buf;
        rng.fill_bytes(&mut buf);
        assert_ne!(snapshot, buf);
    }
}
