//! The latency cost model.
//!
//! The paper measures wall-clock running time on a nested-virtualization
//! testbed (VirtualBox → Xen → Ubuntu guests, spinning disk). We cannot run
//! that stack, so simulated running time is the sum of per-operation costs
//! drawn from this model. Absolute values are order-of-magnitude estimates
//! for the paper's hardware (2.1 GHz Core i7, 5400/7200 rpm HDD behind two
//! virtualization layers); what the reproduction relies on is the *ratio*
//! between a tmem hypercall (~µs) and a disk access (~ms), which is the
//! mechanism behind every result in the paper.
//!
//! All fields are public and the presets are plain constructors, so
//! sensitivity benches can sweep them (see `bench/benches/ablation_disk.rs`).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Latency parameters for every simulated memory-system operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of the guest touching one *resident* page (amortized compute on
    /// the page plus TLB/cache effects).
    pub ram_page_touch: SimDuration,
    /// Fixed overhead of taking a page fault into the guest kernel
    /// (trap, PFRA bookkeeping), excluding any backing-store access.
    pub page_fault_overhead: SimDuration,
    /// One tmem hypercall that copies a page (put or successful get):
    /// world switch plus a 4 KiB copy.
    pub tmem_hypercall: SimDuration,
    /// A tmem hypercall that does *not* copy (failed put, miss get, flush).
    pub tmem_hypercall_nocopy: SimDuration,
    /// Positioning cost of one *random* disk access (seek + rotational
    /// latency + virtualization overhead). Charged per request.
    pub disk_access: SimDuration,
    /// Positioning cost of a *sequential* disk access — the request starts
    /// where the previous stream request ended, so the head barely moves.
    /// Kernel swap read-ahead makes swap-in of linearly-scanned regions
    /// sequential, which is why spinning disks survive streaming workloads.
    pub disk_seq_access: SimDuration,
    /// Per-page transfer time once positioned (4 KiB at the sustained
    /// bandwidth of the virtual disk).
    pub disk_page_transfer: SimDuration,
    /// Zero-fill cost of a never-before-touched anonymous page (minor
    /// fault: allocation + clearing).
    pub zero_fill: SimDuration,
    /// One access to the far-memory tier (store or load of a 4 KiB page
    /// over the host-local far-memory fabric: CXL/NVM-class, not the
    /// cluster network). Sits between a tmem hypercall (~6 µs) and an SSD
    /// access (~120 µs) — far memory is worth spilling to, but not free.
    pub far_access: SimDuration,
}

impl CostModel {
    /// The paper's testbed: spinning disk behind VirtualBox + Xen.
    ///
    /// * tmem hit ≈ 6 µs vs disk access ≈ 5 ms — the three-orders-of-
    ///   magnitude gap that makes tmem worth managing.
    pub fn hdd() -> Self {
        CostModel {
            ram_page_touch: SimDuration::from_nanos(250),
            page_fault_overhead: SimDuration::from_micros(1),
            tmem_hypercall: SimDuration::from_micros(6),
            tmem_hypercall_nocopy: SimDuration::from_micros(2),
            disk_access: SimDuration::from_micros(5_000),
            disk_seq_access: SimDuration::from_micros(500),
            disk_page_transfer: SimDuration::from_micros(40),
            zero_fill: SimDuration::from_nanos(600),
            far_access: SimDuration::from_micros(25),
        }
    }

    /// A SATA-SSD-backed virtual disk: the tmem/disk gap narrows to ~20×.
    /// Used by the disk-sensitivity ablation.
    pub fn ssd() -> Self {
        CostModel {
            disk_access: SimDuration::from_micros(120),
            disk_seq_access: SimDuration::from_micros(60),
            disk_page_transfer: SimDuration::from_micros(8),
            ..Self::hdd()
        }
    }

    /// An NVM-backed swap device in the spirit of Ex-Tmem (Venkatesan et
    /// al.): the gap nearly closes, so policy quality matters much less.
    pub fn nvm() -> Self {
        CostModel {
            disk_access: SimDuration::from_micros(15),
            disk_seq_access: SimDuration::from_micros(10),
            disk_page_transfer: SimDuration::from_micros(1),
            ..Self::hdd()
        }
    }

    /// Full cost of one random disk request moving `pages` pages.
    pub fn disk_request(&self, pages: u64) -> SimDuration {
        SimDuration(self.disk_access.as_nanos() + pages * self.disk_page_transfer.as_nanos())
    }

    /// Full cost of one sequential disk request moving `pages` pages.
    pub fn disk_seq_request(&self, pages: u64) -> SimDuration {
        SimDuration(self.disk_seq_access.as_nanos() + pages * self.disk_page_transfer.as_nanos())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::hdd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_preserves_the_tmem_vs_disk_gap() {
        let c = CostModel::hdd();
        let gap = c.disk_request(1).as_nanos() as f64 / c.tmem_hypercall.as_nanos() as f64;
        assert!(
            gap > 100.0,
            "tmem must be orders of magnitude faster, gap={gap}"
        );
    }

    #[test]
    fn presets_order_by_backing_store_speed() {
        let hdd = CostModel::hdd().disk_request(1);
        let ssd = CostModel::ssd().disk_request(1);
        let nvm = CostModel::nvm().disk_request(1);
        assert!(hdd > ssd && ssd > nvm);
    }

    #[test]
    fn disk_request_scales_with_pages() {
        let c = CostModel::hdd();
        let one = c.disk_request(1);
        let eight = c.disk_request(8);
        assert_eq!(
            eight.as_nanos() - one.as_nanos(),
            7 * c.disk_page_transfer.as_nanos()
        );
    }

    #[test]
    fn sequential_access_is_cheaper_than_random() {
        for c in [CostModel::hdd(), CostModel::ssd(), CostModel::nvm()] {
            assert!(c.disk_seq_request(8) < c.disk_request(8));
        }
    }

    #[test]
    fn default_is_the_paper_testbed() {
        assert_eq!(CostModel::default(), CostModel::hdd());
    }

    #[test]
    fn far_access_sits_between_hypercall_and_ssd() {
        let c = CostModel::hdd();
        assert!(c.far_access > c.tmem_hypercall);
        assert!(c.far_access < CostModel::ssd().disk_access);
    }
}
