//! Property tests pinning the metrics registry against naive reference
//! folds: the online [`Summary`] against two-pass formulas, [`Histogram`]
//! bucketing/percentiles against a sorted vector, and merge associativity
//! for both — the property the experiment grid relies on when folding
//! per-cell trace metrics in arbitrary tree shapes.

use proptest::prelude::*;
use sim_core::metrics::{Histogram, Summary, TimeSeries, HISTOGRAM_BUCKETS};
use sim_core::time::SimTime;

/// Reference two-pass mean/std over a slice.
fn two_pass(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    (mean, var.sqrt())
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Reference histogram bucket index: 0 for zero, else bit length.
fn ref_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Merging two summaries is indistinguishable (up to fp rounding) from
    /// recording the concatenation; count/min/max are bit-exact.
    #[test]
    fn summary_merge_equals_concatenation(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..60),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..60),
    ) {
        let mut merged: Summary = xs.iter().copied().collect();
        let right: Summary = ys.iter().copied().collect();
        merged.merge(&right);

        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let folded: Summary = all.iter().copied().collect();

        prop_assert_eq!(merged.count(), folded.count());
        prop_assert_eq!(merged.min(), folded.min(), "min must be exact");
        prop_assert_eq!(merged.max(), folded.max(), "max must be exact");
        if !all.is_empty() {
            let (mean, std) = two_pass(&all);
            prop_assert!(close(merged.mean(), mean, 1e-9), "{} vs {}", merged.mean(), mean);
            prop_assert!(close(merged.stddev(), std, 1e-6), "{} vs {}", merged.stddev(), std);
        }
    }

    /// Summary merge is associative up to fp rounding — grid folds may
    /// combine cells in any tree shape.
    #[test]
    fn summary_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..40),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..40),
        zs in proptest::collection::vec(-1e3f64..1e3, 1..40),
    ) {
        let s = |v: &[f64]| v.iter().copied().collect::<Summary>();
        let mut left = s(&xs);
        left.merge(&s(&ys));
        left.merge(&s(&zs));
        let mut right_tail = s(&ys);
        right_tail.merge(&s(&zs));
        let mut right = s(&xs);
        right.merge(&right_tail);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!(close(left.mean(), right.mean(), 1e-9));
        prop_assert!(close(left.stddev(), right.stddev(), 1e-6));
    }

    /// Histogram bucket counts, count, sum, min and max match a naive fold,
    /// and the zero/log2 bucketing contract holds for every value.
    #[test]
    fn histogram_matches_reference_fold(
        vs in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut h = Histogram::new();
        let mut ref_buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &v in &vs {
            h.record(v);
            ref_buckets[ref_bucket(v)] += 1;
        }
        prop_assert_eq!(h.buckets(), &ref_buckets[..]);
        prop_assert_eq!(h.count(), vs.len() as u64);
        let sum = vs.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), vs.iter().min().copied());
        prop_assert_eq!(h.max(), vs.iter().max().copied());
    }

    /// Percentile guarantee: at least ceil(p·count) observations are ≤ the
    /// returned bound, the bound never exceeds the observed max, and
    /// percentiles are monotone in p.
    #[test]
    fn histogram_percentile_rank_guarantee(
        vs in proptest::collection::vec(0u64..1_000_000, 1..120),
        p in 0.01f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let bound = h.percentile(p).expect("non-empty");
        let rank = (p * vs.len() as f64).ceil() as usize;
        let at_or_below = vs.iter().filter(|&&v| v <= bound).count();
        prop_assert!(
            at_or_below >= rank.clamp(1, vs.len()),
            "p={p}: only {at_or_below} of {} values <= {bound}, need {rank}",
            vs.len()
        );
        prop_assert!(bound <= h.max().unwrap());
        let p50 = h.percentile(0.5).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        prop_assert!(p50 <= p99, "percentiles must be monotone: {p50} > {p99}");
    }

    /// Histogram merge is exact and associative: bucket-for-bucket equal to
    /// recording the concatenation, in either association order.
    #[test]
    fn histogram_merge_is_exact_and_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..60),
        ys in proptest::collection::vec(any::<u64>(), 0..60),
        zs in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let h = |v: &[u64]| {
            let mut h = Histogram::new();
            for &x in v {
                h.record(x);
            }
            h
        };
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let mut left = h(&xs);
        left.merge(&h(&ys));
        left.merge(&h(&zs));
        let mut right_tail = h(&ys);
        right_tail.merge(&h(&zs));
        let mut right = h(&xs);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right, "associativity must be bit-exact");
        prop_assert_eq!(&left, &h(&all), "merge must equal concatenation");
    }

    /// Time-weighted mean lies within [min, max] of the sampled values and
    /// matches the rectangle-rule reference fold.
    #[test]
    fn time_series_weighted_mean_matches_reference(
        pts in proptest::collection::vec((0u64..1000, 0f64..100.0), 2..50),
    ) {
        let mut sorted = pts.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new();
        for &(t, v) in &sorted {
            ts.push(SimTime(t), v);
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in sorted.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            area += w[0].1 * dt;
            span += dt;
        }
        match ts.time_weighted_mean() {
            Some(m) => {
                prop_assert!(span > 0.0);
                prop_assert!(close(m, area / span, 1e-9));
                let lo = sorted.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
                let hi = ts.max().unwrap();
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "{m} outside [{lo}, {hi}]");
            }
            None => prop_assert!(span == 0.0, "mean may only be absent for zero span"),
        }
    }
}
