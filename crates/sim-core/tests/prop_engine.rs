//! Property tests on the simulation engine primitives.

use proptest::prelude::*;
use sim_core::event::EventQueue;
use sim_core::metrics::{Summary, TimeSeries};
use sim_core::rng::SplitMix64;
use sim_core::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events pop in non-decreasing time order with FIFO tie-break.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), seq);
        }
        let mut popped = Vec::new();
        while let Some((t, seq)) = q.pop() {
            popped.push((t, seq));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// SplitMix64 streams are reproducible and label-derivation is stable.
    #[test]
    fn rng_streams_reproduce(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(seed).derive(&label);
            (0..32).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(seed).derive(&label);
            (0..32).map(|_| r.next()).collect()
        };
        prop_assert_eq!(a, b);
    }

    /// next_below respects its bound for arbitrary bounds.
    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }

    /// Welford summary agrees with the two-pass formulas.
    #[test]
    fn summary_matches_two_pass(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..100),
    ) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.stddev() - var.sqrt()).abs() < 1e-5 * var.sqrt().max(1.0));
    }

    /// TimeSeries::value_at returns the last sample at or before t.
    #[test]
    fn time_series_step_semantics(
        values in proptest::collection::vec(0f64..100.0, 1..50),
        probe in 0u64..200,
    ) {
        let mut ts = TimeSeries::new();
        for (i, &v) in values.iter().enumerate() {
            ts.push(SimTime(i as u64 * 3), v);
        }
        let got = ts.value_at(SimTime(probe));
        let expect = values
            .iter()
            .enumerate().rfind(|(i, _)| (*i as u64 * 3) <= probe)
            .map(|(_, &v)| v);
        prop_assert_eq!(got, expect);
    }
}
