//! Property tests on the guest kernel's paging state machine.
//!
//! Arbitrary touch/free sequences over a small address space, under
//! arbitrary RAM/tmem sizing, must preserve:
//!
//! * content integrity (the fingerprint check inside `touch` panics on any
//!   lost or stale page — surviving the sequence IS the assertion),
//! * frame accounting (resident pages ≤ usable frames),
//! * hypervisor agreement (kernel's view of tmem pages == hypervisor's).

use guest_os::budget::StepBudget;
use guest_os::disk::SharedDisk;
use guest_os::kernel::{GuestConfig, GuestKernel};
use guest_os::machine::Machine;
use proptest::prelude::*;
use sim_core::cost::CostModel;
use sim_core::time::{SimDuration, SimTime};
use tmem::backend::PoolKind;
use tmem::key::VmId;
use tmem::page::Fingerprint;
use xen_sim::hypervisor::Hypervisor;
use xen_sim::vm::VmConfig;

#[derive(Debug, Clone)]
enum Op {
    Touch { page: u8, write: bool },
    FreeAndRealloc,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            8 => (0..48u8, any::<bool>()).prop_map(|(page, write)| Op::Touch { page, write }),
            1 => Just(Op::FreeAndRealloc),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn paging_state_machine_holds_invariants(
        ops in ops(),
        ram_pages in 4u64..24,
        tmem_pages in 0u64..32,
        target in 0u64..32,
    ) {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(tmem_pages, target);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", ram_pages * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages,
            os_reserved_pages: 2,
            readahead_pages: 4,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let usable = ram_pages - 2;

        let mut base = kernel.alloc(48);
        for op in ops {
            let mut budget = StepBudget::new(SimDuration::from_secs(3600));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut budget,
            };
            match op {
                Op::Touch { page, write } => {
                    // Content integrity asserted inside touch().
                    kernel.touch(base.offset(u64::from(page)), write, &mut m);
                }
                Op::FreeAndRealloc => {
                    kernel.free_range(base, 48, &mut m);
                    base = kernel.alloc(48);
                }
            }
            prop_assert!(kernel.resident_pages() <= usable);
            prop_assert!(hyp.tmem_used_by(VmId(1)) <= tmem_pages);
            prop_assert!(hyp.node_info().free_tmem <= tmem_pages);
        }

        // Teardown releases everything everywhere.
        let mut budget = StepBudget::new(SimDuration::from_secs(3600));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut budget,
        };
        kernel.teardown(&mut m);
        prop_assert_eq!(kernel.resident_pages(), 0);
        prop_assert_eq!(hyp.tmem_used_by(VmId(1)), 0);
        prop_assert_eq!(hyp.node_info().free_tmem, tmem_pages);
    }

    /// Values written through PagedVec survive arbitrary interleavings of
    /// pressure (reads return the last write, bit-exact).
    #[test]
    fn paged_vec_is_a_faithful_array(
        writes in proptest::collection::vec((0..32usize, any::<u64>()), 1..100),
        ram_pages in 4u64..16,
        tmem_pages in 0u64..16,
    ) {
        use guest_os::paged::PagedVec;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(tmem_pages, tmem_pages);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", ram_pages * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages,
            os_reserved_pages: 2,
            readahead_pages: 4,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();

        // One element per page to maximize paging churn.
        let mut v: PagedVec<u64> = PagedVec::new(&mut kernel, 32, 4096);
        let mut model = [0u64; 32];
        for (i, val) in writes {
            let mut budget = StepBudget::new(SimDuration::from_secs(3600));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut budget,
            };
            v.set(i, val, &mut kernel, &mut m);
            model[i] = val;
            // Read a pseudo-random other element and check it.
            let j = (i * 7 + 3) % 32;
            prop_assert_eq!(v.get(j, &mut kernel, &mut m), model[j]);
        }
        let mut budget = StepBudget::new(SimDuration::from_secs(3600));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut budget,
        };
        for (i, &expect) in model.iter().enumerate() {
            prop_assert_eq!(v.get(i, &mut kernel, &mut m), expect);
        }
        v.free(&mut kernel, &mut m);
    }
}
