//! Typed arrays routed through the simulated paging layer.
//!
//! Workloads compute *real* results (PageRank iterations, ALS updates,
//! usemem checksums) over [`PagedVec`]s: element data lives in host memory,
//! but every element access first touches the guest virtual page(s) holding
//! that element, driving faults, frontswap puts/gets and disk I/O exactly as
//! the real application would.
//!
//! The `stride` parameter decouples *logical* element size from *memory*
//! footprint: CloudSuite's workloads run on Spark, whose JVM object overhead
//! inflates a logical 8-byte value to tens or hundreds of bytes of heap.
//! Setting `stride` to the paper-observed bytes-per-element reproduces the
//! application's memory footprint without inventing fake elements.

use crate::addr::VirtPage;
use crate::kernel::GuestKernel;
use crate::machine::Machine;
use tmem::page::PAGE_SIZE;

/// A fixed-length typed array backed by simulated guest pages.
#[derive(Debug)]
pub struct PagedVec<T> {
    base: VirtPage,
    stride: usize,
    data: Vec<T>,
    freed: bool,
}

impl<T: Clone + Default> PagedVec<T> {
    /// Allocate `len` elements, each occupying `stride` bytes of guest
    /// address space (`stride >= 1`; elements may straddle page
    /// boundaries). Initializes host data to `T::default()` — the guest
    /// pages themselves stay untouched until accessed.
    pub fn new(kernel: &mut GuestKernel, len: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least one byte");
        let pages = Self::footprint_pages(len, stride);
        let base = kernel.alloc(pages);
        PagedVec {
            base,
            stride,
            data: vec![T::default(); len],
            freed: false,
        }
    }

    /// Pages of guest address space needed for `len` elements of `stride`
    /// bytes.
    pub fn footprint_pages(len: usize, stride: usize) -> u64 {
        ((len as u64) * (stride as u64)).div_ceil(PAGE_SIZE as u64)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Guest pages this vector occupies.
    pub fn pages(&self) -> u64 {
        Self::footprint_pages(self.data.len(), self.stride)
    }

    /// First guest page of element `i`.
    pub fn page_of(&self, i: usize) -> VirtPage {
        self.base
            .offset((i * self.stride) as u64 / PAGE_SIZE as u64)
    }

    /// Read element `i`, touching its page(s).
    pub fn get(&self, i: usize, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> T {
        self.touch_elem(i, false, kernel, m);
        self.data[i].clone()
    }

    /// Write element `i`, touching its page(s) for writing.
    pub fn set(&mut self, i: usize, v: T, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        self.touch_elem(i, true, kernel, m);
        self.data[i] = v;
    }

    /// Read element `i` without simulating the memory access. For
    /// *verification only* (e.g. checking PageRank convergence after the
    /// run); using it inside a workload would hide references from the
    /// simulation.
    pub fn peek(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Release the underlying guest pages. Must be called exactly once
    /// before drop (process exit frees memory through the kernel, which
    /// needs the machine context — Rust's `Drop` cannot carry it).
    pub fn free(mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        kernel.free_range(self.base, self.pages(), m);
        self.freed = true;
    }

    fn touch_elem(&self, i: usize, write: bool, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        assert!(i < self.data.len(), "PagedVec index out of bounds");
        let start = i * self.stride;
        let end = start + self.stride - 1;
        let first = start / PAGE_SIZE;
        let last = end / PAGE_SIZE;
        for p in first..=last {
            kernel.touch(self.base.offset(p as u64), write, m);
        }
    }
}

impl<T> Drop for PagedVec<T> {
    fn drop(&mut self) {
        // Leaking guest pages would silently distort memory pressure, so a
        // vector dropped without `free` is a bug — but only in tests:
        // panicking in drop during unwind would abort, so just debug-log.
        if !self.freed && !std::thread::panicking() {
            debug_assert!(self.freed, "PagedVec dropped without free()");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::StepBudget;
    use crate::disk::SharedDisk;
    use crate::kernel::GuestConfig;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use tmem::key::VmId;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    struct Rig {
        hyp: Hypervisor<Fingerprint>,
        disk: SharedDisk,
        cost: CostModel,
        kernel: GuestKernel,
    }

    fn rig(frames: u64) -> Rig {
        let mut hyp = Hypervisor::new(1000, 1000);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages: frames + 2,
            os_reserved_pages: 2,
            readahead_pages: 4,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        Rig {
            hyp,
            disk: SharedDisk::default(),
            cost: CostModel::hdd(),
            kernel,
        }
    }

    macro_rules! machine {
        ($rig:expr, $budget:expr) => {
            Machine {
                hyp: &mut $rig.hyp,
                disk: &mut $rig.disk,
                cost: &$rig.cost,
                now: SimTime::ZERO,
                budget: $budget,
            }
        };
    }

    #[test]
    fn footprint_rounds_up() {
        assert_eq!(PagedVec::<u64>::footprint_pages(1, 8), 1);
        assert_eq!(PagedVec::<u64>::footprint_pages(512, 8), 1);
        assert_eq!(PagedVec::<u64>::footprint_pages(513, 8), 2);
        assert_eq!(PagedVec::<u64>::footprint_pages(100, 4096), 100);
    }

    #[test]
    fn values_survive_paging_pressure() {
        let mut r = rig(8);
        let mut b = StepBudget::new(SimDuration::from_secs(3600));
        // 32 pages of u64s with one element per page: 4× RAM.
        let mut v: PagedVec<u64> = PagedVec::new(&mut r.kernel, 32, PAGE_SIZE);
        for i in 0..32 {
            let mut m = machine!(r, &mut b);
            v.set(i, i as u64 * 100, &mut r.kernel, &mut m);
        }
        for i in 0..32 {
            let mut m = machine!(r, &mut b);
            assert_eq!(v.get(i, &mut r.kernel, &mut m), i as u64 * 100);
        }
        assert!(r.kernel.stats().evictions_to_tmem > 0, "pressure happened");
        let mut m = machine!(r, &mut b);
        v.free(&mut r.kernel, &mut m);
        assert_eq!(r.hyp.tmem_used_by(VmId(1)), 0);
    }

    #[test]
    fn stride_inflates_footprint() {
        let mut r = rig(64);
        // 100 logical u32s at 256 bytes/element → 7 pages, not 1.
        let v: PagedVec<u32> = PagedVec::new(&mut r.kernel, 100, 256);
        assert_eq!(v.pages(), 7);
        assert_eq!(v.page_of(0), v.page_of(15), "16 elements share a page");
        assert_ne!(v.page_of(0), v.page_of(16));
        let mut b = StepBudget::new(SimDuration::from_secs(3600));
        let mut m = machine!(r, &mut b);
        v.free(&mut r.kernel, &mut m);
    }

    #[test]
    fn straddling_elements_touch_both_pages() {
        let mut r = rig(64);
        // 3000-byte elements: element 1 spans pages 0 and 1.
        let mut v: PagedVec<u8> = PagedVec::new(&mut r.kernel, 4, 3000);
        let mut b = StepBudget::new(SimDuration::from_secs(3600));
        {
            let mut m = machine!(r, &mut b);
            v.set(1, 7, &mut r.kernel, &mut m);
        }
        assert_eq!(r.kernel.stats().minor_faults, 2, "two pages faulted");
        let mut m = machine!(r, &mut b);
        v.free(&mut r.kernel, &mut m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut r = rig(8);
        let v: PagedVec<u64> = PagedVec::new(&mut r.kernel, 4, 8);
        let mut b = StepBudget::new(SimDuration::from_secs(1));
        let mut m = machine!(r, &mut b);
        let _ = v.get(4, &mut r.kernel, &mut m);
    }
}
