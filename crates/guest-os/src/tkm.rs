//! The Tmem Kernel Module (TKM), paper §III-C.
//!
//! Two roles, two types:
//!
//! * [`GuestTkm`] — loaded in every guest: registers the frontswap (or
//!   cleancache) pool with the hypervisor at module init and hands it to the
//!   guest kernel's swap path.
//! * [`Dom0Tkm`] — loaded in the privileged domain: receives the
//!   hypervisor's per-second statistics VIRQ, forwards the snapshot to the
//!   user-space Memory Manager over a netlink-like channel, and forwards
//!   the MM's target allocations back down via the custom `SetTargets`
//!   hypercall. The simulation performs the calls inline, but the relay
//!   keeps full message accounting so tests (and the communication-overhead
//!   ablation) can observe the traffic the paper describes.

use tmem::backend::PoolKind;
use tmem::error::TmemError;
use tmem::key::{PoolId, VmId};
use tmem::page::PagePayload;
use tmem::stats::{MemStats, MmTarget};
use xen_sim::hypervisor::Hypervisor;

/// Guest-side TKM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestTkm {
    vm: VmId,
    pool: PoolId,
    kind: PoolKind,
}

impl GuestTkm {
    /// Module init: create this VM's tmem pool in the hypervisor.
    pub fn init<P: PagePayload>(
        hyp: &mut Hypervisor<P>,
        vm: VmId,
        kind: PoolKind,
    ) -> Result<Self, TmemError> {
        let pool = hyp.new_pool(vm, kind)?;
        Ok(GuestTkm { vm, pool, kind })
    }

    /// The pool this module registered.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// The VM this module runs in.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Pool kind (frontswap = persistent, cleancache = ephemeral).
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Module unload / VM teardown: destroy the pool. Returns pages freed.
    pub fn shutdown<P: PagePayload>(self, hyp: &mut Hypervisor<P>) -> u64 {
        hyp.destroy_pool(self.pool)
    }
}

/// Privileged-domain TKM relay with netlink-style message accounting.
#[derive(Debug, Default)]
pub struct Dom0Tkm {
    latest: Option<MemStats>,
    stats_msgs: u64,
    stats_bytes: u64,
    target_msgs: u64,
    target_entries: u64,
}

impl Dom0Tkm {
    /// A fresh relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// VIRQ handler: accept a statistics snapshot from the hypervisor and
    /// queue it for the user-space MM (netlink send).
    pub fn deliver_stats(&mut self, stats: MemStats) {
        self.stats_msgs += 1;
        // Netlink message payload estimate: header + per-VM records. Used
        // by the communication-overhead ablation.
        self.stats_bytes += 32 + 64 * stats.vms.len() as u64;
        self.latest = Some(stats);
    }

    /// User-space MM reads the queued snapshot (netlink recv). `None` when
    /// no snapshot arrived since the last read.
    pub fn take_stats(&mut self) -> Option<MemStats> {
        self.latest.take()
    }

    /// Forward target allocations from the MM to the hypervisor via the
    /// custom `SetTargets` hypercall.
    pub fn forward_targets<P: PagePayload>(
        &mut self,
        hyp: &mut Hypervisor<P>,
        targets: &[MmTarget],
    ) {
        self.target_msgs += 1;
        self.target_entries += targets.len() as u64;
        hyp.set_targets(targets);
    }

    /// Number of statistics messages relayed to user space.
    pub fn stats_msgs(&self) -> u64 {
        self.stats_msgs
    }

    /// Estimated bytes of statistics traffic relayed.
    pub fn stats_bytes(&self) -> u64 {
        self.stats_bytes
    }

    /// Number of `SetTargets` hypercalls issued on behalf of the MM.
    pub fn target_msgs(&self) -> u64 {
        self.target_msgs
    }

    /// Total target entries forwarded.
    pub fn target_entries(&self) -> u64 {
        self.target_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::page::Fingerprint;
    use xen_sim::vm::VmConfig;

    #[test]
    fn guest_tkm_registers_and_destroys_a_pool() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let tkm = GuestTkm::init(&mut hyp, VmId(1), PoolKind::Persistent).unwrap();
        assert_eq!(tkm.vm(), VmId(1));
        assert_eq!(
            hyp.backend().pool_info(tkm.pool()),
            Some((VmId(1), PoolKind::Persistent))
        );
        assert_eq!(tkm.shutdown(&mut hyp), 0);
        assert_eq!(hyp.backend().pool_count(), 0);
    }

    #[test]
    fn dom0_relay_accounts_traffic() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let snap = hyp.sample(SimTime::from_secs(1));
        relay.deliver_stats(snap);
        assert_eq!(relay.stats_msgs(), 1);
        assert!(relay.stats_bytes() > 0);
        let got = relay.take_stats().expect("snapshot queued");
        assert_eq!(got.vms.len(), 1);
        assert!(relay.take_stats().is_none(), "queue drained");

        relay.forward_targets(
            &mut hyp,
            &[MmTarget {
                vm_id: VmId(1),
                mm_target: 7,
            }],
        );
        assert_eq!(relay.target_msgs(), 1);
        assert_eq!(relay.target_entries(), 1);
        assert_eq!(hyp.target_of(VmId(1)), Some(7));
        assert_eq!(hyp.set_target_calls(), 1);
    }
}
