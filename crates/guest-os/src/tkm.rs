//! The Tmem Kernel Module (TKM), paper §III-C.
//!
//! Two roles, two types:
//!
//! * [`GuestTkm`] — loaded in every guest: registers the frontswap (or
//!   cleancache) pool with the hypervisor at module init and hands it to the
//!   guest kernel's swap path.
//! * [`Dom0Tkm`] — loaded in the privileged domain: receives the
//!   hypervisor's per-second statistics VIRQ, forwards the snapshot to the
//!   user-space Memory Manager over a netlink-like channel, and forwards
//!   the MM's target allocations back down via the custom `SetTargets`
//!   hypercall. The simulation performs the calls inline, but the relay
//!   keeps full message accounting so tests (and the communication-overhead
//!   ablation) can observe the traffic the paper describes.

use sim_core::faults::{FaultInjector, NetlinkFate};
use sim_core::trace::{Payload, PushOutcome, Subsystem, Tracer};
use std::collections::VecDeque;
use tmem::backend::PoolKind;
use tmem::error::TmemError;
use tmem::key::{PoolId, VmId};
use tmem::page::PagePayload;
use tmem::stats::{MmTarget, StatsMsg, TargetMsg};
use xen_sim::hypervisor::Hypervisor;

/// Guest-side TKM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestTkm {
    vm: VmId,
    pool: PoolId,
    kind: PoolKind,
}

impl GuestTkm {
    /// Module init: create this VM's tmem pool in the hypervisor.
    pub fn init<P: PagePayload>(
        hyp: &mut Hypervisor<P>,
        vm: VmId,
        kind: PoolKind,
    ) -> Result<Self, TmemError> {
        let pool = hyp.new_pool(vm, kind)?;
        Ok(GuestTkm { vm, pool, kind })
    }

    /// The pool this module registered.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// The VM this module runs in.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Pool kind (frontswap = persistent, cleancache = ephemeral).
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Module unload / VM teardown: destroy the pool. Returns pages freed.
    pub fn shutdown<P: PagePayload>(self, hyp: &mut Hypervisor<P>) -> u64 {
        hyp.destroy_pool(self.pool)
    }
}

/// Depth of the netlink socket buffer between the relay and the MM. When a
/// burst (duplicates, flushed delays) overruns it, the oldest snapshot is
/// shed — the MM only ever needs recent data.
pub const NETLINK_QUEUE_DEPTH: usize = 2;

/// Total `SetTargets` push attempts (1 initial + retries) before the relay
/// abandons a target vector.
pub const MAX_PUSH_ATTEMPTS: u32 = 4;

/// A target push that failed and is waiting out its retry backoff.
#[derive(Debug, Clone)]
struct PendingPush {
    msg: TargetMsg,
    attempts: u32,
    /// Sampling intervals until the next retry attempt.
    wait: u64,
}

impl PendingPush {
    /// Exponential backoff: 1, 2, 4 intervals after the 1st, 2nd, 3rd
    /// failure.
    fn backoff(attempts: u32) -> u64 {
        1u64 << (attempts.saturating_sub(1).min(8))
    }
}

/// Privileged-domain TKM relay with netlink-style message accounting.
///
/// The stats path is a bounded queue (depth [`NETLINK_QUEUE_DEPTH`]) with a
/// one-slot reorder buffer: a `Reorder` fate holds the message back until
/// the next delivery. The target path retries failed `SetTargets` pushes
/// with exponential backoff ([`MAX_PUSH_ATTEMPTS`] attempts total); a newer
/// target vector supersedes a pending retry, since targets are absolute,
/// not incremental.
#[derive(Debug, Default)]
pub struct Dom0Tkm {
    queue: VecDeque<StatsMsg>,
    held: Option<StatsMsg>,
    pending: Option<PendingPush>,
    stats_msgs: u64,
    stats_bytes: u64,
    stats_shed: u64,
    target_msgs: u64,
    target_entries: u64,
    tracer: Tracer,
}

impl Dom0Tkm {
    /// A fresh relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a flight-recorder handle; the relay then emits structured
    /// events for every stats message and target push attempt.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// VIRQ handler: accept a statistics snapshot from the hypervisor and
    /// queue it for the user-space MM (netlink send), applying the
    /// message's fault fate.
    pub fn deliver_stats(&mut self, msg: StatsMsg, fate: NetlinkFate) {
        self.stats_msgs += 1;
        // Netlink message payload estimate: header + per-VM records. Used
        // by the communication-overhead ablation. Counted even for dropped
        // messages: the send side still pays for them.
        self.stats_bytes += 32 + 64 * msg.stats.vms.len() as u64;
        self.tracer.emit(|| {
            (
                None,
                Subsystem::Relay,
                Payload::NetlinkStats { seq: msg.seq, fate },
            )
        });
        match fate {
            NetlinkFate::Drop => {}
            NetlinkFate::Reorder => {
                // Deliver whatever was held before parking this one.
                if let Some(old) = self.held.replace(msg) {
                    self.enqueue(old);
                }
            }
            NetlinkFate::Deliver => {
                if let Some(old) = self.held.take() {
                    self.enqueue(old);
                }
                self.enqueue(msg);
            }
        }
    }

    /// Deliver one interval's batch of snapshots (a sample channel can
    /// emit up to three when delays flush or duplicates fire), drawing a
    /// netlink fate from the injector *per logical message* — batching is
    /// a delivery optimization, so the fault stream and the resulting
    /// ledger are exactly those of message-at-a-time delivery. Drains
    /// `msgs` so the caller can reuse the buffer.
    pub fn deliver_stats_batch(&mut self, msgs: &mut Vec<StatsMsg>, inj: &mut FaultInjector) {
        for msg in msgs.drain(..) {
            let fate = inj.netlink_fate();
            self.deliver_stats(msg, fate);
        }
    }

    fn enqueue(&mut self, msg: StatsMsg) {
        if self.queue.len() == NETLINK_QUEUE_DEPTH {
            let shed = self.queue.pop_front();
            self.stats_shed += 1;
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Relay,
                    Payload::RelayShed {
                        seq: shed.map(|m| m.seq).unwrap_or(0),
                    },
                )
            });
        }
        self.queue.push_back(msg);
        self.tracer.emit(|| {
            (
                None,
                Subsystem::Relay,
                Payload::RelayEnqueue {
                    seq: self.queue.back().map(|m| m.seq).unwrap_or(0),
                    depth: self.queue.len() as u64,
                },
            )
        });
    }

    /// User-space MM reads the next queued snapshot (netlink recv). `None`
    /// when no snapshot arrived since the last read.
    pub fn take_stats(&mut self) -> Option<StatsMsg> {
        self.queue.pop_front()
    }

    /// Forward target allocations from the MM to the hypervisor via the
    /// custom `SetTargets` hypercall. On an injected failure the push is
    /// parked for retry-with-backoff (see [`Dom0Tkm::tick_retries`]);
    /// a push already pending is superseded. Returns whether the targets
    /// were installed immediately.
    pub fn forward_targets<P: PagePayload>(
        &mut self,
        hyp: &mut Hypervisor<P>,
        inj: &mut FaultInjector,
        seq: u64,
        targets: &[MmTarget],
    ) -> bool {
        self.target_msgs += 1;
        self.target_entries += targets.len() as u64;
        if let Some(old) = self.pending.take() {
            inj.ledger_mut().hypercalls_superseded += 1;
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Relay,
                    Payload::RelayPush {
                        seq: old.msg.seq,
                        attempt: old.attempts,
                        outcome: PushOutcome::Superseded,
                    },
                )
            });
        }
        if inj.hypercall_fails() {
            self.pending = Some(PendingPush {
                msg: TargetMsg {
                    seq,
                    targets: targets.to_vec(),
                },
                attempts: 1,
                wait: PendingPush::backoff(1),
            });
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Relay,
                    Payload::RelayPush {
                        seq,
                        attempt: 1,
                        outcome: PushOutcome::Parked,
                    },
                )
            });
            false
        } else {
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Relay,
                    Payload::RelayPush {
                        seq,
                        attempt: 1,
                        outcome: PushOutcome::Landed,
                    },
                )
            });
            hyp.apply_targets(seq, targets);
            true
        }
    }

    /// Advance the retry clock by one sampling interval and re-attempt a
    /// pending push whose backoff has elapsed. Abandons the push after
    /// [`MAX_PUSH_ATTEMPTS`] total attempts — by then the target vector is
    /// several intervals stale and the hypervisor's own TTL fallback is the
    /// safer authority.
    pub fn tick_retries<P: PagePayload>(
        &mut self,
        hyp: &mut Hypervisor<P>,
        inj: &mut FaultInjector,
    ) {
        let Some(mut p) = self.pending.take() else {
            return;
        };
        p.wait -= 1;
        if p.wait > 0 {
            self.pending = Some(p);
            return;
        }
        inj.ledger_mut().hypercall_retries += 1;
        let attempt = p.attempts + 1;
        if inj.hypercall_fails() {
            p.attempts += 1;
            if p.attempts >= MAX_PUSH_ATTEMPTS {
                inj.ledger_mut().hypercalls_abandoned += 1;
                self.tracer.emit(|| {
                    (
                        None,
                        Subsystem::Relay,
                        Payload::RelayPush {
                            seq: p.msg.seq,
                            attempt,
                            outcome: PushOutcome::Abandoned,
                        },
                    )
                });
            } else {
                p.wait = PendingPush::backoff(p.attempts);
                self.tracer.emit(|| {
                    (
                        None,
                        Subsystem::Relay,
                        Payload::RelayPush {
                            seq: p.msg.seq,
                            attempt,
                            outcome: PushOutcome::Parked,
                        },
                    )
                });
                self.pending = Some(p);
            }
        } else {
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Relay,
                    Payload::RelayPush {
                        seq: p.msg.seq,
                        attempt,
                        outcome: PushOutcome::Landed,
                    },
                )
            });
            hyp.apply_targets(p.msg.seq, &p.msg.targets);
        }
    }

    /// Whether a failed push is still waiting to be retried.
    pub fn has_pending_push(&self) -> bool {
        self.pending.is_some()
    }

    /// Number of statistics messages relayed to user space.
    pub fn stats_msgs(&self) -> u64 {
        self.stats_msgs
    }

    /// Estimated bytes of statistics traffic relayed.
    pub fn stats_bytes(&self) -> u64 {
        self.stats_bytes
    }

    /// Snapshots shed to overflow of the bounded netlink queue.
    pub fn stats_shed(&self) -> u64 {
        self.stats_shed
    }

    /// Number of `SetTargets` hypercalls issued on behalf of the MM.
    pub fn target_msgs(&self) -> u64 {
        self.target_msgs
    }

    /// Total target entries forwarded.
    pub fn target_entries(&self) -> u64 {
        self.target_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::page::Fingerprint;
    use xen_sim::vm::VmConfig;

    #[test]
    fn guest_tkm_registers_and_destroys_a_pool() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let tkm = GuestTkm::init(&mut hyp, VmId(1), PoolKind::Persistent).unwrap();
        assert_eq!(tkm.vm(), VmId(1));
        assert_eq!(
            hyp.backend().pool_info(tkm.pool()),
            Some((VmId(1), PoolKind::Persistent))
        );
        assert_eq!(tkm.shutdown(&mut hyp), 0);
        assert_eq!(hyp.backend().pool_count(), 0);
    }

    #[test]
    fn dom0_relay_accounts_traffic() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let mut inj = FaultInjector::disabled();
        let snap = hyp.sample(SimTime::from_secs(1));
        relay.deliver_stats(snap, NetlinkFate::Deliver);
        assert_eq!(relay.stats_msgs(), 1);
        assert!(relay.stats_bytes() > 0);
        let got = relay.take_stats().expect("snapshot queued");
        assert_eq!(got.stats.vms.len(), 1);
        assert_eq!(got.seq, 1);
        assert!(relay.take_stats().is_none(), "queue drained");

        let ok = relay.forward_targets(
            &mut hyp,
            &mut inj,
            1,
            &[MmTarget {
                vm_id: VmId(1),
                mm_target: 7,
            }],
        );
        assert!(ok);
        assert_eq!(relay.target_msgs(), 1);
        assert_eq!(relay.target_entries(), 1);
        assert_eq!(hyp.target_of(VmId(1)), Some(7));
        assert_eq!(hyp.set_target_calls(), 1);
    }

    #[test]
    fn netlink_drop_and_reorder_fates() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();

        let s1 = hyp.sample(SimTime::from_secs(1));
        let s2 = hyp.sample(SimTime::from_secs(2));
        let s3 = hyp.sample(SimTime::from_secs(3));

        relay.deliver_stats(s1, NetlinkFate::Drop);
        assert!(
            relay.take_stats().is_none(),
            "dropped message never arrives"
        );
        assert_eq!(relay.stats_msgs(), 1, "send side still counted it");

        // Reordered: 2 is parked, 3 arrives first, then 2 flushes behind it.
        relay.deliver_stats(s2, NetlinkFate::Reorder);
        assert!(relay.take_stats().is_none());
        relay.deliver_stats(s3, NetlinkFate::Deliver);
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(2));
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(3));
    }

    #[test]
    fn bounded_queue_sheds_oldest() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        for sec in 1..=4 {
            let s = hyp.sample(SimTime::from_secs(sec));
            relay.deliver_stats(s, NetlinkFate::Deliver);
        }
        assert_eq!(relay.stats_shed(), 2);
        // Only the newest NETLINK_QUEUE_DEPTH survive.
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(3));
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(4));
        assert!(relay.take_stats().is_none());
    }

    #[test]
    fn failed_push_retries_with_backoff_then_lands() {
        use sim_core::faults::FaultProfile;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        // Always fail, so the initial push parks a retry...
        let mut always = FaultInjector::new(
            FaultProfile {
                hypercall_fail: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let targets = [MmTarget {
            vm_id: VmId(1),
            mm_target: 9,
        }];
        let initial = hyp.target_of(VmId(1));
        assert!(!relay.forward_targets(&mut hyp, &mut always, 1, &targets));
        assert!(relay.has_pending_push());
        assert_eq!(hyp.target_of(VmId(1)), initial, "nothing installed yet");
        // ...backoff of 1 interval, then retry under a clean injector lands.
        let mut clean = FaultInjector::disabled();
        relay.tick_retries(&mut hyp, &mut clean);
        assert!(!relay.has_pending_push());
        assert_eq!(hyp.target_of(VmId(1)), Some(9));
        assert_eq!(clean.ledger().hypercall_retries, 1);
    }

    #[test]
    fn push_abandoned_after_retry_budget() {
        use sim_core::faults::FaultProfile;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let mut inj = FaultInjector::new(
            FaultProfile {
                hypercall_fail: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let targets = [MmTarget {
            vm_id: VmId(1),
            mm_target: 9,
        }];
        let initial = hyp.target_of(VmId(1));
        assert!(!relay.forward_targets(&mut hyp, &mut inj, 1, &targets));
        // Backoffs are 1, 2, 4 intervals; drive enough ticks to exhaust the
        // budget of MAX_PUSH_ATTEMPTS total attempts.
        for _ in 0..16 {
            relay.tick_retries(&mut hyp, &mut inj);
        }
        assert!(!relay.has_pending_push(), "push abandoned");
        assert_eq!(inj.ledger().hypercalls_abandoned, 1);
        assert_eq!(
            inj.ledger().hypercall_retries,
            (MAX_PUSH_ATTEMPTS - 1) as u64
        );
        assert_eq!(hyp.target_of(VmId(1)), initial, "never installed");
    }

    #[test]
    fn retry_backoff_fires_at_exactly_ticks_1_3_and_7() {
        // Backoffs of 1, 2 and 4 intervals after the 1st, 2nd and 3rd
        // failure put the retry attempts at ticks 1, 1+2=3 and 3+4=7; every
        // other tick must be a silent wait.
        use sim_core::faults::FaultProfile;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let mut inj = FaultInjector::new(
            FaultProfile {
                hypercall_fail: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let targets = [MmTarget {
            vm_id: VmId(1),
            mm_target: 9,
        }];
        assert!(!relay.forward_targets(&mut hyp, &mut inj, 1, &targets));
        let mut retries_at = Vec::new();
        for tick in 1..=8u64 {
            let before = inj.ledger().hypercall_retries;
            relay.tick_retries(&mut hyp, &mut inj);
            if inj.ledger().hypercall_retries > before {
                retries_at.push(tick);
            }
        }
        assert_eq!(retries_at, vec![1, 3, 7], "1/2/4 backoff schedule");
        assert!(!relay.has_pending_push(), "abandoned on the 4th attempt");
        assert_eq!(inj.ledger().hypercalls_abandoned, 1);
    }

    #[test]
    fn supersede_mid_backoff_restarts_the_retry_schedule() {
        // Two failures park the push mid-way through a 2-interval backoff;
        // a newer vector then supersedes it and gets its own fresh
        // 1-interval backoff rather than inheriting the old clock.
        use sim_core::faults::FaultProfile;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let mut fail = FaultInjector::new(
            FaultProfile {
                hypercall_fail: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let old = [MmTarget {
            vm_id: VmId(1),
            mm_target: 4,
        }];
        assert!(!relay.forward_targets(&mut hyp, &mut fail, 1, &old));
        relay.tick_retries(&mut hyp, &mut fail); // retry at tick 1 fails → wait 2
        assert!(relay.has_pending_push());

        let new = [MmTarget {
            vm_id: VmId(1),
            mm_target: 8,
        }];
        assert!(!relay.forward_targets(&mut hyp, &mut fail, 2, &new));
        assert_eq!(fail.ledger().hypercalls_superseded, 1);

        // One tick suffices for the superseding push to retry (and land).
        let mut clean = FaultInjector::disabled();
        relay.tick_retries(&mut hyp, &mut clean);
        assert!(!relay.has_pending_push());
        assert_eq!(hyp.target_of(VmId(1)), Some(8), "newer vector won");
        assert_eq!(clean.ledger().hypercall_retries, 1);
    }

    #[test]
    fn shed_at_capacity_drops_oldest_first_and_traces_the_order() {
        use sim_core::trace::{Recorder, Tracer};
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let tracer = Tracer::new(Recorder::new(64, None));
        relay.set_tracer(tracer.clone());
        for sec in 1..=4 {
            let s = hyp.sample(SimTime::from_secs(sec));
            relay.deliver_stats(s, NetlinkFate::Deliver);
        }
        let data = tracer.finish().expect("tracer enabled");
        let shed: Vec<u64> = data
            .events
            .iter()
            .filter_map(|e| match e.payload {
                Payload::RelayShed { seq } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(shed, vec![1, 2], "oldest snapshots shed first, in order");
        let depths: Vec<u64> = data
            .events
            .iter()
            .filter_map(|e| match e.payload {
                Payload::RelayEnqueue { depth, .. } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths.len(), 4, "every accepted snapshot enqueues once");
        assert!(
            depths.iter().all(|&d| d <= NETLINK_QUEUE_DEPTH as u64),
            "queue depth never exceeds capacity: {depths:?}"
        );
        assert_eq!(relay.stats_shed(), 2);
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(3));
        assert_eq!(relay.take_stats().map(|m| m.seq), Some(4));
    }

    #[test]
    fn newer_push_supersedes_pending_retry() {
        use sim_core::faults::FaultProfile;
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(10, 10);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let mut relay = Dom0Tkm::new();
        let mut inj = FaultInjector::new(
            FaultProfile {
                hypercall_fail: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let old = [MmTarget {
            vm_id: VmId(1),
            mm_target: 4,
        }];
        assert!(!relay.forward_targets(&mut hyp, &mut inj, 1, &old));
        // A fresh vector arrives before the retry fires; it replaces the
        // stale pending push and (under a clean injector) lands directly.
        let new = [MmTarget {
            vm_id: VmId(1),
            mm_target: 8,
        }];
        let mut clean = FaultInjector::disabled();
        assert!(relay.forward_targets(&mut hyp, &mut clean, 2, &new));
        assert_eq!(clean.ledger().hypercalls_superseded, 1);
        assert!(!relay.has_pending_push());
        assert_eq!(hyp.target_of(VmId(1)), Some(8));
    }
}
