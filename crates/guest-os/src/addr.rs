//! Guest virtual addresses at page granularity.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A guest virtual page number. The guest model works entirely at page
/// granularity: byte offsets exist only inside [`crate::paged::PagedVec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtPage(pub u64);

impl VirtPage {
    /// The page `n` pages after this one.
    pub fn offset(self, n: u64) -> VirtPage {
        VirtPage(self.0 + n)
    }

    /// Half-open page range `[self, self + len)`.
    pub fn range(self, len: u64) -> Range<u64> {
        self.0..self.0 + len
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_and_range() {
        let p = VirtPage(10);
        assert_eq!(p.offset(5), VirtPage(15));
        assert_eq!(p.range(3), 10..13);
        assert_eq!(p.to_string(), "vp0xa");
    }
}
