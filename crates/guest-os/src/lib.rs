#![warn(missing_docs)]

//! Guest operating system model.
//!
//! Each VM in the simulation runs this model of the Linux memory-management
//! datapath that tmem plugs into (paper §II-B, Fig. 1):
//!
//! * a paged anonymous address space with a fixed budget of RAM frames,
//! * a clock (second-chance) page-frame reclaim algorithm — the PFRA,
//! * a swap path where evictions first try **frontswap** (a tmem put
//!   hypercall) and fall back to the virtual disk when the put fails,
//! * a fault path where swapped pages are read back from tmem (get
//!   hypercall) or from disk (with cluster read-ahead, as Linux does),
//! * the **Tmem Kernel Module (TKM)**, the paper's §III-C glue: in guests it
//!   owns the tmem pool and issues the hypercalls; in the privileged domain
//!   it relays statistics snapshots to the user-space Memory Manager and
//!   target allocations back to the hypervisor,
//! * a **cleancache** front-end over ephemeral pools (the second tmem mode,
//!   implemented as the paper describes it even though the evaluation uses
//!   frontswap only),
//! * [`paged::PagedVec`] — a typed array whose element accesses are routed
//!   through the simulated paging layer, so workloads compute real results
//!   while generating faithful page-reference streams.
//!
//! Every operation charges simulated time to a [`budget::StepBudget`] using
//! the experiment's [`sim_core::CostModel`].

pub mod addr;
pub mod budget;
pub mod cleancache;
pub mod disk;
pub mod kernel;
pub mod machine;
pub mod paged;
pub mod tkm;

pub use addr::VirtPage;
pub use budget::StepBudget;
pub use disk::SharedDisk;
pub use kernel::{GuestConfig, GuestKernel, KernelStats};
pub use machine::Machine;
pub use paged::PagedVec;
pub use tkm::{Dom0Tkm, GuestTkm};
