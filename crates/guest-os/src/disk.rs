//! The shared virtual disk.
//!
//! The paper's testbed puts every VM's virtual disk (and swap) on one
//! spinning drive behind two virtualization layers, so VMs that swap to disk
//! contend with each other. The model is a single-server FIFO queue:
//!
//! * **reads** (swap-in) are synchronous: the requester waits until the disk
//!   has drained earlier work and served its request;
//! * **writes** (swap-out) are submitted through a write-back model of the
//!   kernel's swap clustering: they occupy disk time at an amortized
//!   positioning cost (one seek per cluster) and only *throttle* the guest
//!   when the backlog exceeds a threshold, mirroring kswapd's asynchronous
//!   write-back with congestion control.

use serde::{Deserialize, Serialize};
use sim_core::cost::CostModel;
use sim_core::time::{SimDuration, SimTime};

/// Write-back tuning: how many swap-out pages share one positioning cost
/// (Linux's swap cluster) and how much backlog accrues before the guest is
/// throttled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WritebackConfig {
    /// Pages per clustered swap write (Linux default SWAPFILE_CLUSTER-ish).
    pub cluster_pages: u64,
    /// Maximum backlog before a writer blocks until the queue drains back
    /// under the threshold.
    pub max_backlog: SimDuration,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig {
            cluster_pages: 32,
            max_backlog: SimDuration::from_millis(50),
        }
    }
}

/// A single shared disk with a FIFO queue.
#[derive(Debug, Clone)]
pub struct SharedDisk {
    /// Instant at which the disk finishes all currently queued work.
    next_free: SimTime,
    writeback: WritebackConfig,
    reads: u64,
    writes: u64,
    read_wait_total: SimDuration,
    throttle_total: SimDuration,
}

impl SharedDisk {
    /// A fresh, idle disk.
    pub fn new(writeback: WritebackConfig) -> Self {
        SharedDisk {
            next_free: SimTime::ZERO,
            writeback,
            reads: 0,
            writes: 0,
            read_wait_total: SimDuration::ZERO,
            throttle_total: SimDuration::ZERO,
        }
    }

    /// Synchronous read of `pages` pages issued at `now`. Returns the
    /// requester's total wait (queueing + service). `sequential` requests
    /// (stream continuations detected by the guest's fault path) pay the
    /// reduced positioning cost.
    pub fn read(
        &mut self,
        now: SimTime,
        pages: u64,
        sequential: bool,
        cost: &CostModel,
    ) -> SimDuration {
        debug_assert!(pages > 0);
        self.reads += 1;
        let service = if sequential {
            cost.disk_seq_request(pages)
        } else {
            cost.disk_request(pages)
        };
        let start = self.next_free.max(now);
        let completion = start + service;
        self.next_free = completion;
        let wait = completion - now;
        self.read_wait_total += wait;
        wait
    }

    /// Asynchronous clustered write of one page issued at `now`. The disk
    /// absorbs amortized service time; the guest is charged a wait only when
    /// the backlog exceeds the write-back threshold (congestion throttling).
    pub fn write_page(&mut self, now: SimTime, cost: &CostModel) -> SimDuration {
        self.writes += 1;
        // One positioning cost shared by the whole cluster, plus this
        // page's transfer.
        let service = SimDuration::from_nanos(
            cost.disk_access.as_nanos() / self.writeback.cluster_pages
                + cost.disk_page_transfer.as_nanos(),
        );
        let start = self.next_free.max(now);
        self.next_free = start + service;
        let backlog = self.next_free.saturating_since(now);
        if backlog > self.writeback.max_backlog {
            let throttle = backlog.saturating_sub(self.writeback.max_backlog);
            self.throttle_total += throttle;
            throttle
        } else {
            SimDuration::ZERO
        }
    }

    /// Number of read requests served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of page writes absorbed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Sum of all read waits (queueing + service), for reports.
    pub fn read_wait_total(&self) -> SimDuration {
        self.read_wait_total
    }

    /// Sum of all write-throttle stalls, for reports.
    pub fn throttle_total(&self) -> SimDuration {
        self.throttle_total
    }

    /// Instant the disk goes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

impl Default for SharedDisk {
    fn default() -> Self {
        SharedDisk::new(WritebackConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_queue_fifo() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        let w1 = d.read(SimTime::ZERO, 1, false, &cost);
        assert_eq!(w1, cost.disk_request(1));
        // Second read at t=0 waits behind the first.
        let w2 = d.read(SimTime::ZERO, 1, false, &cost);
        assert_eq!(w2.as_nanos(), 2 * cost.disk_request(1).as_nanos());
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn idle_disk_serves_immediately() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        d.read(SimTime::ZERO, 1, false, &cost);
        // Request long after the queue drained: no queueing delay.
        let later = SimTime::from_secs(10);
        let w = d.read(later, 1, false, &cost);
        assert_eq!(w, cost.disk_request(1));
    }

    #[test]
    fn sequential_reads_pay_reduced_positioning() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        let w = d.read(SimTime::ZERO, 8, true, &cost);
        assert_eq!(w, cost.disk_seq_request(8));
        assert!(w < cost.disk_request(8));
    }

    #[test]
    fn writes_are_cheap_until_backlog() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        // A handful of writes on an idle disk: no throttling.
        for _ in 0..10 {
            assert_eq!(d.write_page(SimTime::ZERO, &cost), SimDuration::ZERO);
        }
        assert_eq!(d.writes(), 10);
        // Flood: eventually the backlog exceeds 50 ms and stalls appear.
        let mut stalled = SimDuration::ZERO;
        for _ in 0..1000 {
            stalled += d.write_page(SimTime::ZERO, &cost);
        }
        assert!(stalled > SimDuration::ZERO, "sustained flood must throttle");
        assert_eq!(d.throttle_total(), stalled);
    }

    #[test]
    fn writes_delay_subsequent_reads() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        for _ in 0..100 {
            d.write_page(SimTime::ZERO, &cost);
        }
        let w = d.read(SimTime::ZERO, 1, false, &cost);
        assert!(
            w > cost.disk_request(1),
            "read must queue behind write-back traffic"
        );
    }

    #[test]
    fn amortized_write_cost_is_less_than_a_full_access() {
        let cost = CostModel::hdd();
        let mut d = SharedDisk::default();
        d.write_page(SimTime::ZERO, &cost);
        let busy = d.next_free().saturating_since(SimTime::ZERO);
        assert!(busy < cost.disk_request(1));
    }
}
