//! The guest kernel: paged address space, PFRA and the swap datapath.
//!
//! This is the guest half of the paper's Fig. 1. The workload touches
//! virtual pages; on memory pressure the clock-hand PFRA picks victims and
//! the swap-out path tries frontswap (a tmem put hypercall) before falling
//! back to the shared virtual disk. Page faults on swapped pages go the
//! reverse way: tmem get (exclusive — the hypervisor frees the frame) or a
//! disk read with cluster read-ahead.
//!
//! ### Page content integrity
//!
//! Pages carry a version that bumps on the first write after every load;
//! the fingerprint `(vm, page, version)` travels through tmem and is
//! verified on every get, so a lost, stale or cross-wired page panics the
//! simulation instead of silently corrupting results.
//!
//! With data-plane fault injection enabled the hypervisor may legitimately
//! answer a frontswap get with *corrupt* (integrity check failed; the page
//! is held in place) or *miss* (the scrubber quarantined the page's
//! object). Neither ever surfaces wrong bytes to the guest: corrupt gets
//! are retried a bounded [`TMEM_GET_RETRIES`] times, then the poisoned
//! copy is flushed and the page is requeued as freshly zero-filled (the
//! application re-create path); misses requeue immediately. The
//! fingerprint assertion above still guards every page that *does* round
//! trip.

use crate::addr::VirtPage;
use crate::machine::Machine;
use serde::{Deserialize, Serialize};
use tmem::error::ReturnCode;
use tmem::key::{ObjectId, PageIndex, PoolId, VmId};
use tmem::page::Fingerprint;
use xen_sim::GetOutcome;

/// Where a virtual page's contents currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageLoc {
    /// Never touched: no frame, zero-fill on first access.
    Untouched,
    /// In a RAM frame.
    Resident(u32),
    /// In the hypervisor's tmem pool (frontswap put succeeded).
    InTmem,
    /// On the swap device.
    OnDisk,
    /// Freed by the owning process; touching it again is a bug.
    Freed,
}

/// Sentinel for "no swap slot assigned".
const NO_SLOT: u64 = u64::MAX;

/// How many times a corrupt frontswap get is retried before the guest
/// gives up, flushes the poisoned copy and zero-refills the page. Bounded
/// so a stuck-corrupt page costs O(1) hypercalls per fault, never a loop.
pub const TMEM_GET_RETRIES: u32 = 2;

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    loc: PageLoc,
    /// Content version; bumps on the first write after each load so stale
    /// backing copies are detectable.
    version: u32,
    /// Swap slot holding this page's disk copy (`NO_SLOT` when none).
    /// Slots are allocated in eviction order, as Linux's swap allocator
    /// does, so temporally-clustered evictions are physically adjacent.
    slot: u64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    vpage: u64,
    /// Second-chance bit for the clock PFRA.
    referenced: bool,
    /// Written since load: eviction must write the page out.
    dirty: bool,
    /// A valid copy still exists on the swap device (populated by disk
    /// swap-in; cleared on write). Lets clean evictions drop the page free.
    disk_copy: bool,
}

/// Static configuration of one guest kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestConfig {
    /// The VM this kernel runs in.
    pub vm: VmId,
    /// Guest RAM in pages.
    pub ram_pages: u64,
    /// Pages reserved for the kernel, page cache floor and daemons —
    /// unavailable to the workload.
    pub os_reserved_pages: u64,
    /// Swap-in read-ahead window (pages), Linux's page-cluster behaviour.
    pub readahead_pages: u32,
    /// Whether frontswap (tmem) is enabled; `false` is the paper's
    /// `no-tmem` baseline.
    pub frontswap_enabled: bool,
}

impl GuestConfig {
    /// Frames usable by workload pages.
    pub fn usable_frames(&self) -> u64 {
        assert!(
            self.ram_pages > self.os_reserved_pages,
            "OS reservation exceeds RAM"
        );
        self.ram_pages - self.os_reserved_pages
    }
}

/// Per-kernel event counters (complementing the hypervisor's Table I view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// First-touch (zero-fill) faults.
    pub minor_faults: u64,
    /// Faults satisfied from tmem.
    pub tmem_faults: u64,
    /// Faults satisfied from disk.
    pub disk_faults: u64,
    /// Pages brought in by read-ahead alongside a disk fault.
    pub readahead_pages: u64,
    /// Evictions stored to tmem (successful frontswap puts).
    pub evictions_to_tmem: u64,
    /// Evictions written to the swap device (failed or disabled frontswap).
    pub evictions_to_disk: u64,
    /// Clean evictions dropped for free (valid disk copy existed).
    pub evictions_free: u64,
    /// Frontswap puts that failed (`E_TMEM`).
    pub failed_puts: u64,
    /// tmem flushes issued while freeing memory.
    pub tmem_flushes: u64,
    /// Pages the hypervisor slow-reclaimed from tmem to this VM's swap.
    pub reclaimed_pages: u64,
    /// Frontswap gets that failed the hypervisor's integrity check
    /// (recovered by flush + zero-refill after bounded retries).
    pub tmem_corrupt_faults: u64,
    /// Retry hypercalls issued against corrupt tmem pages (bounded by
    /// [`TMEM_GET_RETRIES`] per corrupt fault).
    pub tmem_corrupt_retries: u64,
    /// tmem-resident pages that came back as misses (object quarantined by
    /// the scrubber); recovered by zero-refill.
    pub tmem_lost_pages: u64,
}

/// One VM's guest kernel.
#[derive(Debug)]
pub struct GuestKernel {
    config: GuestConfig,
    /// Frontswap pool, once the TKM registered one.
    pool: Option<PoolId>,
    pages: Vec<PageMeta>,
    frames: Vec<Option<Frame>>,
    free_frames: Vec<u32>,
    clock_hand: usize,
    /// Swap-slot allocator cursor (monotonic; slots model eviction-order
    /// physical adjacency, not reuse).
    next_slot: u64,
    /// Live slots → virtual page, ordered, for slot-window read-ahead.
    slot_to_page: std::collections::BTreeMap<u64, u64>,
    /// One past the last slot read from disk — a fault starting here is a
    /// sequential stream continuation.
    next_seq_slot: u64,
    /// One past the last virtual page read from disk (VMA stream).
    next_seq_vpage: u64,
    stats: KernelStats,
}

impl GuestKernel {
    /// Boot a kernel with the given configuration.
    pub fn new(config: GuestConfig) -> Self {
        let n_frames = usize::try_from(config.usable_frames()).expect("frame count fits usize");
        GuestKernel {
            config,
            pool: None,
            pages: Vec::new(),
            frames: vec![None; n_frames],
            free_frames: (0..n_frames as u32).rev().collect(),
            clock_hand: 0,
            next_slot: 0,
            slot_to_page: std::collections::BTreeMap::new(),
            next_seq_slot: u64::MAX,
            next_seq_vpage: u64::MAX,
            stats: KernelStats::default(),
        }
    }

    /// Attach the frontswap pool created by the guest TKM.
    pub fn attach_frontswap(&mut self, pool: PoolId) {
        assert!(
            self.config.frontswap_enabled,
            "attaching frontswap to a no-tmem guest"
        );
        self.pool = Some(pool);
    }

    /// This kernel's configuration.
    pub fn config(&self) -> &GuestConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        (self.frames.len() - self.free_frames.len()) as u64
    }

    /// Balloon the guest's usable RAM to `new_frames` frames (memory
    /// ballooning integration — the paper's future work of combining tmem
    /// with other memory mechanisms). Growing adds free frames (the
    /// balloon deflates); shrinking evicts whatever occupies the
    /// confiscated frames through the normal swap path (frontswap first,
    /// then disk), charging the machine budget like any other reclaim.
    pub fn balloon_resize(&mut self, new_frames: u64, m: &mut Machine<'_>) {
        let n = self.frames.len();
        let new_n = usize::try_from(new_frames).expect("frame count fits usize");
        assert!(new_n >= 1, "a guest needs at least one frame");
        if new_n >= n {
            for idx in n..new_n {
                self.frames.push(None);
                self.free_frames.push(idx as u32);
            }
            return;
        }
        // Inflate: push out everything living in the confiscated frames.
        for idx in new_n..n {
            if let Some(frame) = self.frames[idx] {
                self.swap_out(idx as u32, frame, m);
            }
        }
        self.frames.truncate(new_n);
        self.free_frames.retain(|&f| (f as usize) < new_n);
        if self.clock_hand >= new_n {
            self.clock_hand = 0;
        }
    }

    /// Current usable frames (reflects ballooning).
    pub fn current_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Allocate `len` pages of anonymous memory (lazy, like `mmap`):
    /// returns the base page; nothing is faulted in yet.
    pub fn alloc(&mut self, len: u64) -> VirtPage {
        let base = self.pages.len() as u64;
        self.pages.extend(std::iter::repeat_n(
            PageMeta {
                loc: PageLoc::Untouched,
                version: 0,
                slot: NO_SLOT,
            },
            usize::try_from(len).expect("allocation fits usize"),
        ));
        VirtPage(base)
    }

    /// Touch one page (read or write), driving the full fault/swap
    /// datapath and charging the step budget.
    pub fn touch(&mut self, page: VirtPage, write: bool, m: &mut Machine<'_>) {
        let vp = usize::try_from(page.0).expect("page index fits usize");
        assert!(vp < self.pages.len(), "touch of unallocated page {page}");
        match self.pages[vp].loc {
            PageLoc::Resident(f) => {
                m.budget.charge_compute(m.cost.ram_page_touch);
                let frame = self.frames[f as usize]
                    .as_mut()
                    .expect("resident page must have a live frame");
                frame.referenced = true;
                if write && !frame.dirty {
                    frame.dirty = true;
                    frame.disk_copy = false;
                    self.pages[vp].version = self.pages[vp].version.wrapping_add(1);
                    self.release_slot(vp);
                }
            }
            PageLoc::Untouched => {
                m.budget
                    .charge_compute(m.cost.page_fault_overhead + m.cost.zero_fill);
                m.budget.faults += 1;
                self.stats.minor_faults += 1;
                let f = self.obtain_frame(m);
                self.install(vp, f, write, false);
                if write {
                    self.pages[vp].version = self.pages[vp].version.wrapping_add(1);
                }
            }
            PageLoc::InTmem => {
                m.budget
                    .charge_compute(m.cost.page_fault_overhead + m.cost.tmem_hypercall);
                m.budget.faults += 1;
                let pool = self.pool.expect("page in tmem without a pool");
                let (obj, idx) = self.key_of(vp as u64);
                let outcome = m.hyp.get_checked(pool, obj, idx);
                if matches!(outcome, GetOutcome::FarHit(_)) {
                    // A far hit pays the fabric access on top of the
                    // hypercall charged above.
                    m.budget.charge_compute(m.cost.far_access);
                }
                match outcome {
                    GetOutcome::Hit(got) | GetOutcome::FarHit(got) => {
                        self.stats.tmem_faults += 1;
                        let expect = self.fingerprint(vp as u64);
                        assert_eq!(got, expect, "tmem returned stale/corrupt data for {page}");
                        let f = self.obtain_frame(m);
                        // Exclusive get: the tmem copy is gone; no disk
                        // copy either.
                        self.install(vp, f, write, false);
                        if write {
                            self.pages[vp].version = self.pages[vp].version.wrapping_add(1);
                            let frame = self.frames[f as usize].as_mut().expect("just installed");
                            frame.dirty = true;
                        }
                    }
                    GetOutcome::Corrupt => self.recover_corrupt_tmem_page(vp, write, m),
                    GetOutcome::Miss => {
                        // The hypervisor no longer has the page — its
                        // object was quarantined by the pool scrubber. The
                        // data is unrecoverable but the loss is *detected*:
                        // requeue the page as freshly zero-filled.
                        self.stats.tmem_lost_pages += 1;
                        self.refill_lost_page(vp, m);
                    }
                }
            }
            PageLoc::OnDisk => {
                m.budget.charge_compute(m.cost.page_fault_overhead);
                m.budget.faults += 1;
                self.stats.disk_faults += 1;
                // Read-ahead combines Linux's two swap-in heuristics:
                //
                // * VMA read-ahead — virtually-consecutive on-disk pages
                //   (sequential re-scans of big arrays),
                // * physical cluster read-ahead — pages whose swap slots
                //   follow the faulted one; slots were allocated in
                //   eviction order, so this batches pages pushed out
                //   together whatever their virtual addresses.
                let slot = self.pages[vp].slot;
                debug_assert_ne!(slot, NO_SLOT, "on-disk page without a slot");
                let window = u64::from(self.config.readahead_pages);
                let mut batch: Vec<u64> = vec![vp as u64];
                let mut next = vp as u64 + 1;
                while (batch.len() as u64) < window
                    && (next as usize) < self.pages.len()
                    && self.pages[next as usize].loc == PageLoc::OnDisk
                {
                    batch.push(next);
                    next += 1;
                }
                let mut last_slot = slot;
                if (batch.len() as u64) < window {
                    let room = window - batch.len() as u64;
                    for (&s, &bvp) in self.slot_to_page.range(slot + 1..slot + room) {
                        if self.pages[bvp as usize].loc == PageLoc::OnDisk && !batch.contains(&bvp)
                        {
                            batch.push(bvp);
                            last_slot = s;
                        }
                    }
                }
                // Stream detection: the request continues either the
                // virtual or the physical stream → sequential positioning.
                let sequential = slot == self.next_seq_slot || vp as u64 == self.next_seq_vpage;
                self.next_seq_slot = last_slot + 1;
                self.next_seq_vpage = next;
                let wait = m
                    .disk
                    .read(m.approx_now(), batch.len() as u64, sequential, m.cost);
                m.budget.charge_io(wait);
                self.stats.readahead_pages += batch.len() as u64 - 1;
                for (i, &bvp) in batch.iter().enumerate() {
                    if i > 0 && self.pages[bvp as usize].loc != PageLoc::OnDisk {
                        // A read-ahead neighbour was evicted by an earlier
                        // install in this same batch; skip it.
                        continue;
                    }
                    let f = self.obtain_frame(m);
                    let is_faulted_page = i == 0;
                    // Disk swap-in leaves the swap copy valid (swap cache),
                    // so the slot mapping is retained.
                    self.install(bvp as usize, f, is_faulted_page && write, true);
                    if !is_faulted_page {
                        // Read-ahead pages start on the inactive list: if
                        // the guess was wrong they are the first evicted
                        // and never displace the working set.
                        self.frames[f as usize]
                            .as_mut()
                            .expect("just installed")
                            .referenced = false;
                    }
                    if is_faulted_page && write {
                        self.pages[bvp as usize].version =
                            self.pages[bvp as usize].version.wrapping_add(1);
                        let frame = self.frames[f as usize].as_mut().expect("just installed");
                        frame.disk_copy = false;
                        self.release_slot(bvp as usize);
                    }
                }
            }
            PageLoc::Freed => panic!("touch of freed page {page}"),
        }
    }

    /// Free `[base, base+len)` (process exit / `munmap`): releases frames,
    /// flushes tmem copies (frontswap invalidation on swap-slot free) and
    /// drops disk copies.
    pub fn free_range(&mut self, base: VirtPage, len: u64, m: &mut Machine<'_>) {
        for vp in base.range(len) {
            let vp = usize::try_from(vp).expect("page index fits usize");
            assert!(vp < self.pages.len(), "free of unallocated page");
            match self.pages[vp].loc {
                PageLoc::Resident(f) => {
                    self.frames[f as usize] = None;
                    self.free_frames.push(f);
                }
                PageLoc::InTmem => {
                    let pool = self.pool.expect("page in tmem without a pool");
                    let (obj, idx) = self.key_of(vp as u64);
                    m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
                    let rc = m.hyp.flush_page(pool, obj, idx);
                    debug_assert_eq!(rc, ReturnCode::Success);
                    self.stats.tmem_flushes += 1;
                }
                PageLoc::OnDisk | PageLoc::Untouched => {}
                PageLoc::Freed => panic!("double free of page vp{vp:#x}"),
            }
            self.release_slot(vp);
            self.pages[vp] = PageMeta {
                loc: PageLoc::Freed,
                version: 0,
                slot: NO_SLOT,
            };
        }
    }

    /// Tear down the whole guest at VM shutdown: frees every allocation.
    pub fn teardown(&mut self, m: &mut Machine<'_>) {
        let total = self.pages.len() as u64;
        // Walk pages directly (free_range asserts on double-free).
        for vp in 0..total {
            if self.pages[vp as usize].loc != PageLoc::Freed {
                self.free_range(VirtPage(vp), 1, m);
            }
        }
    }

    /// The hypervisor slow-reclaimed these tmem pages and wrote them to
    /// this VM's swap device: relocate them `InTmem` → `OnDisk` with fresh
    /// slots. The disk traffic is the hypervisor's (async write-back), so
    /// nothing is charged to the guest; the caller charges the shared disk.
    pub fn tmem_reclaimed(&mut self, keys: &[(u64, u32)]) {
        for &(obj, idx) in keys {
            let vp = ((obj << 20) | u64::from(idx)) as usize;
            assert!(vp < self.pages.len(), "reclaimed key out of range");
            assert_eq!(
                self.pages[vp].loc,
                PageLoc::InTmem,
                "hypervisor reclaimed a page the guest does not have in tmem"
            );
            let slot = self.next_slot;
            self.next_slot += 1;
            self.pages[vp].slot = slot;
            self.slot_to_page.insert(slot, vp as u64);
            self.pages[vp].loc = PageLoc::OnDisk;
            self.stats.reclaimed_pages += 1;
        }
    }

    /// Bounded recovery for a frontswap get that failed the hypervisor's
    /// integrity check. Persistent corrupt pages stay in place hypervisor
    /// side, so the guest retries the hypercall [`TMEM_GET_RETRIES`] times
    /// (a real driver would re-issue on `-EIO`), then gives up: flush the
    /// poisoned copy, report the fault recovered, and requeue the page as
    /// freshly zero-filled. The guest never sees wrong bytes.
    #[cold]
    fn recover_corrupt_tmem_page(&mut self, vp: usize, write: bool, m: &mut Machine<'_>) {
        self.stats.tmem_corrupt_faults += 1;
        let pool = self.pool.expect("page in tmem without a pool");
        let (obj, idx) = self.key_of(vp as u64);
        for _ in 0..TMEM_GET_RETRIES {
            m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
            self.stats.tmem_corrupt_retries += 1;
            match m.hyp.get_checked(pool, obj, idx) {
                GetOutcome::Hit(got) | GetOutcome::FarHit(got) => {
                    // The page healed between attempts — unreachable with
                    // the current in-place injector, but the retry loop
                    // takes yes for an answer.
                    let expect = self.fingerprint(vp as u64);
                    assert_eq!(got, expect, "tmem returned stale data on retry");
                    self.stats.tmem_faults += 1;
                    let f = self.obtain_frame(m);
                    self.install(vp, f, write, false);
                    if write {
                        self.pages[vp].version = self.pages[vp].version.wrapping_add(1);
                        let frame = self.frames[f as usize].as_mut().expect("just installed");
                        frame.dirty = true;
                    }
                    return;
                }
                GetOutcome::Corrupt => continue,
                GetOutcome::Miss => break, // page evaporated mid-recovery
            }
        }
        // Retries exhausted: drop the poisoned copy and start over.
        m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
        let _ = m.hyp.flush_page(pool, obj, idx);
        self.stats.tmem_flushes += 1;
        m.hyp.note_corrupt_recovered(self.config.vm);
        self.refill_lost_page(vp, m);
    }

    /// Requeue a page whose backing copy is unrecoverable (corrupt past
    /// the retry bound, or quarantined): zero-fill a fresh frame, mark it
    /// dirty so eviction writes the regenerated content out, and bump the
    /// version so any stale copy elsewhere stays detectable.
    fn refill_lost_page(&mut self, vp: usize, m: &mut Machine<'_>) {
        m.budget.charge_compute(m.cost.zero_fill);
        let f = self.obtain_frame(m);
        self.install(vp, f, true, false);
        self.pages[vp].version = self.pages[vp].version.wrapping_add(1);
    }

    /// Drop a page's swap-slot mapping (write invalidation, free, or
    /// overwrite by a new write-out).
    fn release_slot(&mut self, vp: usize) {
        let slot = self.pages[vp].slot;
        if slot != NO_SLOT {
            self.slot_to_page.remove(&slot);
            self.pages[vp].slot = NO_SLOT;
        }
    }

    fn fingerprint(&self, vp: u64) -> Fingerprint {
        let gid = (u64::from(self.config.vm.0) << 40) | vp;
        Fingerprint::of(gid, u64::from(self.pages[vp as usize].version))
    }

    /// Map a virtual page to its tmem key parts. Frontswap derives the
    /// object id and page index from the page's swap address; grouping 2^20
    /// pages per object keeps objects bounded.
    fn key_of(&self, vp: u64) -> (ObjectId, PageIndex) {
        (ObjectId(vp >> 20), (vp & 0xF_FFFF) as PageIndex)
    }

    fn install(&mut self, vp: usize, f: u32, dirty: bool, disk_copy: bool) {
        self.frames[f as usize] = Some(Frame {
            vpage: vp as u64,
            referenced: true,
            dirty,
            disk_copy,
        });
        self.pages[vp].loc = PageLoc::Resident(f);
    }

    /// Get a free frame, evicting a victim if necessary.
    fn obtain_frame(&mut self, m: &mut Machine<'_>) -> u32 {
        if let Some(f) = self.free_frames.pop() {
            return f;
        }
        self.evict_one(m)
    }

    /// Clock (second-chance) PFRA: sweep frames, clearing referenced bits,
    /// until an unreferenced victim is found; then push it out through the
    /// swap path and return its frame.
    fn evict_one(&mut self, m: &mut Machine<'_>) -> u32 {
        let n = self.frames.len();
        assert!(n > 0, "cannot evict from a zero-frame guest");
        // At most two full sweeps: the first clears every referenced bit,
        // the second must find a victim.
        for _ in 0..=2 * n {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            let Some(frame) = self.frames[idx].as_mut() else {
                continue;
            };
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let victim = *frame;
            self.swap_out(idx as u32, victim, m);
            return idx as u32;
        }
        unreachable!("clock sweep failed to find a victim");
    }

    /// Push one victim page out: free-drop if a clean disk copy exists,
    /// otherwise frontswap put → disk write fallback (paper Fig. 1 path).
    fn swap_out(&mut self, f: u32, victim: Frame, m: &mut Machine<'_>) {
        let vp = victim.vpage as usize;
        debug_assert_eq!(self.pages[vp].loc, PageLoc::Resident(f));
        if !victim.dirty && victim.disk_copy {
            // Clean page with a valid swap copy: drop for free (the slot
            // mapping was retained by the swap cache).
            debug_assert_ne!(self.pages[vp].slot, NO_SLOT);
            self.stats.evictions_free += 1;
            self.pages[vp].loc = PageLoc::OnDisk;
            self.frames[f as usize] = None;
            return;
        }
        if self.config.frontswap_enabled {
            let pool = self.pool.expect("frontswap enabled but no pool attached");
            let (obj, idx) = self.key_of(vp as u64);
            let payload = self.fingerprint(vp as u64);
            match m.hyp.put(pool, obj, idx, payload) {
                Ok(outcome) => {
                    debug_assert!(
                        !matches!(outcome, tmem::backend::PutOutcome::Replaced),
                        "frontswap should never overwrite a live key"
                    );
                    if matches!(outcome, tmem::backend::PutOutcome::StoredFar) {
                        // Spilled to the far tier: the page crossed the
                        // fabric instead of being a local copy.
                        m.budget.charge_compute(m.cost.far_access);
                    } else {
                        m.budget.charge_compute(m.cost.tmem_hypercall);
                    }
                    self.stats.evictions_to_tmem += 1;
                    self.pages[vp].loc = PageLoc::InTmem;
                    self.frames[f as usize] = None;
                    return;
                }
                Err(_) => {
                    // E_TMEM: no copy happened — cheap hypercall — and the
                    // page falls through to the disk path.
                    m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
                    self.stats.failed_puts += 1;
                }
            }
        }
        // Clustered asynchronous write-back to a freshly allocated slot;
        // throttle only on backlog.
        let throttle = m.disk.write_page(m.approx_now(), m.cost);
        if throttle > sim_core::time::SimDuration::ZERO {
            m.budget.charge_io(throttle);
        }
        self.release_slot(vp);
        let slot = self.next_slot;
        self.next_slot += 1;
        self.pages[vp].slot = slot;
        self.slot_to_page.insert(slot, vp as u64);
        self.stats.evictions_to_disk += 1;
        self.pages[vp].loc = PageLoc::OnDisk;
        self.frames[f as usize] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::StepBudget;
    use crate::disk::SharedDisk;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    struct Rig {
        hyp: Hypervisor<Fingerprint>,
        disk: SharedDisk,
        cost: CostModel,
    }

    impl Rig {
        fn new(tmem_pages: u64, target: u64) -> (Rig, GuestKernel) {
            let mut hyp = Hypervisor::new(tmem_pages, target);
            hyp.register_vm(VmConfig::new(VmId(1), "VM1", 64 * 4096, 1));
            let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
            let mut kernel = GuestKernel::new(GuestConfig {
                vm: VmId(1),
                ram_pages: 12,
                os_reserved_pages: 4,
                readahead_pages: 4,
                frontswap_enabled: true,
            });
            kernel.attach_frontswap(pool);
            (
                Rig {
                    hyp,
                    disk: SharedDisk::default(),
                    cost: CostModel::hdd(),
                },
                kernel,
            )
        }

        fn step<'a>(&'a mut self, budget: &'a mut StepBudget) -> Machine<'a> {
            Machine {
                hyp: &mut self.hyp,
                disk: &mut self.disk,
                cost: &self.cost,
                now: SimTime::ZERO,
                budget,
            }
        }
    }

    fn big_budget() -> StepBudget {
        StepBudget::new(SimDuration::from_secs(3600))
    }

    #[test]
    fn first_touch_is_a_minor_fault() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let base = k.alloc(4);
        let mut b = big_budget();
        k.touch(base, true, &mut rig.step(&mut b));
        assert_eq!(k.stats().minor_faults, 1);
        assert_eq!(k.resident_pages(), 1);
        // Second touch is a plain resident hit.
        k.touch(base, false, &mut rig.step(&mut b));
        assert_eq!(k.stats().minor_faults, 1);
    }

    #[test]
    fn pressure_spills_to_tmem_and_faults_back() {
        let (mut rig, mut k) = Rig::new(100, 100);
        // 8 usable frames; touch 12 pages → 4 evictions, all to tmem.
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert_eq!(k.stats().evictions_to_tmem, 4);
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 4);
        // Touch an evicted page: tmem fault, exclusive get frees the frame.
        k.touch(base, true, &mut rig.step(&mut b));
        assert_eq!(k.stats().tmem_faults, 1);
        assert_eq!(
            rig.hyp.tmem_used_by(VmId(1)),
            4,
            "get freed one, evict stored one"
        );
    }

    #[test]
    fn zero_target_forces_disk_and_reads_come_back() {
        let (mut rig, mut k) = Rig::new(100, 0);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert_eq!(k.stats().evictions_to_tmem, 0);
        assert_eq!(k.stats().failed_puts, 4);
        assert_eq!(k.stats().evictions_to_disk, 4);
        // Fault one back from disk.
        let mut b2 = big_budget();
        k.touch(base, false, &mut rig.step(&mut b2));
        assert_eq!(k.stats().disk_faults, 1);
        assert!(b2.blocked, "disk read must block the step");
        assert!(b2.io_wait >= rig.cost.disk_request(1));
    }

    #[test]
    fn readahead_pulls_neighbours() {
        let (mut rig, mut k) = Rig::new(100, 0);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        // Pages 0..4 were evicted to disk contiguously; faulting page 0
        // should read ahead pages 1..4 too (readahead_pages = 4).
        let before = k.stats().disk_faults;
        let mut b2 = big_budget();
        k.touch(base, false, &mut rig.step(&mut b2));
        assert_eq!(k.stats().disk_faults, before + 1);
        assert_eq!(k.stats().readahead_pages, 3);
        // Touching a read-ahead neighbour is now a resident hit.
        let mut b3 = big_budget();
        k.touch(base.offset(1), false, &mut rig.step(&mut b3));
        assert_eq!(k.stats().disk_faults, before + 1, "no extra disk fault");
    }

    #[test]
    fn clean_disk_backed_page_drops_free() {
        let (mut rig, mut k) = Rig::new(100, 0);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        // Fault page 0 back (read-only) — it keeps its disk copy.
        k.touch(base, false, &mut rig.step(&mut b));
        // Now push it out again by touching enough other pages; it must be
        // dropped for free, not rewritten.
        let free_before = k.stats().evictions_free;
        for i in 4..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert!(k.stats().evictions_free > free_before);
    }

    #[test]
    fn write_after_disk_load_invalidates_the_disk_copy() {
        let (mut rig, mut k) = Rig::new(100, 0);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        // Fault back with a WRITE: version bumps, disk copy invalid.
        k.touch(base, true, &mut rig.step(&mut b));
        let disk_evictions_before = k.stats().evictions_to_disk;
        for i in 4..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        // Page 0's eviction must be a real write-out, not a free drop, and
        // the content must round-trip with the new version when touched.
        assert!(k.stats().evictions_to_disk > disk_evictions_before);
        k.touch(base, false, &mut rig.step(&mut b));
    }

    #[test]
    fn free_range_flushes_tmem_and_releases_frames() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 4);
        k.free_range(base, 12, &mut rig.step(&mut b));
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 0, "flushes freed tmem");
        assert_eq!(k.stats().tmem_flushes, 4);
        assert_eq!(k.resident_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "touch of freed page")]
    fn touching_freed_memory_panics() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let base = k.alloc(1);
        let mut b = big_budget();
        k.touch(base, true, &mut rig.step(&mut b));
        k.free_range(base, 1, &mut rig.step(&mut b));
        k.touch(base, false, &mut rig.step(&mut b));
    }

    #[test]
    fn content_survives_many_eviction_cycles() {
        // Hammer a working set larger than RAM; the fingerprint assertions
        // inside `touch` verify every page that round-trips through tmem.
        let (mut rig, mut k) = Rig::new(6, 6);
        let base = k.alloc(20);
        let mut b = big_budget();
        for round in 0..5 {
            for i in 0..20 {
                k.touch(base.offset(i), round % 2 == 0, &mut rig.step(&mut b));
            }
        }
        assert!(k.stats().tmem_faults > 0);
        assert!(k.stats().disk_faults > 0, "tmem capacity 6 < working set");
    }

    #[test]
    fn no_tmem_guest_never_hypercalls() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(100, 100);
        hyp.register_vm(VmConfig::new(VmId(2), "VM2", 64 * 4096, 1));
        let mut k = GuestKernel::new(GuestConfig {
            vm: VmId(2),
            ram_pages: 10,
            os_reserved_pages: 2,
            readahead_pages: 4,
            frontswap_enabled: false,
        });
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let base = k.alloc(16);
        let mut b = big_budget();
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        for i in 0..16 {
            k.touch(base.offset(i), true, &mut m);
        }
        assert_eq!(k.stats().evictions_to_disk, 8);
        assert_eq!(hyp.tmem_used_by(VmId(2)), 0);
        let s = hyp.sample(SimTime::from_secs(1));
        assert_eq!(
            s.stats.vms[0].puts_total, 0,
            "no hypercalls without frontswap"
        );
    }

    #[test]
    fn corrupt_tmem_gets_recover_with_bounded_retries() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let mut profile = sim_core::faults::FaultProfile::none();
        profile.page_bitflip = 1.0; // corrupt every admitted put (donor permitting)
        rig.hyp.set_data_faults(&profile, 7);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert_eq!(k.stats().evictions_to_tmem, 4);
        assert!(
            rig.hyp.data_fault_ledger().unwrap().bitflips_injected >= 3,
            "a donor exists from the second put on"
        );
        // Fault everything back in. Corrupted pages must come back through
        // the bounded-retry recovery path — never as wrong bytes (the
        // fingerprint assertion inside `touch` would panic).
        for i in 0..12 {
            k.touch(base.offset(i), false, &mut rig.step(&mut b));
        }
        let s = *k.stats();
        assert!(s.tmem_corrupt_faults >= 3);
        assert_eq!(
            s.tmem_corrupt_retries,
            s.tmem_corrupt_faults * u64::from(TMEM_GET_RETRIES),
            "every corrupt fault retries exactly the bound, then requeues"
        );
        assert_eq!(
            s.tmem_flushes, s.tmem_corrupt_faults,
            "each recovery flushes the poisoned copy exactly once"
        );
        let ledger = rig.hyp.data_fault_ledger().unwrap();
        assert_eq!(ledger.corruptions_recovered, s.tmem_corrupt_faults);
        assert!(ledger.corruptions_detected >= s.tmem_corrupt_faults);
    }

    #[test]
    fn quarantined_object_pages_come_back_as_detected_losses() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let mut profile = sim_core::faults::FaultProfile::none();
        profile.torn_write = 1.0;
        profile.scrub_every = 1;
        rig.hyp.set_data_faults(&profile, 7);
        let base = k.alloc(12);
        let mut b = big_budget();
        for i in 0..12 {
            k.touch(base.offset(i), true, &mut rig.step(&mut b));
        }
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 4);
        // The scrubber quarantines the whole (single) frontswap object.
        let report = rig.hyp.scrub();
        assert_eq!(
            report.quarantined.len(),
            1,
            "all guest pages share object 0"
        );
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 0);
        // The guest still believes those 4 pages live in tmem; touching
        // them surfaces clean, detected losses and zero-refills.
        for i in 0..12 {
            k.touch(base.offset(i), false, &mut rig.step(&mut b));
        }
        // Exactly the 4 quarantined pages surface as losses; re-evictions
        // during this loop are still torn (profile stays armed) and come
        // back through the corrupt-recovery path instead.
        assert_eq!(k.stats().tmem_lost_pages, 4);
    }

    #[test]
    fn teardown_frees_everything() {
        let (mut rig, mut k) = Rig::new(100, 100);
        let a = k.alloc(6);
        let _b2 = k.alloc(6);
        let mut b = big_budget();
        for i in 0..6 {
            k.touch(a.offset(i), true, &mut rig.step(&mut b));
        }
        k.teardown(&mut rig.step(&mut b));
        assert_eq!(k.resident_pages(), 0);
        assert_eq!(rig.hyp.tmem_used_by(VmId(1)), 0);
    }
}
