//! The per-step machine context.
//!
//! Guest-kernel operations need the hypervisor (for hypercalls), the shared
//! disk, the cost model and the step budget. Bundling them keeps the hot
//! `touch` path to a single argument and keeps ownership simple: the
//! scenario event loop owns all four and lends them out for the duration of
//! one step.

use crate::budget::StepBudget;
use crate::disk::SharedDisk;
use sim_core::cost::CostModel;
use sim_core::time::SimTime;
use tmem::page::Fingerprint;
use xen_sim::hypervisor::Hypervisor;

/// Mutable view of the simulated machine for one execution step.
pub struct Machine<'a> {
    /// The hypervisor (tmem hypercalls land here).
    pub hyp: &'a mut Hypervisor<Fingerprint>,
    /// The shared virtual disk.
    pub disk: &'a mut SharedDisk,
    /// Latency model.
    pub cost: &'a CostModel,
    /// Dispatch time of the current step.
    pub now: SimTime,
    /// Time accounting for the current step.
    pub budget: &'a mut StepBudget,
}

impl Machine<'_> {
    /// Best-effort current instant *within* the step: the dispatch time plus
    /// time consumed so far. Used to timestamp disk-queue arrivals; the
    /// small error from ignoring CPU dilation here is irrelevant next to
    /// millisecond disk latencies.
    pub fn approx_now(&self) -> SimTime {
        self.now + self.budget.compute + self.budget.io_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    #[test]
    fn approx_now_advances_with_consumption() {
        let mut hyp = Hypervisor::new(16, 16);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let mut budget = StepBudget::new(SimDuration::from_millis(1));
        let m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::from_secs(1),
            budget: &mut budget,
        };
        assert_eq!(m.approx_now(), SimTime::from_secs(1));
        m.budget.charge_compute(SimDuration::from_micros(10));
        let m2 = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::from_secs(1),
            budget: &mut budget,
        };
        assert_eq!(
            m2.approx_now(),
            SimTime::from_secs(1) + SimDuration::from_micros(10)
        );
    }
}
