//! Cleancache: tmem's second mode of operation (paper §II-B).
//!
//! "Linux cleancache is a victim cache for clean pages that are evicted by
//! the Linux kernel's Pageframe Replacement Algorithm." The paper's
//! evaluation uses frontswap only (its workloads are anonymous-memory
//! bound), but the mode is part of the tmem interface, so we implement it:
//! a small model of a file-backed page cache whose clean evictions are
//! offered to an **ephemeral** tmem pool and whose misses try tmem before
//! paying a disk read.
//!
//! Unlike frontswap, a cleancache get is non-destructive and the hypervisor
//! may drop ephemeral pages at any time — a miss is never an error.

use crate::machine::Machine;
use std::collections::VecDeque;
use tmem::fastmap::FxHashSet;
use tmem::key::{ObjectId, PageIndex, PoolId};
use tmem::page::Fingerprint;

/// Statistics for the file-cache / cleancache datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleancacheStats {
    /// Reads served from the in-guest page cache.
    pub cache_hits: u64,
    /// Reads served from cleancache (tmem ephemeral get hit).
    pub cleancache_hits: u64,
    /// Reads that paid a disk access.
    pub disk_reads: u64,
    /// Clean pages offered to cleancache on eviction.
    pub puts: u64,
    /// Offers the hypervisor declined (`E_TMEM`).
    pub failed_puts: u64,
}

/// A file-backed page cache with a cleancache victim tier.
///
/// `capacity_pages` models the slice of guest RAM the page cache may hold;
/// evictions are FIFO (the model does not need full LRU fidelity — what
/// matters is that clean victims flow to the ephemeral pool).
#[derive(Debug)]
pub struct FileCache {
    pool: PoolId,
    capacity_pages: usize,
    /// (file object, page index) of cached pages, eviction order.
    fifo: VecDeque<(u64, u32)>,
    /// Residency set mirroring the backend's flat keying — one Fx probe per
    /// read, same hash the hypervisor side uses.
    cached: FxHashSet<(u64, u32)>,
    stats: CleancacheStats,
}

impl FileCache {
    /// A file cache holding at most `capacity_pages`, spilling to the
    /// ephemeral pool `pool`.
    pub fn new(pool: PoolId, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "file cache needs at least one page");
        FileCache {
            pool,
            capacity_pages,
            fifo: VecDeque::new(),
            cached: FxHashSet::default(),
            stats: CleancacheStats::default(),
        }
    }

    /// Read page `index` of file `file`: page cache → cleancache → disk.
    pub fn read(&mut self, file: u64, index: u32, m: &mut Machine<'_>) {
        if self.cached.contains(&(file, index)) {
            self.stats.cache_hits += 1;
            m.budget.charge_compute(m.cost.ram_page_touch);
            return;
        }
        // Page cache miss: try cleancache (non-destructive get).
        m.budget.charge_compute(m.cost.page_fault_overhead);
        let got = m.hyp.get(self.pool, ObjectId(file), index as PageIndex);
        match got {
            Some(fp) => {
                assert_eq!(
                    fp,
                    Self::content_of(file, index),
                    "cleancache returned wrong file data"
                );
                m.budget.charge_compute(m.cost.tmem_hypercall);
                self.stats.cleancache_hits += 1;
            }
            None => {
                m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
                let wait = m.disk.read(m.approx_now(), 1, false, m.cost);
                m.budget.charge_io(wait);
                self.stats.disk_reads += 1;
            }
        }
        self.insert(file, index, m);
    }

    /// Drop a file's pages from both tiers (e.g. file deletion →
    /// `cleancache_invalidate_inode`, a flush-object on the pool).
    pub fn invalidate_file(&mut self, file: u64, m: &mut Machine<'_>) {
        self.cached.retain(|&(f, _)| f != file);
        self.fifo.retain(|&(f, _)| f != file);
        m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
        m.hyp.flush_object(self.pool, ObjectId(file));
    }

    /// Datapath statistics.
    pub fn stats(&self) -> &CleancacheStats {
        &self.stats
    }

    /// The ephemeral pool this cache spills into.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// Point the cache at a replacement ephemeral pool (live migration:
    /// ephemeral contents are dropped at the source and the destination
    /// registers an empty pool). The in-guest page cache travels with the
    /// VM's RAM, so `cached`/`fifo` stay; future cleancache gets simply
    /// miss until the new pool warms up — a miss is never an error.
    pub fn rebind(&mut self, pool: PoolId) {
        self.pool = pool;
    }

    /// Pages currently in the guest page cache.
    pub fn cached_pages(&self) -> usize {
        self.cached.len()
    }

    /// Deterministic content fingerprint of a (file, page).
    fn content_of(file: u64, index: u32) -> Fingerprint {
        Fingerprint::of(file.rotate_left(20) ^ u64::from(index), 0)
    }

    fn insert(&mut self, file: u64, index: u32, m: &mut Machine<'_>) {
        while self.cached.len() >= self.capacity_pages {
            let (vf, vi) = self
                .fifo
                .pop_front()
                .expect("cache full implies fifo nonempty");
            if !self.cached.remove(&(vf, vi)) {
                continue; // stale entry from invalidate_file
            }
            // Clean victim: offer to cleancache (ephemeral put).
            self.stats.puts += 1;
            match m.hyp.put(
                self.pool,
                ObjectId(vf),
                vi as PageIndex,
                Self::content_of(vf, vi),
            ) {
                Ok(_) => m.budget.charge_compute(m.cost.tmem_hypercall),
                Err(_) => {
                    m.budget.charge_compute(m.cost.tmem_hypercall_nocopy);
                    self.stats.failed_puts += 1;
                }
            }
        }
        self.cached.insert((file, index));
        self.fifo.push_back((file, index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::StepBudget;
    use crate::disk::SharedDisk;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use tmem::key::VmId;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    struct Rig {
        hyp: Hypervisor<Fingerprint>,
        disk: SharedDisk,
        cost: CostModel,
    }

    fn rig(tmem_pages: u64) -> (Rig, FileCache) {
        let mut hyp = Hypervisor::new(tmem_pages, tmem_pages);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 1 << 20, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Ephemeral).unwrap();
        (
            Rig {
                hyp,
                disk: SharedDisk::default(),
                cost: CostModel::hdd(),
            },
            FileCache::new(pool, 4),
        )
    }

    fn machine<'a>(r: &'a mut Rig, b: &'a mut StepBudget) -> Machine<'a> {
        Machine {
            hyp: &mut r.hyp,
            disk: &mut r.disk,
            cost: &r.cost,
            now: SimTime::ZERO,
            budget: b,
        }
    }

    fn big() -> StepBudget {
        StepBudget::new(SimDuration::from_secs(3600))
    }

    #[test]
    fn first_read_hits_disk_second_hits_cache() {
        let (mut r, mut fc) = rig(16);
        let mut b = big();
        fc.read(1, 0, &mut machine(&mut r, &mut b));
        assert_eq!(fc.stats().disk_reads, 1);
        fc.read(1, 0, &mut machine(&mut r, &mut b));
        assert_eq!(fc.stats().cache_hits, 1);
        assert_eq!(fc.stats().disk_reads, 1);
    }

    #[test]
    fn evicted_clean_pages_come_back_from_cleancache() {
        let (mut r, mut fc) = rig(16);
        let mut b = big();
        // Fill the 4-page cache and overflow it: pages 0..4 get evicted to
        // cleancache as pages 4..8 arrive.
        for i in 0..8 {
            fc.read(1, i, &mut machine(&mut r, &mut b));
        }
        assert!(fc.stats().puts >= 4);
        let disk_before = fc.stats().disk_reads;
        fc.read(1, 0, &mut machine(&mut r, &mut b));
        assert_eq!(fc.stats().cleancache_hits, 1, "victim served from tmem");
        assert_eq!(fc.stats().disk_reads, disk_before, "no disk access");
    }

    #[test]
    fn cleancache_miss_is_not_an_error() {
        // Zero-capacity tmem: every put fails, every miss goes to disk.
        let (mut r, mut fc) = rig(0);
        let mut b = big();
        for i in 0..8 {
            fc.read(1, i, &mut machine(&mut r, &mut b));
        }
        assert_eq!(fc.stats().cleancache_hits, 0);
        assert_eq!(fc.stats().failed_puts, fc.stats().puts);
        assert_eq!(fc.stats().disk_reads, 8);
    }

    #[test]
    fn invalidate_file_purges_both_tiers() {
        let (mut r, mut fc) = rig(16);
        let mut b = big();
        for i in 0..8 {
            fc.read(1, i, &mut machine(&mut r, &mut b));
        }
        fc.invalidate_file(1, &mut machine(&mut r, &mut b));
        assert_eq!(fc.cached_pages(), 0);
        assert_eq!(r.hyp.tmem_used_by(VmId(1)), 0);
        // Re-read pays disk again.
        let disk_before = fc.stats().disk_reads;
        fc.read(1, 0, &mut machine(&mut r, &mut b));
        assert_eq!(fc.stats().disk_reads, disk_before + 1);
    }
}
