//! Execution-step budgets.
//!
//! A VM advances in *quanta*: the scenario event loop dispatches a step, the
//! workload issues memory references until the quantum's worth of simulated
//! time is consumed (or a blocking disk access ends the step early), and the
//! loop schedules the next step at the resulting instant. The budget keeps
//! compute time (dilated by CPU contention) separate from I/O wait (never
//! dilated — a blocked vCPU holds no core).

use sim_core::time::SimDuration;

/// Time accounting for one execution step of a vCPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepBudget {
    /// Target compute time for this step.
    pub quantum: SimDuration,
    /// Compute (CPU-bound) time consumed so far: resident touches, fault
    /// overheads, hypercalls.
    pub compute: SimDuration,
    /// Blocking I/O wait consumed so far (disk reads, write throttling).
    pub io_wait: SimDuration,
    /// Number of page faults taken during this step.
    pub faults: u64,
    /// Whether a blocking disk access occurred (ends the step).
    pub blocked: bool,
}

impl StepBudget {
    /// A fresh budget with the given quantum.
    pub fn new(quantum: SimDuration) -> Self {
        StepBudget {
            quantum,
            compute: SimDuration::ZERO,
            io_wait: SimDuration::ZERO,
            faults: 0,
            blocked: false,
        }
    }

    /// True once the step should end: the quantum's compute is consumed or
    /// a blocking disk access occurred. Workloads poll this between
    /// references and yield when it fires.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.blocked || self.compute >= self.quantum
    }

    /// Charge CPU-bound time.
    #[inline]
    pub fn charge_compute(&mut self, d: SimDuration) {
        self.compute += d;
    }

    /// Charge blocking I/O wait and mark the step blocked.
    #[inline]
    pub fn charge_io(&mut self, d: SimDuration) {
        self.io_wait += d;
        self.blocked = true;
    }

    /// Total simulated duration of the step given a CPU-contention dilation
    /// factor for the compute part.
    pub fn elapsed(&self, dilation: f64) -> SimDuration {
        self.compute.scale(dilation) + self.io_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_by_compute() {
        let mut b = StepBudget::new(SimDuration::from_micros(100));
        assert!(!b.exhausted());
        b.charge_compute(SimDuration::from_micros(99));
        assert!(!b.exhausted());
        b.charge_compute(SimDuration::from_micros(1));
        assert!(b.exhausted());
    }

    #[test]
    fn exhaustion_by_blocking_io() {
        let mut b = StepBudget::new(SimDuration::from_micros(100));
        b.charge_io(SimDuration::from_millis(5));
        assert!(b.exhausted());
        assert!(b.blocked);
    }

    #[test]
    fn elapsed_dilates_compute_only() {
        let mut b = StepBudget::new(SimDuration::from_micros(100));
        b.charge_compute(SimDuration::from_micros(100));
        b.charge_io(SimDuration::from_millis(1));
        let e = b.elapsed(2.0);
        assert_eq!(
            e,
            SimDuration::from_micros(200) + SimDuration::from_millis(1)
        );
    }
}
