//! Graph-analytics: the CloudSuite workload stand-in.
//!
//! CloudSuite's graph-analytics runs GraphX PageRank over the
//! `soc-twitter-follows` social network. The reproduction runs real
//! PageRank over a synthetic power-law graph stored in CSR form on
//! [`guest_os::PagedVec`]s:
//!
//! * **load** — CSR offsets and edge targets written sequentially: the
//!   rapid footprint ramp the paper notes ("graph-analytics starts by
//!   making use of a large amount of tmem"),
//! * **iterations** — per vertex, a sequential scan of its out-edges with a
//!   scattered accumulation into the destination ranks (random access),
//! * **apply** — a sequential damping pass swapping rank generations.
//!
//! Strides model GraphX's object overhead (edge triplets, vertex RDDs);
//! see [`GraphAnalyticsConfig::with_footprint`].

use crate::appmodel::{InputReader, Pause};
use crate::datasets::{powerlaw_edges, to_csr};
use crate::traits::{Milestone, StepOutcome, Workload};
use guest_os::kernel::GuestKernel;
use guest_os::machine::Machine;
use guest_os::paged::PagedVec;
use serde::{Deserialize, Serialize};
use sim_core::rng::SplitMix64;
use sim_core::time::SimDuration;

/// Edge budget per partition (~2 MiB of edge heap at the default stride).
pub const PARTITION_EDGE_BYTES: u64 = 2 << 20;

/// Configuration for [`GraphAnalytics`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphAnalyticsConfig {
    /// Vertex count.
    pub n_nodes: u32,
    /// Edge count.
    pub n_edges: usize,
    /// Guest bytes per CSR edge target (GraphX edge overhead).
    pub edge_stride: usize,
    /// Guest bytes per CSR offset entry.
    pub offset_stride: usize,
    /// Guest bytes per rank entry (two generations are kept).
    pub rank_stride: usize,
    /// PageRank iterations.
    pub iterations: u32,
    /// Damping factor.
    pub damping: f64,
    /// Graph synthesis seed.
    pub seed: u64,
    /// Write-once staging heap (triplet materialization, lineage): written
    /// at load, never read, freed at exit.
    pub cold_bytes: u64,
    /// Compute charged per edge scattered (GraphX per-triplet cost).
    pub compute_per_edge: SimDuration,
    /// Superstep barrier pause (GC + scheduling) armed per iteration.
    pub pause_per_iteration: SimDuration,
}

impl GraphAnalyticsConfig {
    /// Size the workload to a target guest footprint in bytes. Edges take
    /// ~70%; vertex state (offsets + two rank generations) the rest. The
    /// edge-to-node ratio loosely follows soc-twitter-follows (~1.8).
    pub fn with_footprint(bytes: u64, seed: u64) -> Self {
        let edge_stride = 48usize;
        let offset_stride = 16usize;
        let rank_stride = 64usize;
        // 18% write-once staging; live heap splits 70/30 edges/vertices.
        let cold_bytes = ((bytes as f64 * 0.18) as u64 / 4096).max(1) * 4096;
        let hot = bytes - cold_bytes;
        let n_edges = ((hot as f64 * 0.70) / edge_stride as f64).max(16.0) as usize;
        let per_node = 2 * rank_stride + offset_stride;
        let n_nodes = (((hot as f64 * 0.30) / per_node as f64).max(2.0)) as u32;
        GraphAnalyticsConfig {
            n_nodes,
            n_edges,
            edge_stride,
            offset_stride,
            rank_stride,
            cold_bytes,
            iterations: 10,
            damping: 0.85,
            seed,
            compute_per_edge: SimDuration::from_nanos(3_000),
            // Barrier time scales with the partition (~0.15 us per edge).
            pause_per_iteration: SimDuration::from_nanos(150 * n_edges as u64),
        }
    }

    /// Total guest footprint in bytes (live heap + cold staging).
    pub fn footprint_bytes(&self) -> u64 {
        self.n_edges as u64 * self.edge_stride as u64
            + u64::from(self.n_nodes + 1) * self.offset_stride as u64
            + 2 * u64::from(self.n_nodes) * self.rank_stride as u64
            + self.cold_bytes
    }
}

#[derive(Debug)]
enum Phase {
    LoadOffsets {
        pos: usize,
    },
    LoadTargets {
        pos: usize,
    },
    /// Write the cold staging region (never read again).
    LoadCold {
        pos: usize,
    },
    InitRanks {
        pos: usize,
    },
    /// Scatter pass of one iteration: partitions visited in shuffled order
    /// (GraphX task scheduling), vertices sequential within a partition.
    Scatter {
        iter: u32,
        order: Vec<u32>,
        part_pos: usize,
        /// Current vertex, absolute index.
        v: usize,
        /// Current edge cursor, absolute index into the target array.
        e: usize,
    },
    /// Damping/apply pass of one iteration.
    Apply {
        iter: u32,
        pos: usize,
    },
    Finished,
}

/// The graph-analytics workload.
pub struct GraphAnalytics {
    config: GraphAnalyticsConfig,
    input: InputReader,
    pause: Pause,
    rng: SplitMix64,
    /// Partition vertex ranges `[start, end)`, ~2 MiB of edges each.
    partitions: Vec<(u32, u32)>,
    host_offsets: Vec<u32>,
    host_targets: Vec<u32>,
    offsets: Option<PagedVec<u32>>,
    targets: Option<PagedVec<u32>>,
    cold: Option<PagedVec<u8>>,
    ranks: Option<PagedVec<f32>>,
    new_ranks: Option<PagedVec<f32>>,
    phase: Phase,
    milestones: Vec<Milestone>,
    rank_sum: Option<f64>,
}

fn shuffled(rng: &mut SplitMix64, n: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

impl GraphAnalytics {
    /// Build the workload (graph synthesis and CSR assembly happen
    /// host-side here; the guest-visible load is the `Load*` phases).
    pub fn new(config: GraphAnalyticsConfig) -> Self {
        assert!(config.iterations > 0);
        assert!((0.0..1.0).contains(&(config.damping - f64::EPSILON)));
        let edges = powerlaw_edges(config.seed, config.n_nodes, config.n_edges);
        let (host_offsets, host_targets) = to_csr(config.n_nodes, &edges);
        // Carve vertex ranges whose edge spans are ~one partition each.
        let edges_per_part = (PARTITION_EDGE_BYTES / config.edge_stride as u64).max(1) as u32;
        let mut partitions = Vec::new();
        let mut start = 0u32;
        while (start as usize) < host_offsets.len() - 1 {
            let limit = host_offsets[start as usize].saturating_add(edges_per_part);
            let mut end = start + 1;
            while (end as usize) < host_offsets.len() - 1 && host_offsets[end as usize] < limit {
                end += 1;
            }
            partitions.push((start, end));
            start = end;
        }
        if partitions.is_empty() {
            partitions.push((0, 0));
        }
        GraphAnalytics {
            rng: SplitMix64::new(config.seed).derive("partitions"),
            partitions,
            // The on-disk edge list: two u32 endpoints per edge.
            input: InputReader::new(config.n_edges as u64, 8),
            pause: Pause::default(),
            config,
            host_offsets,
            host_targets,
            offsets: None,
            targets: None,
            cold: None,
            ranks: None,
            new_ranks: None,
            phase: Phase::LoadOffsets { pos: 0 },
            milestones: Vec::new(),
            rank_sum: None,
        }
    }

    /// Sum of final ranks (≈ 1 modulo dangling-mass loss) — proof the
    /// computation ran; `None` until completion.
    pub fn rank_sum(&self) -> Option<f64> {
        self.rank_sum
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GraphAnalyticsConfig {
        &self.config
    }

    fn free_all(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        for v in [self.offsets.take(), self.targets.take()]
            .into_iter()
            .flatten()
        {
            v.free(kernel, m);
        }
        if let Some(c) = self.cold.take() {
            c.free(kernel, m);
        }
        for v in [self.ranks.take(), self.new_ranks.take()]
            .into_iter()
            .flatten()
        {
            v.free(kernel, m);
        }
    }
}

impl Workload for GraphAnalytics {
    fn name(&self) -> &str {
        "graph-analytics"
    }

    fn step(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> StepOutcome {
        let n = self.config.n_nodes as usize;
        loop {
            if m.budget.exhausted() {
                return StepOutcome::Runnable;
            }
            if self.pause.active() && !self.pause.consume(m) {
                return StepOutcome::Runnable;
            }
            match self.phase {
                Phase::LoadOffsets { ref mut pos } => {
                    if self.offsets.is_none() {
                        self.offsets =
                            Some(PagedVec::new(kernel, n + 1, self.config.offset_stride));
                        self.targets = Some(PagedVec::new(
                            kernel,
                            self.host_targets.len(),
                            self.config.edge_stride,
                        ));
                        self.ranks = Some(PagedVec::new(kernel, n, self.config.rank_stride));
                        self.new_ranks = Some(PagedVec::new(kernel, n, self.config.rank_stride));
                    }
                    let offsets = self.offsets.as_mut().expect("allocated above");
                    while *pos < n + 1 {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        offsets.set(*pos, self.host_offsets[*pos], kernel, m);
                        *pos += 1;
                    }
                    self.phase = Phase::LoadTargets { pos: 0 };
                }
                Phase::LoadTargets { ref mut pos } => {
                    let targets = self.targets.as_mut().expect("allocated in LoadOffsets");
                    while *pos < self.host_targets.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        self.input.consume(m);
                        targets.set(*pos, self.host_targets[*pos], kernel, m);
                        *pos += 1;
                    }
                    self.phase = Phase::LoadCold { pos: 0 };
                }
                Phase::LoadCold { ref mut pos } => {
                    if self.cold.is_none() {
                        let pages = (self.config.cold_bytes / 4096).max(1) as usize;
                        self.cold = Some(PagedVec::new(kernel, pages, 4096));
                    }
                    let cold = self.cold.as_mut().expect("allocated above");
                    while *pos < cold.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        cold.set(*pos, 0xCD, kernel, m);
                        *pos += 1;
                    }
                    self.milestones.push(Milestone("loaded".into()));
                    self.phase = Phase::InitRanks { pos: 0 };
                }
                Phase::InitRanks { ref mut pos } => {
                    let init = 1.0 / n as f32;
                    let ranks = self.ranks.as_mut().expect("allocated in LoadOffsets");
                    let new_ranks = self.new_ranks.as_mut().expect("allocated in LoadOffsets");
                    while *pos < n {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        ranks.set(*pos, init, kernel, m);
                        new_ranks.set(*pos, 0.0, kernel, m);
                        *pos += 1;
                    }
                    let order = shuffled(&mut self.rng, self.partitions.len());
                    let (v0, _) = self.partitions[order[0] as usize];
                    self.phase = Phase::Scatter {
                        iter: 0,
                        order,
                        part_pos: 0,
                        v: v0 as usize,
                        e: usize::MAX,
                    };
                }
                Phase::Scatter {
                    iter,
                    ref order,
                    ref mut part_pos,
                    ref mut v,
                    ref mut e,
                } => {
                    let offsets = self.offsets.as_ref().expect("live during iteration");
                    let targets = self.targets.as_ref().expect("live during iteration");
                    let ranks = self.ranks.as_ref().expect("live during iteration");
                    let new_ranks = self.new_ranks.as_mut().expect("live during iteration");
                    'outer: while *part_pos < order.len() {
                        let (_, pend) = self.partitions[order[*part_pos] as usize];
                        while *v < pend as usize {
                            let lo = offsets.get(*v, kernel, m) as usize;
                            let hi = offsets.get(*v + 1, kernel, m) as usize;
                            let deg = (hi - lo).max(1) as f32;
                            let contrib = ranks.get(*v, kernel, m) / deg;
                            if *e < lo || *e == usize::MAX {
                                *e = lo;
                            }
                            while *e < hi {
                                if m.budget.exhausted() {
                                    break 'outer;
                                }
                                let dst = targets.get(*e, kernel, m) as usize;
                                let cur = new_ranks.get(dst, kernel, m);
                                new_ranks.set(dst, cur + contrib, kernel, m);
                                m.budget.charge_compute(self.config.compute_per_edge);
                                *e += 1;
                            }
                            *v += 1;
                            if m.budget.exhausted() {
                                break 'outer;
                            }
                        }
                        *part_pos += 1;
                        if *part_pos < order.len() {
                            let (vs, _) = self.partitions[order[*part_pos] as usize];
                            *v = vs as usize;
                            *e = usize::MAX;
                        }
                    }
                    if *part_pos >= order.len() {
                        self.phase = Phase::Apply { iter, pos: 0 };
                    } else {
                        return StepOutcome::Runnable;
                    }
                }
                Phase::Apply { iter, ref mut pos } => {
                    let base = ((1.0 - self.config.damping) / n as f64) as f32;
                    let d = self.config.damping as f32;
                    let ranks = self.ranks.as_mut().expect("live during iteration");
                    let new_ranks = self.new_ranks.as_mut().expect("live during iteration");
                    while *pos < n {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        let acc = new_ranks.get(*pos, kernel, m);
                        ranks.set(*pos, base + d * acc, kernel, m);
                        new_ranks.set(*pos, 0.0, kernel, m);
                        *pos += 1;
                    }
                    let next = iter + 1;
                    self.milestones.push(Milestone(format!("iter:{next}")));
                    self.pause.arm(self.config.pause_per_iteration);
                    if next == self.config.iterations {
                        // Final rank mass, read without simulation cost
                        // (verification only).
                        let sum: f64 = (0..n)
                            .map(|i| f64::from(*self.ranks.as_ref().unwrap().peek(i)))
                            .sum();
                        self.rank_sum = Some(sum);
                        self.free_all(kernel, m);
                        self.phase = Phase::Finished;
                        return StepOutcome::Done;
                    }
                    let order = shuffled(&mut self.rng, self.partitions.len());
                    let (v0, _) = self.partitions[order[0] as usize];
                    self.phase = Phase::Scatter {
                        iter: next,
                        order,
                        part_pos: 0,
                        v: v0 as usize,
                        e: usize::MAX,
                    };
                }
                Phase::Finished => return StepOutcome::Done,
            }
        }
    }

    fn drain_milestones(&mut self) -> Vec<Milestone> {
        std::mem::take(&mut self.milestones)
    }

    fn abort(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        self.free_all(kernel, m);
        self.phase = Phase::Finished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_os::budget::StepBudget;
    use guest_os::disk::SharedDisk;
    use guest_os::kernel::GuestConfig;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use tmem::key::VmId;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    fn small_config() -> GraphAnalyticsConfig {
        GraphAnalyticsConfig {
            n_nodes: 300,
            n_edges: 3000,
            edge_stride: 48,
            offset_stride: 16,
            rank_stride: 64,
            cold_bytes: 8 * 4096,
            iterations: 5,
            damping: 0.85,
            seed: 9,
            compute_per_edge: SimDuration::from_nanos(1_000),
            pause_per_iteration: SimDuration::from_micros(450),
        }
    }

    fn run_to_completion(
        config: GraphAnalyticsConfig,
        ram_pages: u64,
        tmem_pages: u64,
    ) -> (GraphAnalytics, GuestKernel) {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(tmem_pages, tmem_pages);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", ram_pages * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages,
            os_reserved_pages: 2,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let mut w = GraphAnalytics::new(config);
        for _ in 0..2_000_000 {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            if w.step(&mut kernel, &mut m) == StepOutcome::Done {
                return (w, kernel);
            }
        }
        panic!("workload did not complete");
    }

    #[test]
    fn pagerank_mass_is_conserved_modulo_dangling() {
        let (w, kernel) = run_to_completion(small_config(), 512, 512);
        let sum = w.rank_sum().expect("completed");
        assert!(sum > 0.1 && sum <= 1.01, "rank mass {sum}");
        assert_eq!(kernel.resident_pages(), 0);
    }

    #[test]
    fn result_is_identical_under_memory_pressure() {
        let (comfortable, _) = run_to_completion(small_config(), 512, 512);
        let (pressured, kernel) = run_to_completion(small_config(), 32, 16);
        assert_eq!(comfortable.rank_sum(), pressured.rank_sum());
        assert!(
            kernel.stats().evictions_to_tmem + kernel.stats().evictions_to_disk > 0,
            "the pressured run really did swap"
        );
    }

    #[test]
    fn footprint_sizing_is_close_to_target() {
        let cfg = GraphAnalyticsConfig::with_footprint(32 << 20, 2);
        let got = cfg.footprint_bytes() as f64;
        let want = (32u64 << 20) as f64;
        assert!(
            (got / want - 1.0).abs() < 0.15,
            "footprint {got} vs target {want}"
        );
    }

    #[test]
    fn iteration_milestones_appear() {
        let (mut w, _) = run_to_completion(small_config(), 512, 512);
        let labels: Vec<_> = w.drain_milestones().into_iter().map(|m| m.0).collect();
        assert!(labels.contains(&"loaded".to_string()));
        assert!(labels.contains(&"iter:5".to_string()));
    }

    #[test]
    fn abort_midway_releases_memory() {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(512, 512);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 512 * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages: 64,
            os_reserved_pages: 2,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let mut w = GraphAnalytics::new(small_config());
        // A few steps in, then kill it.
        for _ in 0..10 {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            w.step(&mut kernel, &mut m);
        }
        let mut b = StepBudget::new(SimDuration::from_secs(1));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        w.abort(&mut kernel, &mut m);
        assert_eq!(kernel.resident_pages(), 0);
        assert_eq!(hyp.tmem_used_by(VmId(1)), 0);
    }
}
