#![warn(missing_docs)]

//! Workloads for the SmarTmem evaluation (paper §IV).
//!
//! Three workloads drive the scenarios of Table II:
//!
//! * [`usemem::Usemem`] — the paper's synthetic micro-benchmark,
//!   reimplemented exactly as described: allocate 128 MB, traverse it
//!   linearly with writes and reads, then reallocate 128 MB more, up to
//!   1 GB, then keep traversing until stopped.
//! * [`inmem::InMemoryAnalytics`] — stand-in for CloudSuite's
//!   in-memory-analytics (Spark ALS collaborative filtering over
//!   MovieLens): a real stochastic-gradient matrix-factorization
//!   recommender over a synthetic MovieLens-shaped rating set, executed on
//!   [`guest_os::PagedVec`]s so every rating scan and factor update drives
//!   the simulated paging layer.
//! * [`graph::GraphAnalytics`] — stand-in for CloudSuite's graph-analytics
//!   (GraphX PageRank over `soc-twitter-follows`): real PageRank over a
//!   synthetic power-law graph in CSR form.
//!
//! Workloads are resumable state machines: the scenario event loop calls
//! [`traits::Workload::step`] with a time budget; the workload issues
//! memory references until the budget is exhausted, then yields. Milestones
//! (run completions, usemem allocation attempts) are drained by the runner
//! and double as cross-VM triggers (e.g. "VM3 starts when VM1 and VM2
//! attempt to allocate 640 MB").

pub mod appmodel;
pub mod datasets;
pub mod fileserver;
pub mod graph;
pub mod inmem;
pub mod traits;
pub mod usemem;

pub use fileserver::{FileServer, FileServerConfig};
pub use graph::{GraphAnalytics, GraphAnalyticsConfig};
pub use inmem::{InMemoryAnalytics, InMemoryAnalyticsConfig};
pub use traits::{Milestone, StepOutcome, Workload};
pub use usemem::{Usemem, UsememConfig};
