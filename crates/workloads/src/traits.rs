//! The workload abstraction.

use guest_os::kernel::GuestKernel;
use guest_os::machine::Machine;
use tmem::key::PoolId;

/// What a workload step reports back to the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work remains; schedule another step.
    Runnable,
    /// The workload finished and released its memory.
    Done,
}

/// A named progress event, drained by the runner after each step. Used for
/// per-phase timing (Fig. 7's per-allocation running times) and as cross-VM
/// start/stop triggers in the Usemem scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Milestone(pub String);

/// A resumable, budgeted workload.
///
/// Contract: `step` must issue references through the supplied kernel and
/// machine until `m.budget.exhausted()` (checking between references) or
/// completion, and must free all its guest memory before returning
/// [`StepOutcome::Done`]. After `Done`, further `step` calls are a logic
/// error. `abort` force-releases memory for workloads stopped externally.
pub trait Workload {
    /// Report name.
    fn name(&self) -> &str;

    /// Run until the budget is exhausted or the workload completes.
    fn step(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> StepOutcome;

    /// Drain milestones reached since the last call.
    fn drain_milestones(&mut self) -> Vec<Milestone>;

    /// Stop the workload prematurely, releasing all guest memory (process
    /// kill). Idempotent.
    fn abort(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>);

    /// The VM migrated and a pool this workload created was re-registered
    /// on the destination host under a new id (ephemeral pools do not
    /// survive migration — the replacement starts empty). Workloads that
    /// hold no pool of their own ignore this.
    fn rebind_pool(&mut self, _old: PoolId, _new: PoolId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestone_is_a_transparent_label() {
        let m = Milestone("alloc:640".into());
        assert_eq!(m.0, "alloc:640");
        assert_eq!(m, Milestone("alloc:640".into()));
    }
}
