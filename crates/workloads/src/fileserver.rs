//! A file-serving workload — exercising tmem's **cleancache** mode.
//!
//! The paper's evaluation uses frontswap only (its CloudSuite workloads are
//! anonymous-memory bound), but tmem's other half, cleancache (§II-B), is
//! part of the interface and this workload drives it end-to-end: a static
//! file server whose corpus exceeds its page-cache budget serves reads
//! with Zipf-popular files; clean evictions flow into the VM's ephemeral
//! tmem pool and misses try tmem before paying a disk read.
//!
//! The metric of interest is the cleancache hit fraction — how much of the
//! miss traffic the pooled memory absorbed — which the hypervisor's target
//! gating (Algorithm 1 applies to ephemeral puts too) controls exactly as
//! it does frontswap traffic.

use crate::traits::{Milestone, StepOutcome, Workload};
use guest_os::cleancache::FileCache;
use guest_os::kernel::GuestKernel;
use guest_os::machine::Machine;
use serde::{Deserialize, Serialize};
use sim_core::rng::SplitMix64;
use sim_core::time::SimDuration;
use tmem::backend::PoolKind;
use tmem::key::PoolId;

/// Configuration for [`FileServer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileServerConfig {
    /// Number of files in the corpus.
    pub n_files: u64,
    /// Pages per file.
    pub pages_per_file: u32,
    /// In-guest page-cache budget, pages.
    pub cache_pages: usize,
    /// Total page reads to serve.
    pub requests: u64,
    /// Zipf skew of file popularity.
    pub skew: f64,
    /// Compute per served request (request parsing, copy to socket).
    pub compute_per_request: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl FileServerConfig {
    /// A small default corpus: 256 files × 32 pages = 32 MiB, cache 8 MiB.
    pub fn small(seed: u64) -> Self {
        FileServerConfig {
            n_files: 256,
            pages_per_file: 32,
            cache_pages: 2048,
            requests: 200_000,
            skew: 1.1,
            compute_per_request: SimDuration::from_micros(5),
            seed,
        }
    }

    /// A corpus sized to a total footprint of `bytes`, served by a guest
    /// page cache holding a quarter of it, answering `requests` page reads
    /// (one logical user session each). Files stay at 32 pages (128 KiB)
    /// so footprint scales the corpus breadth, not the file size.
    pub fn with_footprint(bytes: u64, requests: u64, seed: u64) -> Self {
        const PAGES_PER_FILE: u32 = 32;
        let pages = (bytes / tmem::page::PAGE_SIZE as u64).max(u64::from(PAGES_PER_FILE));
        FileServerConfig {
            n_files: (pages / u64::from(PAGES_PER_FILE)).max(1),
            pages_per_file: PAGES_PER_FILE,
            cache_pages: (pages / 4).max(64) as usize,
            requests,
            skew: 1.1,
            compute_per_request: SimDuration::from_micros(5),
            seed,
        }
    }

    /// Total corpus size in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.n_files * u64::from(self.pages_per_file) * tmem::page::PAGE_SIZE as u64
    }
}

/// The file-serving workload.
pub struct FileServer {
    config: FileServerConfig,
    cache: Option<FileCache>,
    rng: SplitMix64,
    served: u64,
    milestones: Vec<Milestone>,
}

impl FileServer {
    /// A fresh server (the cleancache pool is registered lazily on the
    /// first step, when the hypervisor is in reach).
    pub fn new(config: FileServerConfig) -> Self {
        assert!(config.n_files > 0 && config.pages_per_file > 0);
        FileServer {
            rng: SplitMix64::new(config.seed).derive("fileserver"),
            config,
            cache: None,
            served: 0,
            milestones: Vec::new(),
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Cleancache statistics (after the first step).
    pub fn cache_stats(&self) -> Option<&guest_os::cleancache::CleancacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

/// Zipf-popular file pick.
fn zipf_file(rng: &mut SplitMix64, n: u64, s: f64) -> u64 {
    let u = rng.next_f64().max(1e-12);
    let x = ((n as f64).powf(1.0 - s) * u + (1.0 - u)).powf(1.0 / (1.0 - s));
    (x as u64).min(n - 1)
}

impl Workload for FileServer {
    fn name(&self) -> &str {
        "fileserver"
    }

    fn step(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> StepOutcome {
        if self.cache.is_none() {
            // Register the ephemeral (cleancache) pool for this VM.
            let vm = kernel.config().vm;
            let pool = m
                .hyp
                .new_pool(vm, PoolKind::Ephemeral)
                .expect("cleancache pool creation");
            self.cache = Some(FileCache::new(pool, self.config.cache_pages));
            self.milestones.push(Milestone("cache-up".into()));
        }
        let cache = self.cache.as_mut().expect("created above");
        while self.served < self.config.requests {
            if m.budget.exhausted() {
                return StepOutcome::Runnable;
            }
            let file = zipf_file(&mut self.rng, self.config.n_files, self.config.skew);
            let page = self.rng.next_below(u64::from(self.config.pages_per_file)) as u32;
            cache.read(file, page, m);
            m.budget.charge_compute(self.config.compute_per_request);
            self.served += 1;
        }
        self.milestones.push(Milestone("served-all".into()));
        StepOutcome::Done
    }

    fn drain_milestones(&mut self) -> Vec<Milestone> {
        std::mem::take(&mut self.milestones)
    }

    fn abort(&mut self, _kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        // Drop the page cache and the ephemeral pool contents.
        if let Some(cache) = &mut self.cache {
            for f in 0..self.config.n_files {
                cache.invalidate_file(f, m);
            }
        }
        self.served = self.config.requests;
    }

    fn rebind_pool(&mut self, old: PoolId, new: PoolId) {
        if let Some(cache) = &mut self.cache {
            if cache.pool() == old {
                cache.rebind(new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_os::budget::StepBudget;
    use guest_os::disk::SharedDisk;
    use guest_os::kernel::GuestConfig;
    use sim_core::cost::CostModel;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    fn run(tmem_pages: u64, target: u64, requests: u64) -> FileServer {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(tmem_pages, target);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", 4096 * 4096, 1));
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages: 64,
            os_reserved_pages: 2,
            readahead_pages: 8,
            frontswap_enabled: false, // pure cleancache guest
        });
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let mut w = FileServer::new(FileServerConfig {
            n_files: 64,
            pages_per_file: 8,
            cache_pages: 64,
            requests,
            skew: 1.2,
            compute_per_request: SimDuration::from_micros(5),
            seed: 3,
        });
        for _ in 0..1_000_000 {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            if w.step(&mut kernel, &mut m) == StepOutcome::Done {
                return w;
            }
        }
        panic!("fileserver did not finish");
    }

    #[test]
    fn cleancache_absorbs_capacity_misses() {
        // Corpus 512 pages, guest cache 64: plenty of capacity misses.
        // With a large ephemeral pool most of them hit cleancache.
        let w = run(1024, 1024, 20_000);
        let s = w.cache_stats().unwrap();
        assert_eq!(w.served(), 20_000);
        assert!(s.cleancache_hits > 0);
        assert!(
            s.cleancache_hits > s.disk_reads,
            "pooled memory should absorb most misses: {s:?}"
        );
    }

    #[test]
    fn zero_target_disables_the_benefit() {
        // Algorithm 1 gates ephemeral puts too: with target 0 every offer
        // fails and all misses pay the disk.
        let w = run(1024, 0, 5_000);
        let s = w.cache_stats().unwrap();
        assert_eq!(s.cleancache_hits, 0);
        assert_eq!(s.failed_puts, s.puts);
        assert!(s.disk_reads > 0);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let a = run(256, 256, 10_000);
        let b = run(256, 256, 10_000);
        assert_eq!(a.cache_stats().unwrap(), b.cache_stats().unwrap());
    }
}
