//! In-memory-analytics: the CloudSuite workload stand-in.
//!
//! CloudSuite's in-memory-analytics runs Spark MLlib's ALS collaborative
//! filtering over the MovieLens rating set. The reproduction runs a *real*
//! stochastic-gradient matrix-factorization recommender (same problem, same
//! data shape, same memory behaviour on a single core) over a synthetic
//! MovieLens-shaped rating set:
//!
//! * **load** — the rating set is written sequentially into guest memory
//!   (the footprint ramp the paper's figures show at run start),
//! * **training epochs** — each epoch scans the ratings sequentially and,
//!   per rating, reads and updates the user and item factor rows — the
//!   random-access component that punishes disk swapping,
//! * **evaluation** — a final sequential pass computing training RMSE.
//!
//! Element *strides* model Spark's JVM object overhead: a logical 12-byte
//! rating occupies `rating_stride` bytes of heap (default 64), a factor row
//! `factor_stride` (default 128), which is how a ~24 MB MovieLens export
//! becomes a guest footprint exceeding a 1 GB VM.

use crate::appmodel::{InputReader, Pause};
use crate::datasets::{movielens_ratings, Rating};
use crate::traits::{Milestone, StepOutcome, Workload};
use guest_os::kernel::GuestKernel;
use guest_os::machine::Machine;
use guest_os::paged::PagedVec;
use serde::{Deserialize, Serialize};
use sim_core::rng::SplitMix64;
use sim_core::time::SimDuration;

/// Latent factor rank (fixed: CloudSuite's ALS default neighbourhood).
pub const RANK: usize = 8;

type FactorRow = [f32; RANK];

/// Ratings per Spark-style partition (~2 MiB of heap at the default
/// stride): training visits partitions in a per-epoch shuffled order, as a
/// task scheduler would, so cache misses under a capacity shortage are
/// proportional to the shortage instead of all-or-nothing.
pub const PARTITION_RATINGS: usize = 32 * 1024;

fn shuffled_partitions(rng: &mut SplitMix64, n_parts: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n_parts as u32).collect();
    // Fisher-Yates.
    for i in (1..order.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

/// Small random factor initialization.
fn small_random(rng: &mut SplitMix64) -> FactorRow {
    let mut row = [0.0f32; RANK];
    for v in &mut row {
        *v = (rng.next_f64() as f32 - 0.5) * 0.2;
    }
    row
}

/// Configuration for [`InMemoryAnalytics`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InMemoryAnalyticsConfig {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Number of ratings.
    pub n_ratings: usize,
    /// Guest bytes per rating (JVM overhead model).
    pub rating_stride: usize,
    /// Guest bytes per factor row.
    pub factor_stride: usize,
    /// Training epochs.
    pub epochs: u32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub regularization: f32,
    /// Dataset + initialization seed.
    pub seed: u64,
    /// Write-once staging heap (RDD lineage, shuffle spill, dead objects):
    /// written during load, never read again, freed at exit. Under greedy
    /// tmem these pages squat in the pool for the whole run — the waste
    /// mechanism the managed policies exploit.
    pub cold_bytes: u64,
    /// Compute charged per rating processed during training/evaluation
    /// (JVM execution cost; dominates when memory is comfortable).
    pub compute_per_rating: SimDuration,
    /// GC / scheduler pause armed after each epoch: a window with no
    /// memory pressure, during which demand-driven policies may reclaim.
    pub gc_pause_per_epoch: SimDuration,
}

impl InMemoryAnalyticsConfig {
    /// Size the workload to a target guest footprint in bytes. Ratings take
    /// ~65% of the footprint, factor rows the rest; user/item counts follow
    /// the MovieLens-1M proportions (~60% users).
    pub fn with_footprint(bytes: u64, seed: u64) -> Self {
        let rating_stride = 64usize;
        let factor_stride = 128usize;
        // 18% of the heap is write-once staging; the live (hot) heap splits
        // ~65/35 between ratings and factor rows.
        let cold_bytes = ((bytes as f64 * 0.18) as u64 / 4096).max(1) * 4096;
        let hot = bytes - cold_bytes;
        let n_ratings = ((hot as f64 * 0.65) / rating_stride as f64).max(64.0) as usize;
        let factor_rows = ((hot as f64 * 0.35) / factor_stride as f64).max(8.0) as u64;
        let n_users = ((factor_rows * 6) / 10).max(2) as u32;
        let n_items = (factor_rows - u64::from(n_users / 10) * 6).max(2) as u32;
        InMemoryAnalyticsConfig {
            n_users,
            n_items: n_items
                .min(factor_rows as u32 - n_users.min(factor_rows as u32 - 1))
                .max(2),
            n_ratings,
            rating_stride,
            factor_stride,
            cold_bytes,
            epochs: 3,
            learning_rate: 0.02,
            regularization: 0.05,
            seed,
            compute_per_rating: SimDuration::from_nanos(4_000),
            // GC time scales with heap: ~0.3 us per live rating object.
            gc_pause_per_epoch: SimDuration::from_nanos(300 * n_ratings as u64),
        }
    }

    /// Total guest footprint in bytes (live heap + cold staging).
    pub fn footprint_bytes(&self) -> u64 {
        self.n_ratings as u64 * self.rating_stride as u64
            + (u64::from(self.n_users) + u64::from(self.n_items)) * self.factor_stride as u64
            + self.cold_bytes
    }
}

#[derive(Debug)]
enum Phase {
    Load {
        pos: usize,
    },
    /// Write the cold staging region (never read again).
    LoadCold {
        pos: usize,
    },
    InitUsers {
        pos: usize,
    },
    InitItems {
        pos: usize,
    },
    Train {
        epoch: u32,
        /// Shuffled partition visit order for this epoch.
        order: Vec<u32>,
        /// Index into `order`.
        part_pos: usize,
        /// Offset within the current partition.
        in_part: usize,
    },
    Evaluate {
        pos: usize,
        sse: f64,
    },
    Finished,
}

/// The in-memory-analytics workload.
pub struct InMemoryAnalytics {
    config: InMemoryAnalyticsConfig,
    input: InputReader,
    pause: Pause,
    host_ratings: Vec<Rating>,
    ratings: Option<PagedVec<Rating>>,
    cold: Option<PagedVec<u8>>,
    user_f: Option<PagedVec<FactorRow>>,
    item_f: Option<PagedVec<FactorRow>>,
    rng: SplitMix64,
    phase: Phase,
    milestones: Vec<Milestone>,
    rmse: Option<f64>,
}

impl InMemoryAnalytics {
    /// Build the workload (dataset synthesis happens host-side here; the
    /// guest-visible load is the `Load` phase).
    pub fn new(config: InMemoryAnalyticsConfig) -> Self {
        assert!(config.epochs > 0, "at least one epoch");
        let host_ratings = movielens_ratings(
            config.seed,
            config.n_users,
            config.n_items,
            config.n_ratings,
        );
        InMemoryAnalytics {
            rng: SplitMix64::new(config.seed).derive("factors"),
            // The on-disk dataset: one 16-byte text record per rating.
            input: InputReader::new(config.n_ratings as u64, 16),
            pause: Pause::default(),
            config,
            host_ratings,
            ratings: None,
            cold: None,
            user_f: None,
            item_f: None,
            phase: Phase::Load { pos: 0 },
            milestones: Vec::new(),
            rmse: None,
        }
    }

    /// Training RMSE after the run (None until evaluation completes).
    pub fn rmse(&self) -> Option<f64> {
        self.rmse
    }

    /// The configuration in effect.
    pub fn config(&self) -> &InMemoryAnalyticsConfig {
        &self.config
    }

    fn free_all(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        if let Some(r) = self.ratings.take() {
            r.free(kernel, m);
        }
        if let Some(c) = self.cold.take() {
            c.free(kernel, m);
        }
        if let Some(u) = self.user_f.take() {
            u.free(kernel, m);
        }
        if let Some(i) = self.item_f.take() {
            i.free(kernel, m);
        }
    }
}

impl Workload for InMemoryAnalytics {
    fn name(&self) -> &str {
        "in-memory-analytics"
    }

    fn step(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> StepOutcome {
        loop {
            if m.budget.exhausted() {
                return StepOutcome::Runnable;
            }
            if self.pause.active() && !self.pause.consume(m) {
                return StepOutcome::Runnable;
            }
            match self.phase {
                Phase::Load { ref mut pos } => {
                    if self.ratings.is_none() {
                        self.ratings = Some(PagedVec::new(
                            kernel,
                            self.config.n_ratings,
                            self.config.rating_stride,
                        ));
                        self.user_f = Some(PagedVec::new(
                            kernel,
                            self.config.n_users as usize,
                            self.config.factor_stride,
                        ));
                        self.item_f = Some(PagedVec::new(
                            kernel,
                            self.config.n_items as usize,
                            self.config.factor_stride,
                        ));
                    }
                    let ratings = self.ratings.as_mut().expect("allocated above");
                    while *pos < self.host_ratings.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        self.input.consume(m);
                        ratings.set(*pos, self.host_ratings[*pos], kernel, m);
                        *pos += 1;
                    }
                    self.phase = Phase::LoadCold { pos: 0 };
                }
                Phase::LoadCold { ref mut pos } => {
                    if self.cold.is_none() {
                        let pages = (self.config.cold_bytes / 4096).max(1) as usize;
                        self.cold = Some(PagedVec::new(kernel, pages, 4096));
                    }
                    let cold = self.cold.as_mut().expect("allocated above");
                    while *pos < cold.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        cold.set(*pos, 0xCD, kernel, m);
                        *pos += 1;
                    }
                    self.milestones.push(Milestone("loaded".into()));
                    self.phase = Phase::InitUsers { pos: 0 };
                }
                Phase::InitUsers { ref mut pos } => {
                    while *pos < self.config.n_users as usize {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        let row = small_random(&mut self.rng);
                        self.user_f
                            .as_mut()
                            .expect("factors allocated in load")
                            .set(*pos, row, kernel, m);
                        *pos += 1;
                    }
                    self.phase = Phase::InitItems { pos: 0 };
                }
                Phase::InitItems { ref mut pos } => {
                    while *pos < self.config.n_items as usize {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        let row = small_random(&mut self.rng);
                        self.item_f
                            .as_mut()
                            .expect("factors allocated in load")
                            .set(*pos, row, kernel, m);
                        *pos += 1;
                    }
                    let n_parts = self.config.n_ratings.div_ceil(PARTITION_RATINGS);
                    self.phase = Phase::Train {
                        epoch: 0,
                        order: shuffled_partitions(&mut self.rng, n_parts),
                        part_pos: 0,
                        in_part: 0,
                    };
                }
                Phase::Train {
                    ref mut epoch,
                    ref mut order,
                    ref mut part_pos,
                    ref mut in_part,
                } => {
                    let ratings = self.ratings.as_ref().expect("live during training");
                    let user_f = self.user_f.as_mut().expect("live during training");
                    let item_f = self.item_f.as_mut().expect("live during training");
                    let lr = self.config.learning_rate;
                    let reg = self.config.regularization;
                    while *part_pos < order.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        let base = order[*part_pos] as usize * PARTITION_RATINGS;
                        let pos = base + *in_part;
                        if pos >= self.config.n_ratings {
                            // Short tail partition.
                            *part_pos += 1;
                            *in_part = 0;
                            continue;
                        }
                        let r = ratings.get(pos, kernel, m);
                        let u = user_f.get(r.user as usize, kernel, m);
                        let v = item_f.get(r.item as usize, kernel, m);
                        let pred: f32 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                        let err = r.value - pred;
                        let mut nu = [0.0f32; RANK];
                        let mut nv = [0.0f32; RANK];
                        for k in 0..RANK {
                            nu[k] = u[k] + lr * (err * v[k] - reg * u[k]);
                            nv[k] = v[k] + lr * (err * u[k] - reg * v[k]);
                        }
                        user_f.set(r.user as usize, nu, kernel, m);
                        item_f.set(r.item as usize, nv, kernel, m);
                        m.budget.charge_compute(self.config.compute_per_rating);
                        *in_part += 1;
                        if *in_part == PARTITION_RATINGS {
                            *part_pos += 1;
                            *in_part = 0;
                        }
                    }
                    *epoch += 1;
                    self.milestones.push(Milestone(format!("epoch:{epoch}")));
                    self.pause.arm(self.config.gc_pause_per_epoch);
                    if *epoch == self.config.epochs {
                        self.phase = Phase::Evaluate { pos: 0, sse: 0.0 };
                    } else {
                        let n_parts = self.config.n_ratings.div_ceil(PARTITION_RATINGS);
                        *order = shuffled_partitions(&mut self.rng, n_parts);
                        *part_pos = 0;
                        *in_part = 0;
                    }
                }
                Phase::Evaluate {
                    ref mut pos,
                    ref mut sse,
                } => {
                    let ratings = self.ratings.as_ref().expect("live during evaluation");
                    let user_f = self.user_f.as_ref().expect("live during evaluation");
                    let item_f = self.item_f.as_ref().expect("live during evaluation");
                    while *pos < self.config.n_ratings {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        let r = ratings.get(*pos, kernel, m);
                        let u = user_f.get(r.user as usize, kernel, m);
                        let v = item_f.get(r.item as usize, kernel, m);
                        let pred: f32 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                        let err = f64::from(r.value - pred);
                        *sse += err * err;
                        m.budget.charge_compute(self.config.compute_per_rating);
                        *pos += 1;
                    }
                    self.rmse = Some((*sse / self.config.n_ratings as f64).sqrt());
                    self.free_all(kernel, m);
                    self.phase = Phase::Finished;
                    return StepOutcome::Done;
                }
                Phase::Finished => return StepOutcome::Done,
            }
        }
    }

    fn drain_milestones(&mut self) -> Vec<Milestone> {
        std::mem::take(&mut self.milestones)
    }

    fn abort(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        self.free_all(kernel, m);
        self.phase = Phase::Finished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_os::budget::StepBudget;
    use guest_os::disk::SharedDisk;
    use guest_os::kernel::GuestConfig;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use tmem::key::VmId;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    fn small_config() -> InMemoryAnalyticsConfig {
        InMemoryAnalyticsConfig {
            n_users: 50,
            n_items: 30,
            n_ratings: 4000,
            rating_stride: 64,
            factor_stride: 128,
            cold_bytes: 16 * 4096,
            epochs: 3,
            learning_rate: 0.02,
            regularization: 0.05,
            seed: 42,
            compute_per_rating: SimDuration::from_nanos(1_500),
            gc_pause_per_epoch: SimDuration::from_micros(500),
        }
    }

    fn run_to_completion(
        config: InMemoryAnalyticsConfig,
        ram_pages: u64,
        tmem_pages: u64,
    ) -> (InMemoryAnalytics, GuestKernel) {
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(tmem_pages, tmem_pages);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", ram_pages * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages,
            os_reserved_pages: 2,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        let mut disk = SharedDisk::default();
        let cost = CostModel::hdd();
        let mut w = InMemoryAnalytics::new(config);
        for _ in 0..2_000_000 {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            if w.step(&mut kernel, &mut m) == StepOutcome::Done {
                return (w, kernel);
            }
        }
        panic!("workload did not complete");
    }

    #[test]
    fn training_reduces_rmse_below_trivial_predictor() {
        let (w, kernel) = run_to_completion(small_config(), 512, 512);
        let rmse = w.rmse().expect("evaluation ran");
        // The zero-factor predictor's RMSE equals the rating RMS (≈ 2.8 for
        // a 0.5–5 distribution); training must beat it comfortably.
        assert!(rmse < 1.6, "rmse={rmse}");
        assert_eq!(kernel.resident_pages(), 0, "memory released");
    }

    #[test]
    fn result_is_identical_under_memory_pressure() {
        // Same seed, vastly different memory conditions: paging must not
        // change the computation's outcome, only its cost.
        let (comfortable, _) = run_to_completion(small_config(), 512, 512);
        let (pressured, kernel) = run_to_completion(small_config(), 48, 24);
        assert_eq!(comfortable.rmse(), pressured.rmse());
        assert!(
            kernel.stats().evictions_to_tmem > 0 || kernel.stats().evictions_to_disk > 0,
            "the pressured run really did swap"
        );
    }

    #[test]
    fn footprint_sizing_is_close_to_target() {
        let cfg = InMemoryAnalyticsConfig::with_footprint(64 << 20, 1);
        let got = cfg.footprint_bytes() as f64;
        let want = (64u64 << 20) as f64;
        assert!(
            (got / want - 1.0).abs() < 0.15,
            "footprint {got} vs target {want}"
        );
    }

    #[test]
    fn milestones_mark_phases() {
        let (mut w, _) = run_to_completion(small_config(), 512, 512);
        let labels: Vec<_> = w.drain_milestones().into_iter().map(|m| m.0).collect();
        assert!(labels.contains(&"loaded".to_string()));
        assert!(labels.contains(&"epoch:3".to_string()));
    }
}
