//! The `usemem` micro-benchmark, verbatim from the paper (§IV):
//!
//! "Usemem is a synthetic micro-benchmark that allocates an incremental
//! amount of memory as it executes, starting from 128MB and increasing it
//! by 128MB increments. Once it allocates a region of memory, it traverses
//! it linearly performing write/read operations. Once it completes a run
//! through a region, it then allocates a larger block, until it reaches
//! 1GB. Once there, Usemem stops increasing the allocation but continues to
//! write/read on the 1GB of memory allocated until stopped."
//!
//! Milestones:
//! * `alloc:<MiB>` — emitted when the benchmark *attempts* to allocate a
//!   block of that size (the Usemem scenario's cross-VM triggers key on
//!   these),
//! * `block:<MiB>` — emitted when the write+read traversal of that block
//!   completes (Fig. 7's per-allocation running times are the spans between
//!   consecutive milestones).

use crate::traits::{Milestone, StepOutcome, Workload};
use guest_os::kernel::GuestKernel;
use guest_os::machine::Machine;
use guest_os::paged::PagedVec;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use tmem::page::PAGE_SIZE;

/// Sizing of the usemem progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsememConfig {
    /// First block size in bytes (paper: 128 MB).
    pub start_bytes: u64,
    /// Increment per block in bytes (paper: 128 MB).
    pub step_bytes: u64,
    /// Final block size in bytes (paper: 1 GB).
    pub max_bytes: u64,
    /// Compute per page traversed (the per-word read/write loop: ~512
    /// words of work per 4 KiB page).
    pub compute_per_page: SimDuration,
    /// Full traversals to perform at the maximum block size before
    /// finishing. The paper's usemem runs "until stopped" (`u64::MAX`);
    /// fleet scenarios bound it so a cell terminates on its own.
    pub max_steady_passes: u64,
}

impl UsememConfig {
    /// The paper's parameters scaled by `scale` (1.0 = paper size).
    pub fn paper(scale: f64) -> Self {
        let mb = |m: u64| ((m as f64 * scale) as u64 * (1 << 20) as u64).max(PAGE_SIZE as u64);
        UsememConfig {
            start_bytes: mb(128),
            step_bytes: mb(128),
            max_bytes: mb(1024),
            compute_per_page: SimDuration::from_micros(2),
            max_steady_passes: u64::MAX,
        }
    }
}

#[derive(Debug)]
enum Phase {
    /// About to allocate a block of the given size.
    StartBlock(u64),
    /// Linear write pass over the current block.
    Write {
        pos: usize,
    },
    /// Linear read pass over the current block.
    Read {
        pos: usize,
    },
    /// At max size: keep traversing until stopped.
    Steady {
        pos: usize,
        writing: bool,
    },
    Finished,
}

/// The usemem workload.
#[derive(Debug)]
pub struct Usemem {
    config: UsememConfig,
    phase: Phase,
    block_bytes: u64,
    block: Option<PagedVec<u64>>,
    milestones: Vec<Milestone>,
    checksum: u64,
    steady_passes: u64,
}

impl Usemem {
    /// A fresh usemem instance.
    pub fn new(config: UsememConfig) -> Self {
        assert!(config.start_bytes >= PAGE_SIZE as u64);
        assert!(config.step_bytes >= PAGE_SIZE as u64);
        assert!(config.max_bytes >= config.start_bytes);
        Usemem {
            phase: Phase::StartBlock(config.start_bytes),
            config,
            block_bytes: 0,
            block: None,
            milestones: Vec::new(),
            checksum: 0,
            steady_passes: 0,
        }
    }

    /// Traversal checksum (proof the reads really happened).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Full traversals completed at the maximum block size.
    pub fn steady_passes(&self) -> u64 {
        self.steady_passes
    }

    fn pages_of(&self, bytes: u64) -> usize {
        (bytes / PAGE_SIZE as u64) as usize
    }

    fn free_block(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        if let Some(b) = self.block.take() {
            b.free(kernel, m);
        }
    }
}

impl Workload for Usemem {
    fn name(&self) -> &str {
        "usemem"
    }

    fn step(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) -> StepOutcome {
        loop {
            if m.budget.exhausted() {
                return StepOutcome::Runnable;
            }
            match self.phase {
                Phase::StartBlock(bytes) => {
                    self.milestones
                        .push(Milestone(format!("alloc:{}", bytes >> 20)));
                    self.free_block(kernel, m);
                    let pages = self.pages_of(bytes);
                    // One u64 per page: usemem touches whole pages.
                    self.block = Some(PagedVec::new(kernel, pages, PAGE_SIZE));
                    self.block_bytes = bytes;
                    self.phase = Phase::Write { pos: 0 };
                }
                Phase::Write { ref mut pos } => {
                    let block = self.block.as_mut().expect("write phase has a block");
                    while *pos < block.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        block.set(*pos, (*pos as u64) ^ self.block_bytes, kernel, m);
                        m.budget.charge_compute(self.config.compute_per_page);
                        *pos += 1;
                    }
                    self.phase = Phase::Read { pos: 0 };
                }
                Phase::Read { ref mut pos } => {
                    let block = self.block.as_ref().expect("read phase has a block");
                    while *pos < block.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        self.checksum = self.checksum.wrapping_add(block.get(*pos, kernel, m));
                        m.budget.charge_compute(self.config.compute_per_page);
                        *pos += 1;
                    }
                    self.milestones
                        .push(Milestone(format!("block:{}", self.block_bytes >> 20)));
                    if self.block_bytes >= self.config.max_bytes {
                        self.phase = Phase::Steady {
                            pos: 0,
                            writing: true,
                        };
                    } else {
                        let next =
                            (self.block_bytes + self.config.step_bytes).min(self.config.max_bytes);
                        self.phase = Phase::StartBlock(next);
                    }
                }
                Phase::Steady {
                    ref mut pos,
                    ref mut writing,
                } => {
                    let block = self.block.as_mut().expect("steady phase has a block");
                    while *pos < block.len() {
                        if m.budget.exhausted() {
                            return StepOutcome::Runnable;
                        }
                        if *writing {
                            block.set(*pos, (*pos as u64).rotate_left(7), kernel, m);
                        } else {
                            self.checksum = self.checksum.wrapping_add(block.get(*pos, kernel, m));
                        }
                        m.budget.charge_compute(self.config.compute_per_page);
                        *pos += 1;
                    }
                    *pos = 0;
                    *writing = !*writing;
                    self.steady_passes += 1;
                    if self.steady_passes >= self.config.max_steady_passes {
                        self.milestones.push(Milestone("steady-done".into()));
                        self.free_block(kernel, m);
                        self.phase = Phase::Finished;
                    }
                }
                Phase::Finished => return StepOutcome::Done,
            }
        }
    }

    fn drain_milestones(&mut self) -> Vec<Milestone> {
        std::mem::take(&mut self.milestones)
    }

    fn abort(&mut self, kernel: &mut GuestKernel, m: &mut Machine<'_>) {
        self.free_block(kernel, m);
        self.phase = Phase::Finished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_os::budget::StepBudget;
    use guest_os::disk::SharedDisk;
    use guest_os::kernel::GuestConfig;
    use sim_core::cost::CostModel;
    use sim_core::time::{SimDuration, SimTime};
    use tmem::backend::PoolKind;
    use tmem::key::VmId;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;
    use xen_sim::vm::VmConfig;

    struct Rig {
        hyp: Hypervisor<Fingerprint>,
        disk: SharedDisk,
        cost: CostModel,
        kernel: GuestKernel,
    }

    fn rig(ram_pages: u64, tmem_pages: u64) -> Rig {
        let mut hyp = Hypervisor::new(tmem_pages, tmem_pages);
        hyp.register_vm(VmConfig::new(VmId(1), "VM1", ram_pages * 4096, 1));
        let pool = hyp.new_pool(VmId(1), PoolKind::Persistent).unwrap();
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: VmId(1),
            ram_pages,
            os_reserved_pages: 2,
            readahead_pages: 8,
            frontswap_enabled: true,
        });
        kernel.attach_frontswap(pool);
        Rig {
            hyp,
            disk: SharedDisk::default(),
            cost: CostModel::hdd(),
            kernel,
        }
    }

    fn run_until_steady(rig: &mut Rig, w: &mut Usemem, max_steps: u32) -> Vec<String> {
        let mut labels = Vec::new();
        for _ in 0..max_steps {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut rig.hyp,
                disk: &mut rig.disk,
                cost: &rig.cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            let out = w.step(&mut rig.kernel, &mut m);
            labels.extend(w.drain_milestones().into_iter().map(|ms| ms.0));
            if w.steady_passes() >= 2 || out == StepOutcome::Done {
                break;
            }
        }
        labels
    }

    /// Tiny config: blocks of 4/8/12 pages.
    fn tiny() -> UsememConfig {
        UsememConfig {
            start_bytes: 4 * 4096,
            step_bytes: 4 * 4096,
            max_bytes: 12 * 4096,
            compute_per_page: SimDuration::from_micros(2),
            max_steady_passes: u64::MAX,
        }
    }

    #[test]
    fn bounded_steady_state_finishes_and_frees() {
        let mut rig = rig(64, 64);
        let mut w = Usemem::new(UsememConfig {
            max_steady_passes: 3,
            ..tiny()
        });
        let mut done = false;
        for _ in 0..10_000 {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut rig.hyp,
                disk: &mut rig.disk,
                cost: &rig.cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            if w.step(&mut rig.kernel, &mut m) == StepOutcome::Done {
                done = true;
                break;
            }
        }
        assert!(done, "bounded usemem must terminate on its own");
        assert_eq!(w.steady_passes(), 3);
        assert_eq!(
            rig.kernel.resident_pages(),
            0,
            "finishing frees the final block"
        );
    }

    #[test]
    fn progression_emits_paper_milestones_in_order() {
        let mut rig = rig(64, 64);
        let mut w = Usemem::new(tiny());
        let labels = run_until_steady(&mut rig, &mut w, 10_000);
        // alloc:0 because tiny blocks are <1 MiB; the order is what matters.
        let allocs: Vec<_> = labels.iter().filter(|l| l.starts_with("alloc")).collect();
        let blocks: Vec<_> = labels.iter().filter(|l| l.starts_with("block")).collect();
        assert_eq!(allocs.len(), 3, "three allocation attempts: {labels:?}");
        assert_eq!(blocks.len(), 3, "three completed traversals");
        assert!(w.steady_passes() >= 2, "keeps traversing at max size");
        let mut b = StepBudget::new(SimDuration::from_secs(1));
        let mut m = Machine {
            hyp: &mut rig.hyp,
            disk: &mut rig.disk,
            cost: &rig.cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        w.abort(&mut rig.kernel, &mut m);
        assert_eq!(rig.kernel.resident_pages(), 0, "abort frees everything");
    }

    #[test]
    fn blocks_replace_rather_than_accumulate() {
        let mut rig = rig(64, 64);
        let mut w = Usemem::new(tiny());
        run_until_steady(&mut rig, &mut w, 10_000);
        // At steady state only the max block (12 pages) is live.
        assert!(
            rig.kernel.resident_pages() <= 12,
            "resident={} but max block is 12 pages",
            rig.kernel.resident_pages()
        );
        let mut b = StepBudget::new(SimDuration::from_secs(1));
        let mut m = Machine {
            hyp: &mut rig.hyp,
            disk: &mut rig.disk,
            cost: &rig.cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        w.abort(&mut rig.kernel, &mut m);
    }

    #[test]
    fn memory_pressure_reaches_tmem() {
        // RAM smaller than the max block: the traversal must swap.
        let mut rig = rig(8, 64);
        let mut w = Usemem::new(tiny());
        run_until_steady(&mut rig, &mut w, 50_000);
        assert!(rig.kernel.stats().evictions_to_tmem > 0);
        assert!(rig.kernel.stats().tmem_faults > 0);
        let mut b = StepBudget::new(SimDuration::from_secs(1));
        let mut m = Machine {
            hyp: &mut rig.hyp,
            disk: &mut rig.disk,
            cost: &rig.cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        w.abort(&mut rig.kernel, &mut m);
    }

    #[test]
    fn paper_config_scales() {
        let c = UsememConfig::paper(1.0);
        assert_eq!(c.start_bytes, 128 << 20);
        assert_eq!(c.max_bytes, 1 << 30);
        let s = UsememConfig::paper(0.25);
        assert_eq!(s.start_bytes, 32 << 20);
        assert_eq!(s.max_bytes, 256 << 20);
    }
}
