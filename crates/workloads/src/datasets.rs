//! Synthetic dataset generators.
//!
//! The paper's workloads consume two public datasets we substitute with
//! statistically similar synthetic ones (see DESIGN.md §2):
//!
//! * **MovieLens-shaped ratings** (Harper & Konstan) for
//!   in-memory-analytics: `(user, item, rating)` triples where item
//!   popularity follows a Zipf law — the skew that makes some factor rows
//!   hot — and users rate in bursts.
//! * **soc-twitter-follows-shaped graph** (Rossi & Ahmed) for
//!   graph-analytics: a Chung–Lu style power-law multigraph, degree
//!   exponent ≈ 2, stored as an edge list for CSR assembly.
//!
//! Generators are deterministic in the seed and O(output) in time.

use sim_core::rng::SplitMix64;

/// A synthetic rating triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rating {
    /// User index in `[0, n_users)`.
    pub user: u32,
    /// Item index in `[0, n_items)`.
    pub item: u32,
    /// Rating value in `[0.5, 5.0]`.
    pub value: f32,
}

/// Zipf-ish sampler over `[0, n)` via the inverse-power method: cheap,
/// deterministic and heavy enough in the head to create hot items.
fn zipf_sample(rng: &mut SplitMix64, n: u32, skew: f64) -> u32 {
    debug_assert!(n > 0);
    let u = rng.next_f64().max(1e-12);
    // Inverse CDF of a continuous power-law on [1, n].
    let x = ((n as f64).powf(1.0 - skew) * u + (1.0 - u)).powf(1.0 / (1.0 - skew));
    (x as u32).min(n - 1)
}

/// Generate `n_ratings` MovieLens-shaped ratings.
pub fn movielens_ratings(seed: u64, n_users: u32, n_items: u32, n_ratings: usize) -> Vec<Rating> {
    assert!(n_users > 0 && n_items > 0);
    let mut rng = SplitMix64::new(seed).derive("movielens");
    let mut out = Vec::with_capacity(n_ratings);
    // Users rate in bursts: pick a user, emit a geometric burst of ratings
    // over Zipf-popular items. This clusters a user's ratings together in
    // the array, like a timestamp-sorted export.
    while out.len() < n_ratings {
        let user = rng.next_below(u64::from(n_users)) as u32;
        let burst = 1 + rng.next_below(16) as usize;
        for _ in 0..burst.min(n_ratings - out.len()) {
            let item = zipf_sample(&mut rng, n_items, 1.1);
            // Ratings cluster around per-item "quality" plus user noise.
            let quality = 2.5 + 2.0 * ((item as f64 * 0.61803).fract() - 0.5);
            let noise = rng.next_f64() * 2.0 - 1.0;
            let value = (quality + noise).clamp(0.5, 5.0) as f32;
            out.push(Rating { user, item, value });
        }
    }
    out
}

/// Generate a power-law directed multigraph with `n_nodes` nodes and
/// `n_edges` edges as an unsorted edge list (Chung–Lu style: endpoints
/// sampled with probability proportional to a power-law weight).
pub fn powerlaw_edges(seed: u64, n_nodes: u32, n_edges: usize) -> Vec<(u32, u32)> {
    assert!(n_nodes > 1);
    let mut rng = SplitMix64::new(seed).derive("powerlaw-graph");
    let mut out = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        // Sources are mildly skewed (active followers), destinations
        // heavily skewed (celebrity accounts) — the soc-twitter-follows
        // shape.
        let src = zipf_sample(&mut rng, n_nodes, 1.05);
        let mut dst = zipf_sample(&mut rng, n_nodes, 1.8);
        if dst == src {
            dst = (dst + 1) % n_nodes;
        }
        out.push((src, dst));
    }
    out
}

/// Assemble an edge list into CSR form: `(offsets, targets)` where node
/// `v`'s out-neighbours are `targets[offsets[v]..offsets[v+1]]`.
pub fn to_csr(n_nodes: u32, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let n = n_nodes as usize;
    let mut degree = vec![0u32; n];
    for &(s, _) in edges {
        degree[s as usize] += 1;
    }
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0u32; edges.len()];
    for &(s, d) in edges {
        let c = &mut cursor[s as usize];
        targets[*c as usize] = d;
        *c += 1;
    }
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratings_are_deterministic_and_in_range() {
        let a = movielens_ratings(7, 100, 50, 1000);
        let b = movielens_ratings(7, 100, 50, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|r| r.user < 100 && r.item < 50));
        assert!(a.iter().all(|r| (0.5..=5.0).contains(&r.value)));
    }

    #[test]
    fn ratings_item_popularity_is_skewed() {
        let ratings = movielens_ratings(3, 1000, 500, 50_000);
        let mut counts = vec![0u32; 500];
        for r in &ratings {
            counts[r.item as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts[..10].iter().sum();
        let total: u32 = counts.iter().sum();
        assert!(
            f64::from(top10) / f64::from(total) > 0.10,
            "top-10 items should capture a disproportionate share"
        );
    }

    #[test]
    fn graph_is_deterministic_with_skewed_in_degree() {
        let a = powerlaw_edges(5, 10_000, 100_000);
        let b = powerlaw_edges(5, 10_000, 100_000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, d)| s < 10_000 && d < 10_000 && s != d));
        let mut indeg = vec![0u32; 10_000];
        for &(_, d) in &a {
            indeg[d as usize] += 1;
        }
        indeg.sort_unstable_by(|x, y| y.cmp(x));
        let top: u32 = indeg[..100].iter().sum();
        assert!(
            f64::from(top) / 100_000.0 > 0.3,
            "top-1% nodes should attract a large share of edges"
        );
    }

    #[test]
    fn csr_roundtrips_the_edge_list() {
        let edges = vec![(0u32, 1u32), (0, 2), (2, 0), (1, 2)];
        let (offsets, targets) = to_csr(3, &edges);
        assert_eq!(offsets, vec![0, 2, 3, 4]);
        // Node 0's neighbours.
        let n0: Vec<u32> = targets[offsets[0] as usize..offsets[1] as usize].to_vec();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(targets[offsets[2] as usize..offsets[3] as usize], [0]);
        assert_eq!(targets.len(), edges.len());
    }

    #[test]
    fn zipf_sampler_stays_in_bounds() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(zipf_sample(&mut rng, 37, 1.5) < 37);
        }
    }
}
