//! Shared application-behaviour modelling for the CloudSuite stand-ins.
//!
//! Three effects make a Spark application on a 1-vCPU VM more than a bare
//! page-reference stream, and all three matter for reproducing the paper's
//! *relative* numbers:
//!
//! * **per-element compute** — JVM execution costs microseconds per record,
//!   so paging overhead is a fraction of runtime, not a multiplier of it
//!   (the paper's no-tmem penalty is 20–40%, not 6×);
//! * **input I/O** — datasets are read from the (shared!) virtual disk at
//!   load time, coupling co-located VMs through the disk even when they do
//!   not swap;
//! * **GC / scheduling pauses** — between epochs or supersteps the
//!   application computes without touching its big arrays; during such
//!   windows a VM stops issuing tmem puts, which is exactly when
//!   smart-alloc's shrink path reclaims capacity for its neighbours.

use guest_os::machine::Machine;
use sim_core::time::SimDuration;

/// Streams a dataset in from the virtual disk during a load phase.
///
/// Reads are issued in 128 KiB sequential bursts (32 pages), matching
/// buffered sequential file I/O, and charged as blocking I/O — so a VM
/// loading its input competes for the disk with every VM swapping to it.
#[derive(Debug, Clone, Copy)]
pub struct InputReader {
    bytes_per_element: u64,
    pending_bytes: u64,
    /// Bytes accumulated toward the next burst.
    acc: u64,
}

/// Pages per input read burst.
const BURST_PAGES: u64 = 32;
const BURST_BYTES: u64 = BURST_PAGES * 4096;

impl InputReader {
    /// A reader for a dataset of `total_elements` × `bytes_per_element`.
    pub fn new(total_elements: u64, bytes_per_element: u64) -> Self {
        InputReader {
            bytes_per_element,
            pending_bytes: total_elements * bytes_per_element,
            acc: 0,
        }
    }

    /// Account one element consumed; issues a burst read when 128 KiB of
    /// input has accumulated. Call once per element during the load phase.
    #[inline]
    pub fn consume(&mut self, m: &mut Machine<'_>) {
        if self.pending_bytes == 0 {
            return;
        }
        let take = self.bytes_per_element.min(self.pending_bytes);
        self.pending_bytes -= take;
        self.acc += take;
        if self.acc >= BURST_BYTES || self.pending_bytes == 0 {
            let pages = self.acc.div_ceil(4096);
            self.acc = 0;
            let wait = m.disk.read(m.approx_now(), pages, true, m.cost);
            m.budget.charge_io(wait);
        }
    }

    /// Input bytes not yet read.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }
}

/// A GC/scheduling pause: pure compute, consumed quantum by quantum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pause {
    remaining: SimDuration,
}

impl Pause {
    /// Arm a pause of length `d` (adds to any remaining pause).
    pub fn arm(&mut self, d: SimDuration) {
        self.remaining += d;
    }

    /// True while pause time remains.
    pub fn active(&self) -> bool {
        self.remaining > SimDuration::ZERO
    }

    /// Burn pause time against the step budget; returns `true` when the
    /// pause completed within this step.
    pub fn consume(&mut self, m: &mut Machine<'_>) -> bool {
        while self.active() && !m.budget.exhausted() {
            let room = m.budget.quantum.saturating_sub(m.budget.compute);
            let chunk = if room == SimDuration::ZERO {
                m.budget.quantum
            } else {
                room
            }
            .min(self.remaining);
            m.budget.charge_compute(chunk);
            self.remaining = self.remaining.saturating_sub(chunk);
        }
        !self.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_os::budget::StepBudget;
    use guest_os::disk::SharedDisk;
    use sim_core::cost::CostModel;
    use sim_core::time::SimTime;
    use tmem::page::Fingerprint;
    use xen_sim::hypervisor::Hypervisor;

    fn rig() -> (Hypervisor<Fingerprint>, SharedDisk, CostModel) {
        (
            Hypervisor::new(16, 16),
            SharedDisk::default(),
            CostModel::hdd(),
        )
    }

    #[test]
    fn input_reader_issues_bursts_of_32_pages() {
        let (mut hyp, mut disk, cost) = rig();
        // 64 elements × 4096 B = 256 KiB = exactly two bursts.
        let mut reader = InputReader::new(64, 4096);
        let mut b = StepBudget::new(SimDuration::from_secs(3600));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        for _ in 0..64 {
            reader.consume(&mut m);
        }
        assert_eq!(reader.pending_bytes(), 0);
        assert_eq!(disk.reads(), 2);
        assert!(b.io_wait > SimDuration::ZERO);
    }

    #[test]
    fn input_reader_flushes_the_tail() {
        let (mut hyp, mut disk, cost) = rig();
        // 5 KiB of input: far less than a burst, still must be read.
        let mut reader = InputReader::new(5, 1024);
        let mut b = StepBudget::new(SimDuration::from_secs(3600));
        let mut m = Machine {
            hyp: &mut hyp,
            disk: &mut disk,
            cost: &cost,
            now: SimTime::ZERO,
            budget: &mut b,
        };
        for _ in 0..5 {
            reader.consume(&mut m);
        }
        assert_eq!(reader.pending_bytes(), 0);
        assert_eq!(disk.reads(), 1);
    }

    #[test]
    fn pause_spans_multiple_quanta() {
        let (mut hyp, mut disk, cost) = rig();
        let mut pause = Pause::default();
        pause.arm(SimDuration::from_millis(10));
        let mut steps = 0;
        loop {
            let mut b = StepBudget::new(SimDuration::from_millis(1));
            let mut m = Machine {
                hyp: &mut hyp,
                disk: &mut disk,
                cost: &cost,
                now: SimTime::ZERO,
                budget: &mut b,
            };
            steps += 1;
            if pause.consume(&mut m) {
                break;
            }
            assert!(b.compute >= SimDuration::from_millis(1));
        }
        assert_eq!(steps, 10, "10 ms of pause at 1 ms quanta");
        assert!(!pause.active());
    }
}
