//! Bounded statistics history.
//!
//! The MM "keeps track of this information across time, generating a
//! history of how the VMs use tmem" (paper §III-D). The paper's three
//! policies only need the latest snapshot (the cumulative counters carry
//! the relevant past), but the history is the extension point for the
//! "more sophisticated tmem memory policies" the conclusion calls for —
//! e.g. demand prediction over a window. It also powers report generation.

use std::collections::VecDeque;
use tmem::fastmap::FxHashMap;
use tmem::key::VmId;
use tmem::stats::MemStats;

/// Classification of an incoming snapshot's sequence number against the
/// history's high-water mark. See [`StatsHistory::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqObservation {
    /// A new snapshot, possibly after a gap — safe to process.
    Fresh,
    /// Same sequence as the last processed snapshot (duplicated in the
    /// relay) — discard idempotently.
    Duplicate,
    /// Older than the last processed snapshot (reordered in the relay) —
    /// discard; newer data already informed the policy.
    Stale,
}

/// A FIFO-bounded window of statistics snapshots.
#[derive(Debug, Default)]
pub struct StatsHistory {
    window: VecDeque<MemStats>,
    limit: usize,
    last_seq: Option<u64>,
    gaps: u64,
    missed: u64,
    /// Per-VM `(intervals present, failed-put sum)` over the retained
    /// window, maintained incrementally on push/evict. Each update touches
    /// only the VMs that appear in the snapshot crossing the window edge,
    /// so windowed queries stay O(1) however many VMs or intervals the
    /// history holds — at fleet scale a rescan would be O(window × VMs)
    /// per interval.
    failed_puts_agg: FxHashMap<VmId, (u64, u64)>,
}

impl StatsHistory {
    /// History retaining at most `limit` snapshots (0 disables retention).
    pub fn new(limit: usize) -> Self {
        StatsHistory {
            window: VecDeque::with_capacity(limit.min(4096)),
            limit,
            last_seq: None,
            gaps: 0,
            missed: 0,
            failed_puts_agg: FxHashMap::default(),
        }
    }

    /// Classify snapshot sequence `seq` against the last one processed,
    /// advancing the high-water mark and the gap statistics when it is
    /// fresh. The relay path may drop, delay or duplicate samples; the MM
    /// calls this before ingesting so duplicates and stale reorders are
    /// discarded idempotently and loss is visible as gap counts.
    pub fn observe(&mut self, seq: u64) -> SeqObservation {
        match self.last_seq {
            Some(last) if seq == last => SeqObservation::Duplicate,
            Some(last) if seq < last => SeqObservation::Stale,
            Some(last) => {
                if seq > last + 1 {
                    self.gaps += 1;
                    self.missed += seq - last - 1;
                }
                self.last_seq = Some(seq);
                SeqObservation::Fresh
            }
            None => {
                self.last_seq = Some(seq);
                SeqObservation::Fresh
            }
        }
    }

    /// Highest snapshot sequence processed so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Number of sequence gaps detected (each may span several samples).
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Total samples known missing across all gaps.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Append a snapshot, evicting the oldest beyond the limit. Windowed
    /// aggregates are updated for exactly the VMs present in the incoming
    /// (and, at capacity, the evicted) snapshot.
    pub fn push(&mut self, stats: MemStats) {
        if self.limit == 0 {
            return;
        }
        if self.window.len() == self.limit {
            let old = self.window.pop_front().expect("len == limit > 0");
            for v in &old.vms {
                if let Some(e) = self.failed_puts_agg.get_mut(&v.vm_id) {
                    e.0 -= 1;
                    e.1 -= v.failed_puts();
                    if e.0 == 0 {
                        self.failed_puts_agg.remove(&v.vm_id);
                    }
                }
            }
        }
        for v in &stats.vms {
            let e = self.failed_puts_agg.entry(v.vm_id).or_insert((0, 0));
            e.0 += 1;
            e.1 += v.failed_puts();
        }
        self.window.push_back(stats);
    }

    /// Snapshots currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &MemStats> {
        self.window.iter()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Most recent snapshot.
    pub fn latest(&self) -> Option<&MemStats> {
        self.window.back()
    }

    /// Mean failed puts per interval for `vm` over the retained window —
    /// the kind of windowed signal a predictive policy would use. O(1):
    /// served from the incrementally-maintained aggregate, bit-identical
    /// to a window rescan (same integer sum over the same count).
    pub fn mean_failed_puts(&self, vm: VmId) -> Option<f64> {
        self.failed_puts_agg
            .get(&vm)
            .map(|&(n, sum)| sum as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::stats::{NodeInfo, VmStat};

    fn snap(t: u64, failed: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(t),
            node: NodeInfo {
                total_tmem: 100,
                free_tmem: 100,
                vm_count: 1,
            },
            vms: vec![VmStat {
                vm_id: VmId(1),
                puts_total: failed,
                puts_succ: 0,
                gets_total: 0,
                gets_succ: 0,
                flushes: 0,
                tmem_used: 0,
                mm_target: 0,
                cumul_puts_failed: failed,
            }],
        }
    }

    #[test]
    fn bounded_fifo() {
        let mut h = StatsHistory::new(3);
        for t in 0..5 {
            h.push(snap(t, 0));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter().next().unwrap().at, SimTime::from_secs(2));
        assert_eq!(h.latest().unwrap().at, SimTime::from_secs(4));
    }

    #[test]
    fn zero_limit_disables_retention() {
        let mut h = StatsHistory::new(0);
        h.push(snap(0, 0));
        assert!(h.is_empty());
        assert!(h.latest().is_none());
    }

    #[test]
    fn observe_classifies_and_counts_gaps() {
        let mut h = StatsHistory::new(4);
        assert_eq!(h.observe(1), SeqObservation::Fresh);
        assert_eq!(h.observe(2), SeqObservation::Fresh);
        assert_eq!(h.observe(2), SeqObservation::Duplicate);
        assert_eq!(h.observe(1), SeqObservation::Stale);
        assert_eq!(h.gaps(), 0);
        // Samples 3 and 4 lost: one gap, two missed.
        assert_eq!(h.observe(5), SeqObservation::Fresh);
        assert_eq!(h.gaps(), 1);
        assert_eq!(h.missed(), 2);
        assert_eq!(h.last_seq(), Some(5));
    }

    #[test]
    fn mean_failed_puts_over_window() {
        let mut h = StatsHistory::new(10);
        for f in [2, 4, 6] {
            h.push(snap(f, f));
        }
        assert_eq!(h.mean_failed_puts(VmId(1)), Some(4.0));
        assert_eq!(h.mean_failed_puts(VmId(9)), None, "unknown VM");
    }

    #[test]
    fn mean_failed_puts_tracks_evictions() {
        let mut h = StatsHistory::new(2);
        for f in [2, 4, 6] {
            h.push(snap(f, f));
        }
        // Window is [4, 6]: the evicted snapshot (2) must leave the mean.
        assert_eq!(h.mean_failed_puts(VmId(1)), Some(5.0));
        // Evict everything mentioning VmId(1): aggregate entry must vanish.
        let mut empty = snap(9, 0);
        empty.vms.clear();
        h.push(empty.clone());
        h.push(empty);
        assert_eq!(h.mean_failed_puts(VmId(1)), None);
    }
}
