//! The fleet scheduler: MM-grade placement decisions across hosts.
//!
//! A multi-host cluster shards the node-level tmem story across N
//! independent hosts, each running its own hypervisor + TKM + Memory
//! Manager. What no single-host MM can see is *imbalance between hosts*:
//! one host's guests thrashing against a full pool while another host
//! strands free tmem pages. The [`FleetManager`] is the cross-host
//! analogue of the paper's MM — it consumes per-host pressure vectors
//! every sampling interval and, when the spread between the hottest and
//! coolest host exceeds a threshold, picks one VM to migrate.
//!
//! The decision procedure is deliberately simple and fully deterministic
//! (no RNG, total tie-break order):
//!
//! 1. pressure of host `h` = `(used + failed_puts_delta) / capacity` —
//!    occupancy plus this interval's admission failures, so a host that is
//!    full *and still being asked for more* ranks above one that is merely
//!    full,
//! 2. wait out `min_history` intervals of warm-up and `cooldown_intervals`
//!    after each migration (migrations are expensive; back-to-back moves
//!    oscillate),
//! 3. if `pressure(hottest) - pressure(coolest) > divergence_threshold`,
//!    migrate the largest VM on the hottest host that fits in the coolest
//!    host's free pages — or, when none fits, the smallest non-empty VM
//!    (shedding *something* beats shedding nothing).
//!
//! Ties (equal pressure, equal size) break toward the lower host index and
//! the lower [`VmId`], in that order.

use serde::{Deserialize, Serialize};
use tmem::key::VmId;

/// Tunables of the fleet scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Minimum pressure spread between hottest and coolest host before a
    /// migration is considered. Pressure is a ratio of capacity, so 0.25
    /// means "a quarter of a host's tmem".
    pub divergence_threshold: f64,
    /// Intervals to wait after a migration before considering another.
    pub cooldown_intervals: u64,
    /// Intervals of warm-up before the first migration may fire.
    pub min_history: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            divergence_threshold: 0.25,
            cooldown_intervals: 5,
            min_history: 3,
        }
    }
}

/// One host's load as seen at an interval close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostLoad {
    /// Pages in use (local tmem + far tier).
    pub used: u64,
    /// Local tmem capacity in pages.
    pub capacity: u64,
    /// Failed puts across the host's resident VMs since the previous
    /// interval.
    pub failed_puts_delta: u64,
}

impl HostLoad {
    /// The scheduler's pressure metric for this host.
    pub fn pressure(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        (self.used + self.failed_puts_delta) as f64 / self.capacity as f64
    }

    /// Free local pages.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }
}

/// A migratable VM's current placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmPlacement {
    /// The VM.
    pub vm: VmId,
    /// Host it currently resides on.
    pub host: usize,
    /// Pages it holds there (local + far).
    pub used: u64,
}

/// One migration the scheduler wants executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The VM to move.
    pub vm: VmId,
    /// Source host.
    pub from: usize,
    /// Destination host.
    pub to: usize,
}

/// The cross-host scheduler. Feed it one [`FleetManager::decide`] call per
/// sampling interval; it returns at most one [`MigrationPlan`] and applies
/// its own warm-up and cooldown pacing.
#[derive(Debug, Clone)]
pub struct FleetManager {
    cfg: FleetConfig,
    intervals_seen: u64,
    last_migration_at: Option<u64>,
}

impl FleetManager {
    /// A fresh scheduler.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetManager {
            cfg,
            intervals_seen: 0,
            last_migration_at: None,
        }
    }

    /// Intervals observed so far.
    pub fn intervals(&self) -> u64 {
        self.intervals_seen
    }

    /// One scheduling cycle. `loads` is indexed by host; `vms` lists every
    /// *migratable* VM (callers exclude VMs whose lifecycle state pins
    /// them). Deterministic: identical inputs yield identical plans.
    pub fn decide(&mut self, loads: &[HostLoad], vms: &[VmPlacement]) -> Option<MigrationPlan> {
        self.intervals_seen += 1;
        if loads.len() < 2 || self.intervals_seen < self.cfg.min_history {
            return None;
        }
        if let Some(at) = self.last_migration_at {
            if self.intervals_seen - at <= self.cfg.cooldown_intervals {
                return None;
            }
        }
        // Hottest and coolest host; ties break to the lower index because
        // strict comparison never replaces an equal earlier candidate.
        let mut hot = 0usize;
        let mut cool = 0usize;
        for h in 1..loads.len() {
            if loads[h].pressure() > loads[hot].pressure() {
                hot = h;
            }
            if loads[h].pressure() < loads[cool].pressure() {
                cool = h;
            }
        }
        if hot == cool
            || loads[hot].pressure() - loads[cool].pressure() <= self.cfg.divergence_threshold
        {
            return None;
        }
        let dest_free = loads[cool].free();
        // Largest resident VM that fits in the destination's free local
        // pages; otherwise the smallest non-empty one. VmId breaks ties.
        let mut fitting: Option<VmPlacement> = None;
        let mut smallest: Option<VmPlacement> = None;
        for p in vms.iter().filter(|p| p.host == hot && p.used > 0) {
            if p.used <= dest_free
                && fitting.is_none_or(|f| p.used > f.used || (p.used == f.used && p.vm < f.vm))
            {
                fitting = Some(*p);
            }
            if smallest.is_none_or(|s| p.used < s.used || (p.used == s.used && p.vm < s.vm)) {
                smallest = Some(*p);
            }
        }
        let pick = fitting.or(smallest)?;
        self.last_migration_at = Some(self.intervals_seen);
        Some(MigrationPlan {
            vm: pick.vm,
            from: hot,
            to: cool,
        })
    }
}

/// Stranded free pages this interval: when at least one host rejected puts,
/// every free page on hosts that rejected nothing is capacity the fleet
/// owned but could not bring to bear. Summed per interval by the runner
/// into the `stranded_page_intervals` fleet metric.
pub fn stranded_pages(loads: &[HostLoad]) -> u64 {
    if loads.iter().any(|l| l.failed_puts_delta > 0) {
        loads
            .iter()
            .filter(|l| l.failed_puts_delta == 0)
            .map(|l| l.free())
            .sum()
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> FleetManager {
        FleetManager::new(FleetConfig {
            divergence_threshold: 0.25,
            cooldown_intervals: 2,
            min_history: 1,
        })
    }

    fn load(used: u64, capacity: u64, failed: u64) -> HostLoad {
        HostLoad {
            used,
            capacity,
            failed_puts_delta: failed,
        }
    }

    #[test]
    fn no_migration_below_threshold() {
        let mut m = mgr();
        let loads = [load(50, 100, 0), load(40, 100, 0)];
        let vms = [VmPlacement {
            vm: VmId(1),
            host: 0,
            used: 50,
        }];
        assert_eq!(m.decide(&loads, &vms), None);
    }

    #[test]
    fn pressure_spread_triggers_migration_of_largest_fitting_vm() {
        let mut m = mgr();
        // Destination has only 90 free pages... plenty: the largest VM
        // (60 pages) fits and is preferred over the smaller one.
        let loads = [load(90, 100, 20), load(10, 100, 0)];
        let vms = [
            VmPlacement {
                vm: VmId(1),
                host: 0,
                used: 60,
            },
            VmPlacement {
                vm: VmId(2),
                host: 0,
                used: 30,
            },
        ];
        let plan = m.decide(&loads, &vms).expect("spread is 1.1 vs 0.1");
        assert_eq!(
            plan,
            MigrationPlan {
                vm: VmId(1),
                from: 0,
                to: 1
            }
        );
    }

    #[test]
    fn fitting_vm_preferred_over_smallest() {
        let mut m = mgr();
        // Destination has 40 free pages: VM1 (60) does not fit, VM2 (30)
        // does — the fitting VM wins even though VM1 is larger.
        let loads = [load(95, 100, 30), load(60, 100, 0)];
        let vms = [
            VmPlacement {
                vm: VmId(1),
                host: 0,
                used: 60,
            },
            VmPlacement {
                vm: VmId(2),
                host: 0,
                used: 30,
            },
        ];
        let plan = m.decide(&loads, &vms).unwrap();
        assert_eq!(plan.vm, VmId(2), "largest VM that fits in 40 free pages");
    }

    #[test]
    fn nothing_fits_sheds_the_smallest_nonempty_vm() {
        let mut m = mgr();
        // Destination has 5 free pages: neither VM fits, so the smallest
        // non-empty VM is shed (moving something beats moving nothing).
        let loads = [load(100, 100, 80), load(95, 100, 0)];
        let vms = [
            VmPlacement {
                vm: VmId(1),
                host: 0,
                used: 60,
            },
            VmPlacement {
                vm: VmId(2),
                host: 0,
                used: 30,
            },
        ];
        let plan = m.decide(&loads, &vms).unwrap();
        assert_eq!(plan.vm, VmId(2));
    }

    #[test]
    fn cooldown_suppresses_back_to_back_migrations() {
        let mut m = mgr();
        let loads = [load(95, 100, 50), load(5, 100, 0)];
        let vms = [VmPlacement {
            vm: VmId(1),
            host: 0,
            used: 20,
        }];
        assert!(m.decide(&loads, &vms).is_some());
        for _ in 0..2 {
            assert_eq!(m.decide(&loads, &vms), None, "inside cooldown");
        }
        assert!(m.decide(&loads, &vms).is_some(), "cooldown expired");
    }

    #[test]
    fn warm_up_defers_first_decision() {
        let mut m = FleetManager::new(FleetConfig {
            min_history: 3,
            ..FleetConfig::default()
        });
        let loads = [load(100, 100, 50), load(0, 100, 0)];
        let vms = [VmPlacement {
            vm: VmId(1),
            host: 0,
            used: 50,
        }];
        assert_eq!(m.decide(&loads, &vms), None);
        assert_eq!(m.decide(&loads, &vms), None);
        assert!(m.decide(&loads, &vms).is_some(), "third interval may act");
    }

    #[test]
    fn stranded_counts_free_pages_on_quiet_hosts_only() {
        assert_eq!(
            stranded_pages(&[load(90, 100, 5), load(20, 100, 0), load(50, 100, 0)]),
            80 + 50
        );
        assert_eq!(
            stranded_pages(&[load(90, 100, 0), load(20, 100, 0)]),
            0,
            "nobody failed a put: nothing is stranded"
        );
    }

    #[test]
    fn empty_hot_host_yields_no_plan() {
        let mut m = mgr();
        // Pressure spread comes wholly from failed puts; no VM has pages.
        let loads = [load(0, 100, 80), load(0, 100, 0)];
        assert_eq!(m.decide(&loads, &[]), None);
        // The cooldown clock must not have been armed by a non-migration.
        let vms = [VmPlacement {
            vm: VmId(1),
            host: 0,
            used: 10,
        }];
        assert!(m.decide(&loads, &vms).is_some());
    }
}
