#![warn(missing_docs)]

//! SmarTmem proper: the user-space Memory Manager and its policies.
//!
//! This crate is the paper's primary contribution (§III-D/E): a user-space
//! process in Xen's privileged domain that receives per-second memory
//! statistics from the hypervisor (via the TKM) and computes per-VM tmem
//! capacity targets according to a high-level policy:
//!
//! * [`policy::greedy::Greedy`] — the Xen default: no management, every VM
//!   may take the whole pool (the paper's baseline),
//! * [`policy::static_alloc::StaticAlloc`] — Algorithm 2: equal shares for
//!   all registered VMs,
//! * [`policy::reconf_static::ReconfStatic`] — Algorithm 3: equal shares
//!   for VMs that have actually used tmem,
//! * [`policy::smart_alloc::SmartAlloc`] — Algorithm 4: demand-driven
//!   targets, growing by `P`% of node tmem on failed puts, shrinking on
//!   sustained under-use, rescaled proportionally when over-committed
//!   (Equations 1–2),
//! * `no-tmem` — not a policy but a guest configuration (frontswap
//!   disabled); represented in [`PolicyKind`] so harnesses can sweep it.
//!
//! The [`mm::MemoryManager`] wraps a policy with the paper's
//! `send_to_hypervisor` behaviour: target vectors identical to the last
//! transmission are suppressed to avoid needless communication.

pub mod balloon;
pub mod fleet;
pub mod history;
pub mod mm;
pub mod policy;

pub use balloon::{BalloonAdvice, BalloonConfig, BalloonManager};
pub use fleet::{FleetConfig, FleetManager, HostLoad, MigrationPlan, VmPlacement};
pub use history::{SeqObservation, StatsHistory};
pub use mm::{MemoryManager, REBUILD_WINDOW};
pub use policy::greedy::Greedy;
pub use policy::predictive::{Predictive, PredictiveConfig};
pub use policy::reconf_static::ReconfStatic;
pub use policy::smart_alloc::{SmartAlloc, SmartAllocConfig};
pub use policy::static_alloc::StaticAlloc;
pub use policy::{Policy, PolicyKind};
