//! The Memory Manager (MM) user-space process.
//!
//! Paper §III-D: "the MM receives information from the hypervisor regarding
//! the way the VMs make use of their memory. The MM keeps track of this
//! information across time, generating a history... The MM uses this
//! information to calculate a tmem capacity target per VM according to
//! custom-made high-level policies."
//!
//! The MM also implements the `send_to_hypervisor` contract shared by all
//! the paper's policies: "If no changes are detected, then no transmission
//! takes place, avoiding unnecessary communication overhead."

use crate::history::{SeqObservation, StatsHistory};
use crate::policy::{Policy, PolicyKind};
use sim_core::trace::{Payload, Subsystem, Tracer};
use tmem::stats::{MmTarget, StatsMsg};

/// Sampling cycles a restarted MM observes before computing targets again.
/// A crash loses the policy's accumulated state (history, reconf-static's
/// active set, smart-alloc's previous targets read back via `mm_target`);
/// the rebuild window lets the snapshot stream re-seed that state before
/// the policy's output is trusted.
pub const REBUILD_WINDOW: u64 = 2;

/// The user-space Memory Manager: a policy plus history plus transmission
/// suppression, with crash-and-restart support.
pub struct MemoryManager {
    policy: Box<dyn Policy>,
    kind: Option<PolicyKind>,
    history: StatsHistory,
    history_limit: usize,
    last_sent: Option<Vec<MmTarget>>,
    cycles: u64,
    transmissions: u64,
    push_seq: u64,
    crashes: u64,
    warmup_remaining: u64,
    // Harness observability, not process state: these survive crashes so
    // chaos reports can show run-wide totals.
    discarded: u64,
    gaps_before_crashes: u64,
    missed_before_crashes: u64,
    tracer: Tracer,
}

impl MemoryManager {
    /// Wrap a policy. `history_limit` bounds the retained snapshots.
    pub fn new(policy: Box<dyn Policy>, history_limit: usize) -> Self {
        MemoryManager {
            policy,
            kind: None,
            history: StatsHistory::new(history_limit),
            history_limit,
            last_sent: None,
            cycles: 0,
            transmissions: 0,
            push_seq: 0,
            crashes: 0,
            warmup_remaining: 0,
            discarded: 0,
            gaps_before_crashes: 0,
            missed_before_crashes: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a flight-recorder handle; every MM cycle then emits a
    /// decision event (with the target vector and any Eq. 2 rescale
    /// inputs), and discards/crashes are recorded too.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Build from a [`PolicyKind`] (the value-level selector), remembering
    /// the kind so [`MemoryManager::crash`] can rebuild the policy from
    /// scratch. Returns `None` for [`PolicyKind::NoTmem`], which runs no MM.
    pub fn from_kind(kind: PolicyKind, history_limit: usize) -> Option<Self> {
        let policy = kind.build()?;
        let mut mm = MemoryManager::new(policy, history_limit);
        mm.kind = Some(kind);
        Some(mm)
    }

    /// The wrapped policy's report name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Initial target for a VM registering with tmem, delegated to the
    /// policy.
    pub fn initial_target(&self, total_tmem: u64) -> u64 {
        self.policy.initial_target(total_tmem)
    }

    /// One MM cycle: ingest a sequence-stamped statistics snapshot and
    /// return `(push_seq, targets)` to transmit — or `None` when the
    /// vector is unchanged since the last transmission
    /// (`send_to_hypervisor` suppression), the snapshot is a duplicate or
    /// stale reorder (discarded idempotently, no cycle consumed), or the
    /// MM is still rebuilding state after a restart.
    pub fn on_stats(&mut self, msg: &StatsMsg) -> Option<(u64, Vec<MmTarget>)> {
        match self.history.observe(msg.seq) {
            SeqObservation::Fresh => {}
            SeqObservation::Duplicate | SeqObservation::Stale => {
                self.discarded += 1;
                self.tracer
                    .emit(|| (None, Subsystem::Mm, Payload::MmDiscard { seq_in: msg.seq }));
                return None;
            }
        }
        self.cycles += 1;
        self.history.push(msg.stats.clone());
        if self.warmup_remaining > 0 {
            // Rebuild window after a restart: let the policy see the
            // snapshot (its internal state re-seeds) but do not trust —
            // or transmit — its output yet.
            let targets = self.policy.compute(&msg.stats);
            self.warmup_remaining -= 1;
            self.tracer.emit(|| {
                (
                    None,
                    Subsystem::Mm,
                    Payload::MmDecision {
                        seq_in: msg.seq,
                        push_seq: 0,
                        sent: false,
                        warming: true,
                        targets: targets.iter().map(|t| (t.vm_id.0, t.mm_target)).collect(),
                        rescale: self.policy.last_rescale(),
                    },
                )
            });
            return None;
        }
        let mut targets = self.policy.compute(&msg.stats);
        // Canonical order so comparison is population-change aware but
        // order-insensitive.
        targets.sort_by_key(|t| t.vm_id);
        let sent = self.last_sent.as_deref() != Some(&targets[..]);
        if sent {
            self.last_sent = Some(targets.clone());
            self.transmissions += 1;
            self.push_seq += 1;
        }
        let push_seq = self.push_seq;
        self.tracer.emit(|| {
            (
                None,
                Subsystem::Mm,
                Payload::MmDecision {
                    seq_in: msg.seq,
                    push_seq: if sent { push_seq } else { 0 },
                    sent,
                    warming: false,
                    targets: targets.iter().map(|t| (t.vm_id.0, t.mm_target)).collect(),
                    rescale: self.policy.last_rescale(),
                },
            )
        });
        if !sent {
            return None;
        }
        Some((self.push_seq, targets))
    }

    /// Simulate an MM process crash: all in-memory state — history, the
    /// policy's accumulated state, transmission suppression memory — is
    /// lost. The policy is rebuilt from its kind (when known) and the next
    /// [`REBUILD_WINDOW`] snapshots re-seed state before targets flow
    /// again. The push sequence survives conceptually (the hypervisor's
    /// idempotence guard keys on it), so it is monotonic across crashes —
    /// modeling the restart reading the last sequence from the relay.
    pub fn crash(&mut self) {
        let cycle = self.cycles;
        self.tracer
            .emit(|| (None, Subsystem::Mm, Payload::MmCrash { cycle }));
        if let Some(kind) = self.kind {
            if let Some(policy) = kind.build() {
                self.policy = policy;
            }
        }
        self.gaps_before_crashes += self.history.gaps();
        self.missed_before_crashes += self.history.missed();
        self.history = StatsHistory::new(self.history_limit);
        self.last_sent = None;
        self.crashes += 1;
        self.warmup_remaining = REBUILD_WINDOW;
    }

    /// Snapshots retained so far.
    pub fn history(&self) -> &StatsHistory {
        &self.history
    }

    /// MM cycles run (one per fresh snapshot processed).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Target transmissions actually sent (≤ cycles thanks to suppression).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Crash episodes this MM has been through.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Whether the MM is inside its post-restart rebuild window.
    pub fn warming_up(&self) -> bool {
        self.warmup_remaining > 0
    }

    /// Duplicate/stale snapshots discarded idempotently, run-wide (survives
    /// crashes).
    pub fn snapshots_discarded(&self) -> u64 {
        self.discarded
    }

    /// Sequence gaps detected, run-wide (survives crashes).
    pub fn seq_gaps(&self) -> u64 {
        self.gaps_before_crashes + self.history.gaps()
    }

    /// Samples known missing across all gaps, run-wide (survives crashes).
    pub fn samples_missed(&self) -> u64 {
        self.missed_before_crashes + self.history.missed()
    }
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryManager")
            .field("policy", &self.policy.name())
            .field("cycles", &self.cycles)
            .field("transmissions", &self.transmissions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::smart_alloc::{SmartAlloc, SmartAllocConfig};
    use crate::policy::static_alloc::StaticAlloc;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{MemStats, NodeInfo, VmStat};

    fn stats(seq: u64, n: usize, failed: u64) -> StatsMsg {
        StatsMsg {
            seq,
            stats: MemStats {
                at: SimTime::from_secs(seq),
                node: NodeInfo {
                    total_tmem: 900,
                    free_tmem: 900,
                    vm_count: n as u32,
                },
                vms: (0..n)
                    .map(|i| VmStat {
                        vm_id: VmId(i as u32 + 1),
                        puts_total: failed,
                        puts_succ: 0,
                        gets_total: 0,
                        gets_succ: 0,
                        flushes: 0,
                        tmem_used: 0,
                        mm_target: 0,
                        cumul_puts_failed: failed,
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn unchanged_targets_are_suppressed() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 16);
        assert!(
            mm.on_stats(&stats(1, 3, 0)).is_some(),
            "first cycle transmits"
        );
        assert!(
            mm.on_stats(&stats(2, 3, 0)).is_none(),
            "identical result suppressed"
        );
        assert!(mm.on_stats(&stats(3, 3, 0)).is_none());
        assert_eq!(mm.cycles(), 3);
        assert_eq!(mm.transmissions(), 1);
    }

    #[test]
    fn population_change_triggers_retransmission() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 16);
        assert!(mm.on_stats(&stats(1, 2, 0)).is_some());
        let (seq, t3) = mm.on_stats(&stats(2, 3, 0)).expect("new VM changes shares");
        assert_eq!(seq, 2, "second transmission");
        assert_eq!(t3.len(), 3);
        assert!(t3.iter().all(|t| t.mm_target == 300));
    }

    #[test]
    fn smart_alloc_keeps_transmitting_while_demand_changes() {
        let mm_policy = SmartAlloc::new(SmartAllocConfig::with_percent(2.0));
        let mut mm = MemoryManager::new(Box::new(mm_policy), 16);
        // Swapping VMs: targets grow each cycle → transmission each cycle.
        // (The snapshot's mm_target field would normally reflect previous
        // targets; static zero here just means policy output repeats after
        // the first, exercising suppression.)
        assert!(mm.on_stats(&stats(1, 2, 5)).is_some());
        assert!(
            mm.on_stats(&stats(2, 2, 5)).is_none(),
            "same inputs, same output"
        );
    }

    #[test]
    fn history_is_retained_and_bounded() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 2);
        for seq in 1..=5 {
            mm.on_stats(&stats(seq, 1, 0));
        }
        assert_eq!(mm.history().len(), 2, "bounded by limit");
    }

    #[test]
    fn duplicates_and_stale_snapshots_are_discarded() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 16);
        assert!(mm.on_stats(&stats(2, 3, 0)).is_some());
        assert!(mm.on_stats(&stats(2, 3, 0)).is_none(), "duplicate");
        assert!(mm.on_stats(&stats(1, 3, 0)).is_none(), "stale reorder");
        assert_eq!(mm.cycles(), 1, "discards consume no cycle");
        assert_eq!(mm.history().len(), 1);
        // A gap (3, 4 lost) is fresh and counted.
        assert!(mm.on_stats(&stats(5, 3, 0)).is_none(), "same targets");
        assert_eq!(mm.history().gaps(), 1);
        assert_eq!(mm.history().missed(), 2);
    }

    #[test]
    fn crash_loses_state_and_warms_up_before_transmitting() {
        let mut mm =
            MemoryManager::from_kind(PolicyKind::StaticAlloc, 16).expect("policy-backed MM");
        assert!(mm.on_stats(&stats(1, 3, 0)).is_some());
        assert!(mm.on_stats(&stats(2, 3, 0)).is_none(), "suppressed");

        mm.crash();
        assert_eq!(mm.crashes(), 1);
        assert!(mm.warming_up());
        assert!(mm.history().is_empty(), "history lost");
        // REBUILD_WINDOW snapshots re-seed state without transmission...
        assert!(mm.on_stats(&stats(3, 3, 0)).is_none());
        assert!(mm.on_stats(&stats(4, 3, 0)).is_none());
        assert!(!mm.warming_up());
        // ...then targets flow again, with a push seq above the pre-crash
        // one so the hypervisor's idempotence guard accepts it.
        let (seq, t) = mm.on_stats(&stats(5, 3, 0)).expect("resumes after warmup");
        assert_eq!(seq, 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn from_kind_no_tmem_has_no_mm() {
        assert!(MemoryManager::from_kind(PolicyKind::NoTmem, 16).is_none());
    }
}
