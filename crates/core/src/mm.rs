//! The Memory Manager (MM) user-space process.
//!
//! Paper §III-D: "the MM receives information from the hypervisor regarding
//! the way the VMs make use of their memory. The MM keeps track of this
//! information across time, generating a history... The MM uses this
//! information to calculate a tmem capacity target per VM according to
//! custom-made high-level policies."
//!
//! The MM also implements the `send_to_hypervisor` contract shared by all
//! the paper's policies: "If no changes are detected, then no transmission
//! takes place, avoiding unnecessary communication overhead."

use crate::history::StatsHistory;
use crate::policy::Policy;
use tmem::stats::{MemStats, MmTarget};

/// The user-space Memory Manager: a policy plus history plus transmission
/// suppression.
pub struct MemoryManager {
    policy: Box<dyn Policy>,
    history: StatsHistory,
    last_sent: Option<Vec<MmTarget>>,
    cycles: u64,
    transmissions: u64,
}

impl MemoryManager {
    /// Wrap a policy. `history_limit` bounds the retained snapshots.
    pub fn new(policy: Box<dyn Policy>, history_limit: usize) -> Self {
        MemoryManager {
            policy,
            history: StatsHistory::new(history_limit),
            last_sent: None,
            cycles: 0,
            transmissions: 0,
        }
    }

    /// The wrapped policy's report name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Initial target for a VM registering with tmem, delegated to the
    /// policy.
    pub fn initial_target(&self, total_tmem: u64) -> u64 {
        self.policy.initial_target(total_tmem)
    }

    /// One MM cycle: ingest a statistics snapshot and return the target
    /// vector to transmit — or `None` when it is unchanged since the last
    /// transmission (`send_to_hypervisor` suppression).
    pub fn on_stats(&mut self, stats: &MemStats) -> Option<Vec<MmTarget>> {
        self.cycles += 1;
        self.history.push(stats.clone());
        let mut targets = self.policy.compute(stats);
        // Canonical order so comparison is population-change aware but
        // order-insensitive.
        targets.sort_by_key(|t| t.vm_id);
        if self.last_sent.as_deref() == Some(&targets[..]) {
            return None;
        }
        self.last_sent = Some(targets.clone());
        self.transmissions += 1;
        Some(targets)
    }

    /// Snapshots retained so far.
    pub fn history(&self) -> &StatsHistory {
        &self.history
    }

    /// MM cycles run (one per VIRQ).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Target transmissions actually sent (≤ cycles thanks to suppression).
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryManager")
            .field("policy", &self.policy.name())
            .field("cycles", &self.cycles)
            .field("transmissions", &self.transmissions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::smart_alloc::{SmartAlloc, SmartAllocConfig};
    use crate::policy::static_alloc::StaticAlloc;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{NodeInfo, VmStat};

    fn stats(n: usize, failed: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: 900,
                free_tmem: 900,
                vm_count: n as u32,
            },
            vms: (0..n)
                .map(|i| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: failed,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 0,
                    mm_target: 0,
                    cumul_puts_failed: failed,
                })
                .collect(),
        }
    }

    #[test]
    fn unchanged_targets_are_suppressed() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 16);
        let s = stats(3, 0);
        assert!(mm.on_stats(&s).is_some(), "first cycle transmits");
        assert!(mm.on_stats(&s).is_none(), "identical result suppressed");
        assert!(mm.on_stats(&s).is_none());
        assert_eq!(mm.cycles(), 3);
        assert_eq!(mm.transmissions(), 1);
    }

    #[test]
    fn population_change_triggers_retransmission() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 16);
        assert!(mm.on_stats(&stats(2, 0)).is_some());
        let t3 = mm.on_stats(&stats(3, 0)).expect("new VM changes shares");
        assert_eq!(t3.len(), 3);
        assert!(t3.iter().all(|t| t.mm_target == 300));
    }

    #[test]
    fn smart_alloc_keeps_transmitting_while_demand_changes() {
        let mm_policy = SmartAlloc::new(SmartAllocConfig::with_percent(2.0));
        let mut mm = MemoryManager::new(Box::new(mm_policy), 16);
        // Swapping VMs: targets grow each cycle → transmission each cycle.
        // (The snapshot's mm_target field would normally reflect previous
        // targets; static zero here just means policy output repeats after
        // the first, exercising suppression.)
        assert!(mm.on_stats(&stats(2, 5)).is_some());
        assert!(
            mm.on_stats(&stats(2, 5)).is_none(),
            "same inputs, same output"
        );
    }

    #[test]
    fn history_is_retained_and_bounded() {
        let mut mm = MemoryManager::new(Box::new(StaticAlloc), 2);
        for _ in 0..5 {
            mm.on_stats(&stats(1, 0));
        }
        assert_eq!(mm.history().len(), 2, "bounded by limit");
    }
}
