//! Balloon integration — the paper's stated future work (§VII: "as well as
//! integration of tmem and other memory allocation mechanisms").
//!
//! tmem moves *spare* capacity quickly; ballooning moves *owned* capacity
//! slowly. The [`BalloonManager`] complements a tmem policy: it watches the
//! same Table I statistics the MM already receives and advises coarse RAM
//! transfers — deflate the balloon of a persistently-swapping VM at the
//! expense of a persistently-idle one. Decisions are deliberately sluggish
//! (hysteresis over a window of intervals), mirroring why the paper
//! introduces tmem in the first place: "memory ballooning and memory
//! hotplug... are slow to respond to rapid changes in memory demand."

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tmem::key::VmId;
use tmem::stats::MemStats;

/// One RAM-transfer recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalloonAdvice {
    /// VM whose balloon inflates (loses `pages` frames).
    pub from: VmId,
    /// VM whose balloon deflates (gains `pages` frames).
    pub to: VmId,
    /// Number of page frames to move.
    pub pages: u64,
}

/// Tuning for the balloon manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalloonConfig {
    /// Never shrink a VM below this many frames.
    pub min_frames: u64,
    /// Frames moved per decision.
    pub step_frames: u64,
    /// Consecutive intervals a VM must swap (resp. stay idle) before it is
    /// considered a taker (resp. donor) — the hysteresis window.
    pub window: u32,
}

impl Default for BalloonConfig {
    fn default() -> Self {
        BalloonConfig {
            min_frames: 1024,  // 4 MiB
            step_frames: 2048, // 8 MiB per decision
            window: 5,
        }
    }
}

/// Watches statistics snapshots and advises slow RAM transfers.
#[derive(Debug)]
pub struct BalloonManager {
    config: BalloonConfig,
    /// Consecutive swapping intervals per VM.
    pressure: HashMap<VmId, u32>,
    /// Consecutive idle intervals per VM.
    idle: HashMap<VmId, u32>,
    /// Current frame allocation per VM (mirrors what the host applied).
    frames: HashMap<VmId, u64>,
    decisions: u64,
}

impl BalloonManager {
    /// A manager for VMs whose initial frame counts are given.
    pub fn new(
        config: BalloonConfig,
        initial_frames: impl IntoIterator<Item = (VmId, u64)>,
    ) -> Self {
        BalloonManager {
            config,
            pressure: HashMap::new(),
            idle: HashMap::new(),
            frames: initial_frames.into_iter().collect(),
            decisions: 0,
        }
    }

    /// Frames currently assigned to `vm` per this manager's bookkeeping.
    pub fn frames_of(&self, vm: VmId) -> Option<u64> {
        self.frames.get(&vm).copied()
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Ingest a statistics snapshot; possibly advise one transfer. The
    /// caller applies the advice via `GuestKernel::balloon_resize` on both
    /// ends (that is what makes it real — this type only decides).
    pub fn on_stats(&mut self, stats: &MemStats) -> Option<BalloonAdvice> {
        for vm in &stats.vms {
            let p = self.pressure.entry(vm.vm_id).or_insert(0);
            let i = self.idle.entry(vm.vm_id).or_insert(0);
            if vm.failed_puts() > 0 {
                *p += 1;
                *i = 0;
            } else {
                *i += 1;
                *p = 0;
            }
        }
        // Taker: longest-pressured VM past the window.
        let taker = stats
            .vms
            .iter()
            .filter(|vm| self.pressure[&vm.vm_id] >= self.config.window)
            .max_by_key(|vm| self.pressure[&vm.vm_id])?
            .vm_id;
        // Donor: longest-idle VM past the window with frames to spare.
        let donor = stats
            .vms
            .iter()
            .filter(|vm| {
                vm.vm_id != taker
                    && self.idle[&vm.vm_id] >= self.config.window
                    && self
                        .frames
                        .get(&vm.vm_id)
                        .is_some_and(|&f| f >= self.config.min_frames + self.config.step_frames)
            })
            .max_by_key(|vm| self.idle[&vm.vm_id])?
            .vm_id;

        let pages = self.config.step_frames;
        *self.frames.get_mut(&donor).expect("donor tracked") -= pages;
        *self.frames.entry(taker).or_insert(0) += pages;
        // Restart both hysteresis windows so transfers stay sluggish.
        self.pressure.insert(taker, 0);
        self.idle.insert(donor, 0);
        self.decisions += 1;
        Some(BalloonAdvice {
            from: donor,
            to: taker,
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::stats::{NodeInfo, VmStat};

    fn snapshot(failed: &[u64]) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: 1000,
                free_tmem: 0,
                vm_count: failed.len() as u32,
            },
            vms: failed
                .iter()
                .enumerate()
                .map(|(i, &f)| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: f,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 0,
                    mm_target: 0,
                    cumul_puts_failed: f,
                })
                .collect(),
        }
    }

    fn manager() -> BalloonManager {
        BalloonManager::new(
            BalloonConfig {
                min_frames: 100,
                step_frames: 50,
                window: 3,
            },
            [(VmId(1), 500), (VmId(2), 500)],
        )
    }

    #[test]
    fn needs_sustained_pressure_before_moving_memory() {
        let mut m = manager();
        // Two intervals of pressure on VM1, idleness on VM2: not enough.
        assert!(m.on_stats(&snapshot(&[10, 0])).is_none());
        assert!(m.on_stats(&snapshot(&[10, 0])).is_none());
        // Third interval crosses the window for both roles.
        let advice = m.on_stats(&snapshot(&[10, 0])).expect("decision due");
        assert_eq!(
            advice,
            BalloonAdvice {
                from: VmId(2),
                to: VmId(1),
                pages: 50
            }
        );
        assert_eq!(m.frames_of(VmId(1)), Some(550));
        assert_eq!(m.frames_of(VmId(2)), Some(450));
        assert_eq!(m.decisions(), 1);
    }

    #[test]
    fn hysteresis_resets_after_a_decision() {
        let mut m = manager();
        for _ in 0..3 {
            m.on_stats(&snapshot(&[10, 0]));
        }
        // Immediately after a transfer, another one must not fire.
        assert!(m.on_stats(&snapshot(&[10, 0])).is_none());
    }

    #[test]
    fn donor_floor_is_respected() {
        let mut m = BalloonManager::new(
            BalloonConfig {
                min_frames: 480,
                step_frames: 50,
                window: 1,
            },
            [(VmId(1), 500), (VmId(2), 500)],
        );
        // Donor would fall below min (500 - 50 < 480 + 50): no advice.
        assert!(m.on_stats(&snapshot(&[10, 0])).is_none());
    }

    #[test]
    fn intermittent_pressure_never_triggers() {
        let mut m = manager();
        for round in 0..12 {
            let s = if round % 2 == 0 {
                snapshot(&[10, 0])
            } else {
                snapshot(&[0, 10])
            };
            assert!(m.on_stats(&s).is_none(), "oscillation must not move RAM");
        }
    }
}
