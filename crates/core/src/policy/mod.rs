//! The policy trait and the policy registry.

pub mod greedy;
pub mod predictive;
pub mod reconf_static;
pub mod smart_alloc;
pub mod static_alloc;

use serde::{Deserialize, Serialize};
use std::fmt;
use tmem::stats::{MemStats, MmTarget};

/// A high-level tmem management policy, as run inside the MM.
///
/// Once per sampling interval the MM feeds the policy the latest
/// [`MemStats`] snapshot; the policy returns the full target vector (one
/// entry per VM in the snapshot). Transmission suppression for unchanged
/// vectors is the MM's job, not the policy's.
pub trait Policy {
    /// Short name for reports ("greedy", "smart-alloc(0.75%)", ...).
    fn name(&self) -> String;

    /// Target installed for a VM at registration time, before the first MM
    /// cycle runs. The paper's managed policies start VMs at zero (a VM
    /// must show demand first); greedy starts them at the full node.
    fn initial_target(&self, total_tmem: u64) -> u64;

    /// Compute the target vector for this interval.
    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget>;

    /// When the most recent [`Policy::compute`] had to rescale its targets
    /// to fit the node (Equation 2), the `(sum_targets, local_tmem)` inputs
    /// of that rescale; `None` otherwise. Observability only — the MM
    /// forwards this into the flight recorder.
    fn last_rescale(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Value-level policy selector used by scenario runners, benches and the
/// CLI. `NoTmem` is the guest-side baseline (frontswap disabled — no policy
/// runs at all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// tmem disabled in the guests; all swap goes to disk.
    NoTmem,
    /// Stock Xen behaviour: first-come, first-served competition.
    Greedy,
    /// Algorithm 2: equal static shares.
    StaticAlloc,
    /// Algorithm 3: equal shares over VMs that have used tmem.
    ReconfStatic,
    /// Algorithm 4 with increment percentage `p` (e.g. 0.75 for P=0.75%).
    SmartAlloc {
        /// The increment/decrement percentage P of Algorithm 4.
        p: f64,
    },
    /// Demand-predictive extension policy (not in the paper; its §VII
    /// future work) — see [`predictive::Predictive`].
    Predictive,
}

impl PolicyKind {
    /// Instantiate the policy. `None` for [`PolicyKind::NoTmem`], which has
    /// no MM process at all.
    pub fn build(&self) -> Option<Box<dyn Policy>> {
        match *self {
            PolicyKind::NoTmem => None,
            PolicyKind::Greedy => Some(Box::new(greedy::Greedy)),
            PolicyKind::StaticAlloc => Some(Box::new(static_alloc::StaticAlloc)),
            PolicyKind::ReconfStatic => Some(Box::new(reconf_static::ReconfStatic)),
            PolicyKind::SmartAlloc { p } => Some(Box::new(smart_alloc::SmartAlloc::new(
                smart_alloc::SmartAllocConfig::with_percent(p),
            ))),
            PolicyKind::Predictive => Some(Box::new(predictive::Predictive::default())),
        }
    }

    /// Whether guests run with frontswap enabled under this policy.
    pub fn tmem_enabled(&self) -> bool {
        !matches!(self, PolicyKind::NoTmem)
    }

    /// The policy set the paper's figures sweep for a given scenario's
    /// smart-alloc percentages.
    pub fn paper_set(smart_ps: &[f64]) -> Vec<PolicyKind> {
        let mut v = vec![
            PolicyKind::NoTmem,
            PolicyKind::Greedy,
            PolicyKind::StaticAlloc,
            PolicyKind::ReconfStatic,
        ];
        v.extend(smart_ps.iter().map(|&p| PolicyKind::SmartAlloc { p }));
        v
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::NoTmem => write!(f, "no-tmem"),
            PolicyKind::Greedy => write!(f, "greedy"),
            PolicyKind::StaticAlloc => write!(f, "static-alloc"),
            PolicyKind::ReconfStatic => write!(f, "reconf-static"),
            PolicyKind::SmartAlloc { p } => write!(f, "smart-alloc({p}%)"),
            PolicyKind::Predictive => write!(f, "predictive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(PolicyKind::Greedy.to_string(), "greedy");
        assert_eq!(PolicyKind::NoTmem.to_string(), "no-tmem");
        assert_eq!(
            PolicyKind::SmartAlloc { p: 0.75 }.to_string(),
            "smart-alloc(0.75%)"
        );
    }

    #[test]
    fn build_returns_policy_except_no_tmem() {
        assert!(PolicyKind::NoTmem.build().is_none());
        for k in [
            PolicyKind::Greedy,
            PolicyKind::StaticAlloc,
            PolicyKind::ReconfStatic,
            PolicyKind::SmartAlloc { p: 2.0 },
            PolicyKind::Predictive,
        ] {
            assert!(k.build().is_some(), "{k} must build");
            assert!(k.tmem_enabled());
        }
        assert!(!PolicyKind::NoTmem.tmem_enabled());
    }

    #[test]
    fn paper_set_contains_baselines_plus_sweeps() {
        let set = PolicyKind::paper_set(&[0.25, 0.75]);
        assert_eq!(set.len(), 6);
        assert!(set.contains(&PolicyKind::SmartAlloc { p: 0.25 }));
        assert!(set.contains(&PolicyKind::NoTmem));
    }
}
