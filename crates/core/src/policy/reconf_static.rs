//! Algorithm 3: Reconfigurable Static Allocation (`reconf-static`).
//!
//! "This policy divides the available tmem capacity equally among the VMs
//! that are actively using tmem... allocates an equal share to each VM that
//! has performed at least one tmem put, initially allocating no tmem
//! capacity to any VM."
//!
//! Activity detection follows Algorithm 3 line 5 literally: a VM counts as
//! active once its *cumulative failed puts* are positive — with an initial
//! target of zero, a VM's very first put fails, which is both the paper's
//! described "the VM has to swap a number of times before getting any tmem"
//! latency and the activation signal.
//!
//! Per the pseudocode (lines 11–14), the computed share is written to
//! *every* VM's target, not only the active ones; an inactive VM holding a
//! nonzero target is harmless because, by definition, it is not putting.

use super::Policy;
use tmem::stats::{MemStats, MmTarget};

/// Equal shares over the VMs that have used tmem.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReconfStatic;

impl Policy for ReconfStatic {
    fn name(&self) -> String {
        "reconf-static".into()
    }

    fn initial_target(&self, _total_tmem: u64) -> u64 {
        0
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        // Lines 4–9: count VMs whose cumulative failed puts are positive.
        let num_active = stats
            .vms
            .iter()
            .filter(|vm| vm.cumul_puts_failed > 0)
            .count() as u64;
        if num_active == 0 {
            // Nobody has touched tmem yet: keep everyone at zero.
            return stats
                .vms
                .iter()
                .map(|vm| MmTarget {
                    vm_id: vm.vm_id,
                    mm_target: 0,
                })
                .collect();
        }
        // Lines 11–15.
        let mm_target = stats.node.total_tmem / num_active;
        stats
            .vms
            .iter()
            .map(|vm| MmTarget {
                vm_id: vm.vm_id,
                mm_target,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{NodeInfo, VmStat};

    fn stats(failed: &[u64], total: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: total,
                free_tmem: total,
                vm_count: failed.len() as u32,
            },
            vms: failed
                .iter()
                .enumerate()
                .map(|(i, &f)| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: 0,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 0,
                    mm_target: 0,
                    cumul_puts_failed: f,
                })
                .collect(),
        }
    }

    #[test]
    fn no_activity_means_zero_targets() {
        let mut p = ReconfStatic;
        let out = p.compute(&stats(&[0, 0, 0], 900));
        assert!(out.iter().all(|t| t.mm_target == 0));
    }

    #[test]
    fn shares_split_over_active_vms_only() {
        let mut p = ReconfStatic;
        // Two of three VMs have ever failed a put.
        let out = p.compute(&stats(&[3, 1, 0], 900));
        assert!(out.iter().all(|t| t.mm_target == 450));
    }

    #[test]
    fn reconfigures_as_activity_spreads() {
        let mut p = ReconfStatic;
        assert_eq!(p.compute(&stats(&[1, 0, 0], 900))[0].mm_target, 900);
        assert_eq!(p.compute(&stats(&[1, 1, 0], 900))[0].mm_target, 450);
        assert_eq!(p.compute(&stats(&[1, 1, 1], 900))[0].mm_target, 300);
    }

    #[test]
    fn activity_is_cumulative_not_per_interval() {
        // A VM quiet this interval but with historical failed puts stays
        // counted — its share is not confiscated.
        let mut p = ReconfStatic;
        let out = p.compute(&stats(&[7, 7, 7], 900));
        assert!(out.iter().all(|t| t.mm_target == 300));
    }
}
