//! Algorithm 4: the Smart Allocation policy (`smart-alloc`).
//!
//! Per VM and interval:
//!
//! * **grow** — if the VM had failed puts in the last interval (it is
//!   swapping), raise its target by `P`% of the node's total tmem
//!   (lines 9–12);
//! * **shrink** — otherwise, if the VM uses less than its target minus a
//!   threshold, decay the target to `(100 − P)`% of itself (lines 16–21;
//!   the threshold provides hysteresis: "this avoids premature target
//!   decrements which might cause the targets to oscillate");
//! * **rescale** — if the grown targets over-commit the node
//!   (`Σ targets > local_tmem`), scale every target proportionally
//!   (lines 27–33, Equation 2), restoring Equation 1's invariant that
//!   assigned targets never exceed the node's tmem.
//!
//! The paper fixes the sampling interval at one second and leaves the
//! threshold unspecified; [`SmartAllocConfig::threshold_pages`] defaults to
//! one increment's worth of pages (`P`% of node tmem), the smallest value
//! that prevents grow/shrink oscillation, and the ablation bench sweeps it.

use super::Policy;
use serde::{Deserialize, Serialize};
use tmem::stats::{MemStats, MmTarget};

/// Tuning for [`SmartAlloc`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartAllocConfig {
    /// The increment/decrement percentage `P` (0 < P ≤ 100). The paper
    /// sweeps 0.25–6 %.
    pub percent: f64,
    /// Hysteresis threshold in pages; `None` derives one increment's worth
    /// from the node size at compute time.
    pub threshold_pages: Option<u64>,
}

impl SmartAllocConfig {
    /// Config with percentage `p` and the default threshold.
    pub fn with_percent(p: f64) -> Self {
        assert!(p > 0.0 && p <= 100.0, "P must be in (0, 100], got {p}");
        SmartAllocConfig {
            percent: p,
            threshold_pages: None,
        }
    }

    fn threshold(&self, total_tmem: u64) -> u64 {
        self.threshold_pages
            .unwrap_or_else(|| self.increment(total_tmem))
    }

    /// `incr ← (P × local_tmem) / 100` (Algorithm 4 line 11).
    fn increment(&self, total_tmem: u64) -> u64 {
        ((self.percent * total_tmem as f64) / 100.0).round() as u64
    }
}

/// The demand-driven smart allocation policy.
#[derive(Debug, Clone)]
pub struct SmartAlloc {
    config: SmartAllocConfig,
    /// `(sum_targets, local_tmem)` of the last compute's Eq. 2 rescale,
    /// `None` when the last compute fit without rescaling.
    last_rescale: Option<(u64, u64)>,
}

impl SmartAlloc {
    /// A smart-alloc instance with the given tuning.
    pub fn new(config: SmartAllocConfig) -> Self {
        SmartAlloc {
            config,
            last_rescale: None,
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> &SmartAllocConfig {
        &self.config
    }
}

impl Policy for SmartAlloc {
    fn name(&self) -> String {
        format!("smart-alloc({}%)", self.config.percent)
    }

    fn initial_target(&self, _total_tmem: u64) -> u64 {
        // A VM earns capacity by demonstrating demand (failed puts), so it
        // starts at zero like reconf-static.
        0
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        let local_tmem = stats.node.total_tmem;
        let incr = self.config.increment(local_tmem);
        let threshold = self.config.threshold(local_tmem);

        let mut out = Vec::with_capacity(stats.vms.len());
        let mut sum_targets: u64 = 0;
        for vm in &stats.vms {
            // Lines 6-8.
            let failed_puts = vm.failed_puts();
            let curr_tgt = vm.mm_target;
            let mm_target = if failed_puts > 0 {
                // Lines 10-12: grow by P% of the node's tmem.
                curr_tgt.saturating_add(incr)
            } else {
                // Lines 14-21: shrink only past the hysteresis threshold.
                let curr_use = vm.tmem_used;
                let difference = curr_tgt.saturating_sub(curr_use);
                if difference > threshold {
                    (((100.0 - self.config.percent) * curr_tgt as f64) / 100.0).round() as u64
                } else {
                    curr_tgt
                }
            };
            sum_targets += mm_target;
            out.push(MmTarget {
                vm_id: vm.vm_id,
                mm_target,
            });
        }

        // Lines 27-33 / Equation 2: proportional rescale on over-commit.
        if sum_targets > local_tmem {
            let factor = local_tmem as f64 / sum_targets as f64;
            for t in &mut out {
                t.mm_target = (factor * t.mm_target as f64).floor() as u64;
            }
            self.last_rescale = Some((sum_targets, local_tmem));
        } else {
            self.last_rescale = None;
        }
        out
    }

    fn last_rescale(&self) -> Option<(u64, u64)> {
        self.last_rescale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{NodeInfo, VmStat};

    /// Build a snapshot from (failed_puts, tmem_used, mm_target) triples.
    fn stats(vms: &[(u64, u64, u64)], total: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: total,
                free_tmem: 0,
                vm_count: vms.len() as u32,
            },
            vms: vms
                .iter()
                .enumerate()
                .map(|(i, &(failed, used, target))| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: failed + 10,
                    puts_succ: 10,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: used,
                    mm_target: target,
                    cumul_puts_failed: failed,
                })
                .collect(),
        }
    }

    fn smart(p: f64) -> SmartAlloc {
        SmartAlloc::new(SmartAllocConfig::with_percent(p))
    }

    #[test]
    fn failed_puts_grow_the_target_by_p_percent_of_node() {
        let mut p = smart(2.0);
        // VM1 swapped; VM2 idle at target == use (no shrink).
        let out = p.compute(&stats(&[(5, 100, 100), (0, 50, 50)], 10_000));
        assert_eq!(out[0].mm_target, 100 + 200, "2% of 10000 = 200");
        assert_eq!(out[1].mm_target, 50, "no change without demand or slack");
    }

    #[test]
    fn underuse_beyond_threshold_decays_the_target() {
        let mut p = SmartAlloc::new(SmartAllocConfig {
            percent: 10.0,
            threshold_pages: Some(20),
        });
        // Target 1000, using 100: slack 900 > 20 → decay to 90%.
        let out = p.compute(&stats(&[(0, 100, 1000)], 10_000));
        assert_eq!(out[0].mm_target, 900);
    }

    #[test]
    fn underuse_within_threshold_is_left_alone() {
        let mut p = SmartAlloc::new(SmartAllocConfig {
            percent: 10.0,
            threshold_pages: Some(500),
        });
        let out = p.compute(&stats(&[(0, 600, 1000)], 10_000));
        assert_eq!(out[0].mm_target, 1000, "slack 400 <= threshold 500");
    }

    #[test]
    fn overcommit_rescales_proportionally_eq2() {
        let mut p = smart(50.0); // huge increments force over-commit
                                 // Both VMs swapped: each target grows by 5000 → sum 11000 > 10000.
        let out = p.compute(&stats(&[(1, 0, 1000), (1, 0, 5000)], 10_000));
        let sum: u64 = out.iter().map(|t| t.mm_target).sum();
        assert!(sum <= 10_000, "Equation 1 invariant, got {sum}");
        // Proportionality: VM2's grown target (10000) is 6000/11000 vs
        // 5000/11000 — ratio preserved within rounding.
        let r = out[1].mm_target as f64 / out[0].mm_target as f64;
        assert!((r - 10.0 / 6.0).abs() < 0.01, "ratio {r}");
    }

    #[test]
    fn all_vms_swapping_still_respects_node_capacity() {
        let mut p = smart(6.0);
        let mut targets = [(1u64, 0u64, 0u64); 3];
        // Iterate many intervals with everyone swapping; targets must never
        // sum above the node.
        for _ in 0..100 {
            let out = p.compute(&stats(&targets, 1_000));
            let sum: u64 = out.iter().map(|t| t.mm_target).sum();
            assert!(sum <= 1_000);
            for (i, t) in out.iter().enumerate() {
                targets[i].2 = t.mm_target;
            }
        }
        // Symmetric demand converges to near-equal shares.
        let spread =
            targets.iter().map(|t| t.2).max().unwrap() - targets.iter().map(|t| t.2).min().unwrap();
        assert!(spread <= 20, "near-fair split, spread={spread}");
    }

    #[test]
    fn grow_and_shrink_do_not_oscillate_with_default_threshold() {
        let mut p = smart(2.0);
        // Interval 1: VM swaps, target grows.
        let grown = p.compute(&stats(&[(3, 200, 200)], 10_000))[0].mm_target;
        assert_eq!(grown, 400);
        // Interval 2: VM stopped swapping, uses all but one increment of
        // its target. Slack (200) == threshold (200) → no decay.
        let held = p.compute(&stats(&[(0, 200, grown)], 10_000))[0].mm_target;
        assert_eq!(held, grown, "hysteresis holds the target");
    }

    #[test]
    fn fractional_percent_works() {
        let mut p = smart(0.25);
        let out = p.compute(&stats(&[(1, 0, 0)], 262_144)); // 1 GiB of pages
        assert_eq!(out[0].mm_target, 655, "0.25% of 262144 rounds to 655");
    }

    #[test]
    #[should_panic(expected = "P must be in (0, 100]")]
    fn zero_percent_is_rejected() {
        SmartAllocConfig::with_percent(0.0);
    }

    #[test]
    fn name_embeds_percent() {
        assert_eq!(smart(0.75).name(), "smart-alloc(0.75%)");
    }

    #[test]
    fn rescale_inputs_are_exposed_for_tracing() {
        let mut p = smart(50.0);
        assert_eq!(p.last_rescale(), None, "before any compute");
        // Over-commit: both VMs grow by 5000 (P=50% of 10000), so the
        // grown sum is 6000 + 10000 = 16000 > node 10000 → rescale recorded.
        p.compute(&stats(&[(1, 0, 1000), (1, 0, 5000)], 10_000));
        assert_eq!(p.last_rescale(), Some((16_000, 10_000)));
        // A fitting compute clears it again.
        p.compute(&stats(&[(0, 50, 50)], 10_000));
        assert_eq!(p.last_rescale(), None);
    }
}
