//! Algorithm 2: Static Memory Capacity Allocation (`static-alloc`).
//!
//! "This policy divides the available tmem capacity equally across all
//! tmem-capable VMs... the targets are only modified when a new VM is
//! created (and registers itself with tmem) or a VM is destroyed."
//!
//! The equal division recomputes every interval; because it only changes
//! when the VM population changes, the MM's transmission suppression means
//! targets are effectively sent on registration/destruction only, exactly
//! as the paper describes.

use super::Policy;
use tmem::stats::{MemStats, MmTarget};

/// Equal static shares for every registered VM.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAlloc;

impl Policy for StaticAlloc {
    fn name(&self) -> String {
        "static-alloc".into()
    }

    fn initial_target(&self, _total_tmem: u64) -> u64 {
        // A fresh VM gets no capacity until the next MM cycle recomputes
        // the equal shares over the new population (≤1 s later).
        0
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        let num_vms = stats.vm_count() as u64;
        if num_vms == 0 {
            return Vec::new();
        }
        // Algorithm 2 line 5: mm_target ← local_tmem / num_vms.
        let mm_target = stats.node.total_tmem / num_vms;
        stats
            .vms
            .iter()
            .map(|vm| MmTarget {
                vm_id: vm.vm_id,
                mm_target,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{NodeInfo, VmStat};

    fn stats(n: usize, total: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: total,
                free_tmem: total,
                vm_count: n as u32,
            },
            vms: (0..n)
                .map(|i| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: 5,
                    puts_succ: 5,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 0,
                    mm_target: 0,
                    cumul_puts_failed: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn divides_equally() {
        let mut p = StaticAlloc;
        let out = p.compute(&stats(3, 900));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.mm_target == 300));
    }

    #[test]
    fn shares_shrink_when_population_grows() {
        let mut p = StaticAlloc;
        assert_eq!(p.compute(&stats(2, 900))[0].mm_target, 450);
        assert_eq!(p.compute(&stats(3, 900))[0].mm_target, 300);
    }

    #[test]
    fn integer_division_never_overcommits() {
        let mut p = StaticAlloc;
        let out = p.compute(&stats(3, 1000));
        let sum: u64 = out.iter().map(|t| t.mm_target).sum();
        assert!(sum <= 1000);
        assert_eq!(out[0].mm_target, 333);
    }

    #[test]
    fn empty_population_yields_no_targets() {
        let mut p = StaticAlloc;
        assert!(p.compute(&stats(0, 1000)).is_empty());
    }
}
