//! The `greedy` baseline: stock Xen tmem behaviour.
//!
//! "Current implementations of tmem allocate pages on puts in a greedy way,
//! as long as there are free tmem pages" (paper §II-B). Expressed in
//! SmarTmem's target mechanism, greedy simply sets every VM's target to the
//! whole node, so Algorithm 1's target check never binds and only the
//! free-page check (line 7) remains — first come, first served.

use super::Policy;
use tmem::stats::{MemStats, MmTarget};

/// The default, unmanaged allocation policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl Policy for Greedy {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn initial_target(&self, total_tmem: u64) -> u64 {
        total_tmem
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        stats
            .vms
            .iter()
            .map(|vm| MmTarget {
                vm_id: vm.vm_id,
                mm_target: stats.node.total_tmem,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::key::VmId;
    use tmem::stats::{NodeInfo, VmStat};

    fn stats(n: usize, total: u64) -> MemStats {
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: total,
                free_tmem: total,
                vm_count: n as u32,
            },
            vms: (0..n)
                .map(|i| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: 0,
                    puts_succ: 0,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: 0,
                    mm_target: total,
                    cumul_puts_failed: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn everyone_gets_the_whole_node() {
        let mut p = Greedy;
        let out = p.compute(&stats(3, 1000));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|t| t.mm_target == 1000));
        assert_eq!(p.initial_target(1000), 1000);
    }
}
