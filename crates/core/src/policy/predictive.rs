//! A demand-predictive policy — the paper's future work, §VII: "This paper
//! provides a framework and baseline for future development of more
//! sophisticated tmem memory policies."
//!
//! Where Algorithm 4 reacts with fixed ±P% steps, `predictive` *estimates*
//! each VM's tmem need directly and jumps to it:
//!
//! ```text
//! need_i = tmem_used_i + α · ewma(failed_puts_i)
//! target_i = need_i, proportionally rescaled into the node (Eq. 2)
//! ```
//!
//! `tmem_used` is what the VM demonstrably holds; the smoothed failed-put
//! rate is the unmet demand it keeps presenting; `α` converts an interval's
//! failures into pages of headroom. The exponential window forgets bursts
//! at rate `decay` per interval, which is what distinguishes a phase change
//! from noise.

use super::Policy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tmem::key::VmId;
use tmem::stats::{MemStats, MmTarget};

/// Tuning for [`Predictive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// Pages of headroom granted per smoothed failed put.
    pub headroom_per_failure: f64,
    /// EWMA decay per interval (0 = no memory, 1 = never forgets).
    pub decay: f64,
    /// Minimum target as a fraction of the node (lets idle VMs re-enter
    /// without the reconf-static activation stall).
    pub floor_frac: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            headroom_per_failure: 4.0,
            decay: 0.6,
            floor_frac: 0.02,
        }
    }
}

/// The predictive policy.
#[derive(Debug, Clone)]
pub struct Predictive {
    config: PredictiveConfig,
    ewma: HashMap<VmId, f64>,
}

impl Predictive {
    /// A predictive policy with the given tuning.
    pub fn new(config: PredictiveConfig) -> Self {
        assert!((0.0..1.0).contains(&config.decay), "decay in [0,1)");
        assert!(config.headroom_per_failure >= 0.0);
        assert!((0.0..0.5).contains(&config.floor_frac));
        Predictive {
            config,
            ewma: HashMap::new(),
        }
    }
}

impl Default for Predictive {
    fn default() -> Self {
        Predictive::new(PredictiveConfig::default())
    }
}

impl Policy for Predictive {
    fn name(&self) -> String {
        "predictive".into()
    }

    fn initial_target(&self, total_tmem: u64) -> u64 {
        ((total_tmem as f64) * self.config.floor_frac) as u64
    }

    fn compute(&mut self, stats: &MemStats) -> Vec<MmTarget> {
        let total = stats.node.total_tmem;
        let floor = (total as f64 * self.config.floor_frac).max(1.0);
        let mut needs = Vec::with_capacity(stats.vms.len());
        for vm in &stats.vms {
            let e = self.ewma.entry(vm.vm_id).or_insert(0.0);
            *e = *e * self.config.decay + vm.failed_puts() as f64;
            let need = vm.tmem_used as f64 + self.config.headroom_per_failure * *e;
            needs.push(need.max(floor));
        }
        // Proportional rescale of the above-floor portions into the node
        // (Eq. 2 on headroom only, so the floor survives over-commit).
        let n = needs.len() as f64;
        let sum_above: f64 = needs.iter().map(|&x| x - floor).sum();
        let budget_above = (total as f64 - n * floor).max(0.0);
        let scale = if sum_above > budget_above && sum_above > 0.0 {
            budget_above / sum_above
        } else {
            1.0
        };
        stats
            .vms
            .iter()
            .zip(needs)
            .map(|(vm, need)| MmTarget {
                vm_id: vm.vm_id,
                mm_target: (floor + (need - floor) * scale).floor() as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;
    use tmem::stats::{NodeInfo, VmStat};

    fn snapshot(vms: &[(u64, u64)], total: u64) -> MemStats {
        // (failed_puts, tmem_used)
        MemStats {
            at: SimTime::from_secs(1),
            node: NodeInfo {
                total_tmem: total,
                free_tmem: 0,
                vm_count: vms.len() as u32,
            },
            vms: vms
                .iter()
                .enumerate()
                .map(|(i, &(failed, used))| VmStat {
                    vm_id: VmId(i as u32 + 1),
                    puts_total: failed + 1,
                    puts_succ: 1,
                    gets_total: 0,
                    gets_succ: 0,
                    flushes: 0,
                    tmem_used: used,
                    mm_target: 0,
                    cumul_puts_failed: failed,
                })
                .collect(),
        }
    }

    #[test]
    fn demand_attracts_capacity_immediately() {
        let mut p = Predictive::default();
        // VM1 swaps hard, VM2 holds little and swaps nothing.
        let out = p.compute(&snapshot(&[(500, 400), (0, 50)], 1000));
        assert!(out[0].mm_target > 3 * out[1].mm_target, "got {out:?}");
        let sum: u64 = out.iter().map(|t| t.mm_target).sum();
        assert!(sum <= 1000);
    }

    #[test]
    fn bursts_are_forgotten_geometrically() {
        let mut p = Predictive::default();
        let first = p.compute(&snapshot(&[(500, 100), (0, 100)], 1000))[0].mm_target;
        // Quiet intervals: VM1's advantage decays toward parity.
        let mut last = first;
        for _ in 0..10 {
            last = p.compute(&snapshot(&[(0, 100), (0, 100)], 1000))[0].mm_target;
        }
        assert!(last < first, "target must decay: {first} -> {last}");
        let parity = p.compute(&snapshot(&[(0, 100), (0, 100)], 1000));
        let diff = parity[0].mm_target.abs_diff(parity[1].mm_target);
        assert!(diff < 50, "near parity after the burst fades: {parity:?}");
    }

    #[test]
    fn floor_keeps_idle_vms_admissible() {
        let mut p = Predictive::default();
        let out = p.compute(&snapshot(&[(1000, 900), (0, 0)], 1000));
        assert!(out[1].mm_target >= 10, "2% floor of 1000 pages: {out:?}");
    }

    #[test]
    fn never_overcommits_under_any_demand() {
        let mut p = Predictive::default();
        for failed in [0u64, 10, 10_000] {
            for used in [0u64, 500, 5_000] {
                let out = p.compute(&snapshot(&[(failed, used), (failed, used)], 1000));
                let sum: u64 = out.iter().map(|t| t.mm_target).sum();
                assert!(sum <= 1000, "failed={failed} used={used}: {out:?}");
            }
        }
    }

    #[test]
    fn initial_target_is_the_floor() {
        let p = Predictive::default();
        assert_eq!(p.initial_target(1000), 20);
    }

    #[test]
    #[should_panic(expected = "decay in [0,1)")]
    fn rejects_non_forgetting_decay() {
        Predictive::new(PredictiveConfig {
            decay: 1.0,
            ..PredictiveConfig::default()
        });
    }
}
