//! Property tests on the policies' capacity invariants.

use proptest::prelude::*;
use sim_core::time::SimTime;
use smartmem_core::policy::Policy;
use smartmem_core::{Greedy, ReconfStatic, SmartAlloc, SmartAllocConfig, StaticAlloc};
use tmem::key::VmId;
use tmem::stats::{MemStats, NodeInfo, VmStat};

/// Build a snapshot from per-VM (failed_puts, tmem_used, mm_target).
fn snapshot(vms: &[(u64, u64, u64)], total: u64) -> MemStats {
    MemStats {
        at: SimTime::from_secs(1),
        node: NodeInfo {
            total_tmem: total,
            free_tmem: 0,
            vm_count: vms.len() as u32,
        },
        vms: vms
            .iter()
            .enumerate()
            .map(|(i, &(failed, used, target))| VmStat {
                vm_id: VmId(i as u32 + 1),
                puts_total: failed + 3,
                puts_succ: 3,
                gets_total: 0,
                gets_succ: 0,
                flushes: 0,
                tmem_used: used,
                mm_target: target,
                cumul_puts_failed: failed,
            })
            .collect(),
    }
}

fn vm_strategy(total: u64) -> impl Strategy<Value = (u64, u64, u64)> {
    (0..100u64, 0..total, 0..2 * total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Equation 1 invariant: smart-alloc never over-commits the node, no
    /// matter the demand pattern or P.
    #[test]
    fn smart_alloc_never_overcommits(
        total in 100u64..1_000_000,
        p in 0.01f64..50.0,
        vms in proptest::collection::vec((0..100u64, 0..1_000_000u64, 0..2_000_000u64), 1..8),
    ) {
        let mut policy = SmartAlloc::new(SmartAllocConfig::with_percent(p));
        let out = policy.compute(&snapshot(&vms, total));
        let sum: u64 = out.iter().map(|t| t.mm_target).sum();
        prop_assert!(sum <= total, "sum {sum} > total {total} at P={p}");
        prop_assert_eq!(out.len(), vms.len());
    }

    /// Iterating smart-alloc under symmetric demand contracts the spread
    /// between targets: the additive grow step followed by the
    /// proportional Eq. 2 rescale shrinks disparities geometrically.
    ///
    /// Note what is *not* guaranteed (and this test documents it): exact
    /// convergence to equal shares. Integer flooring in the rescale admits
    /// fixed points that retain part of the initial disparity — e.g.
    /// targets [324, 324, 350] of a 1000-page node are stable under
    /// P=0.5%. The paper's fairness claim is therefore approximate, and
    /// honest: shares end up *near* equal, the gap bounded by where the
    /// contraction stalls, never growing.
    #[test]
    fn smart_alloc_contracts_target_spread(
        total in 1_000u64..100_000,
        p in 0.5f64..10.0,
        starts in proptest::collection::vec(0u64..100_000, 3),
    ) {
        let mut policy = SmartAlloc::new(SmartAllocConfig::with_percent(p));
        let spread_of = |t: &[u64]| t.iter().max().unwrap() - t.iter().min().unwrap();
        let mut targets: Vec<u64> = starts;
        let mut prev_spread = u64::MAX;
        for round in 0..300 {
            let vms: Vec<(u64, u64, u64)> =
                targets.iter().map(|&t| (5u64, t.min(total), t)).collect();
            let out = policy.compute(&snapshot(&vms, total));
            targets = out.iter().map(|t| t.mm_target).collect();
            let spread = spread_of(&targets);
            if round > 0 {
                // Contraction modulo flooring noise.
                prop_assert!(
                    spread <= prev_spread + 3,
                    "spread grew: {prev_spread} -> {spread} at round {round}"
                );
            }
            prev_spread = spread;
        }
        // And the final shares are sane: everyone holds a nonzero share of
        // a fully-committed node.
        let sum: u64 = targets.iter().sum();
        prop_assert!(sum <= total);
        prop_assert!(targets.iter().all(|&t| t > 0));
    }

    /// static-alloc always divides equally and never over-commits.
    #[test]
    fn static_alloc_divides_equally(
        total in 1u64..1_000_000,
        n in 1usize..16,
    ) {
        let mut policy = StaticAlloc;
        let vms = vec![(0u64, 0u64, 0u64); n];
        let out = policy.compute(&snapshot(&vms, total));
        let sum: u64 = out.iter().map(|t| t.mm_target).sum();
        prop_assert!(sum <= total);
        prop_assert!(out.iter().all(|t| t.mm_target == total / n as u64));
    }

    /// reconf-static gives every VM the same share and bases the split on
    /// the number of VMs with failed puts.
    #[test]
    fn reconf_static_splits_over_active_count(
        total in 1u64..1_000_000,
        activity in proptest::collection::vec(0u64..5, 1..10),
    ) {
        let mut policy = ReconfStatic;
        let vms: Vec<(u64, u64, u64)> = activity.iter().map(|&f| (f, 0, 0)).collect();
        let out = policy.compute(&snapshot(&vms, total));
        let active = activity.iter().filter(|&&f| f > 0).count() as u64;
        let expect = total.checked_div(active).unwrap_or(0);
        prop_assert!(out.iter().all(|t| t.mm_target == expect));
    }

    /// greedy always hands out the whole node.
    #[test]
    fn greedy_hands_out_everything(
        total in 1u64..1_000_000,
        vms in proptest::collection::vec((0u64..10, 0u64..100, 0u64..100), 1..8),
    ) {
        let mut policy = Greedy;
        let out = policy.compute(&snapshot(&vms, total));
        prop_assert!(out.iter().all(|t| t.mm_target == total));
    }

    /// Growth monotonicity: under identical prior targets, a VM that
    /// swapped gets at least as much as one that did not.
    #[test]
    fn smart_alloc_rewards_demand(
        total in 1_000u64..100_000,
        p in 0.1f64..20.0,
        prior in 0u64..50_000,
        used in 0u64..50_000,
    ) {
        let mut policy = SmartAlloc::new(SmartAllocConfig::with_percent(p));
        let out = policy.compute(&snapshot(
            &[(10, used.min(prior), prior), (0, used.min(prior), prior)],
            total,
        ));
        prop_assert!(
            out[0].mm_target >= out[1].mm_target,
            "swapping VM got {} < idle VM {}",
            out[0].mm_target,
            out[1].mm_target
        );
    }
}

/// Non-proptest regression: `vm_strategy` helper stays in range (keeps the
/// helper exercised even though some tests inline their strategies).
#[test]
fn vm_strategy_smoke() {
    let _ = vm_strategy(1000);
}
