//! The cluster test battery: multi-host runs are pinned from every side.
//!
//! Four contracts, each with its own failure story:
//!
//! 1. **Single-host equivalence.** A one-host cluster — even with a
//!    non-default interconnect and the fleet scheduler armed — is
//!    byte-identical to the plain single-host path, at every `--jobs`
//!    count, with faults off and on. The cluster layer must be pure
//!    topology: one host means zero behavioural surface.
//! 2. **Conservation.** A migration moves every page or none: summed over
//!    the fleet, `MigrateOut.pages + far == MigrateIn.pages + far +
//!    spilled`, and the trace replay verifier re-derives each host's
//!    occupancy, ledger and admission counters from the event stream
//!    alone. A property test drives random topologies, seeds and chaos
//!    profiles through the same invariant.
//! 3. **Far tier.** Spilling into far memory is deterministic, visible in
//!    the trace, and — when disabled — completely absent (no far events,
//!    no far occupancy, byte-identical reruns).
//! 4. **The fleet report.** The human-readable table and the CSV are
//!    golden-pinned; regenerate deliberately with
//!    `REGEN_TRACE_GOLDEN=1 cargo test -p smartmem-scenarios --test cluster`.

use proptest::prelude::*;
use scenarios::chaos::shipped_profiles;
use scenarios::config::RunConfig;
use scenarios::runner::{run_cluster, run_spec, ClusterConfig, ClusterResult, RunResult};
use scenarios::spec::{
    build_scenario, Arrival, FleetParams, ScenarioKind, ScenarioSpec, WorkloadMix,
};
use scenarios::{dsl, report, trace_check, PolicyKind};
use sim_core::faults::FaultProfile;
use sim_core::netmodel::NetModel;
use sim_core::time::SimDuration;
use sim_core::trace::{Payload, TraceConfig, TraceHeader};
use smartmem_core::FleetConfig;
use std::path::Path;
use xen_sim::host::FarConfig;

// ---------------------------------------------------------------------------
// Cell builders
// ---------------------------------------------------------------------------

/// A fleet cell of `vms` small guests with staggered arrivals: every
/// workload-mix member present, cheap enough for the default suite.
fn fleet_kind(vms: u32, footprint_mb: u32) -> ScenarioKind {
    ScenarioKind::Scenario5(FleetParams {
        vms,
        footprint_mb,
        mix: WorkloadMix::Balanced,
        arrival: Arrival::Staggered { gap_ms: 250 },
    })
}

fn traced_cfg(seed: u64, faults: FaultProfile) -> RunConfig {
    RunConfig {
        seed,
        faults,
        record_series: true,
        trace: Some(TraceConfig::default()),
        ..RunConfig::default()
    }
}

/// Build the spec for a cluster cell, with the host count folded into the
/// scenario name exactly as the `fleet:<hosts>x<vms>` CLI spelling does.
fn cluster_spec(kind: ScenarioKind, hosts: usize, cfg: &RunConfig) -> ScenarioSpec {
    let mut spec = build_scenario(kind, cfg);
    spec.name = dsl::cluster_scenario_name(&spec.name, hosts);
    spec
}

/// A fleet scheduler eager enough to fire inside a short test run.
fn eager_migration() -> FleetConfig {
    FleetConfig {
        divergence_threshold: 0.05,
        cooldown_intervals: 1,
        min_history: 2,
    }
}

fn profile(name: &str) -> FaultProfile {
    shipped_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("{name} ships with the chaos suite"))
        .profile
}

fn jsonl(r: &RunResult, seed: u64) -> String {
    let header = TraceHeader {
        scenario: r.scenario.clone(),
        policy: r.policy.clone(),
        seed,
        filter: None,
    };
    r.trace
        .as_ref()
        .expect("trace requested")
        .to_jsonl(&header, None)
}

/// Assert the replay verifier signs off on every host of a cluster run.
fn assert_replays(cr: &ClusterResult, cell: &str) {
    let rep = trace_check::verify_cluster(&cr.host_results)
        .unwrap_or_else(|e| panic!("{cell}: replay unavailable: {e}"));
    assert!(
        rep.ok(),
        "{cell}: replay diverged from live accounting:\n  {}",
        rep.mismatches.join("\n  ")
    );
    assert!(
        rep.events > 0 && rep.checks > 0,
        "{cell}: degenerate replay ({} events, {} checks)",
        rep.events,
        rep.checks
    );
}

/// Fleet-wide migration flows, re-derived purely from trace events.
#[derive(Debug, Default, PartialEq, Eq)]
struct Flows {
    outs: u64,
    ins: u64,
    dones: u64,
    exported: u64,
    landed: u64,
    spilled: u64,
    downtime: u64,
}

fn migration_flows(cr: &ClusterResult) -> Flows {
    let mut f = Flows::default();
    for host in &cr.host_results {
        for e in &host.trace.as_ref().expect("trace requested").events {
            match e.payload {
                Payload::MigrateOut { pages, far, .. } => {
                    f.outs += 1;
                    f.exported += pages + far;
                }
                Payload::MigrateIn {
                    pages,
                    far,
                    spilled,
                } => {
                    f.ins += 1;
                    f.landed += pages + far;
                    f.spilled += spilled;
                }
                Payload::MigrateDone { downtime } => {
                    f.dones += 1;
                    f.downtime += downtime;
                }
                _ => {}
            }
        }
    }
    f
}

/// Conservation + fleet-metric cross-checks shared by the deterministic
/// acceptance cell and the property test.
fn assert_conservation(cr: &ClusterResult, cell: &str) {
    let f = migration_flows(cr);
    assert_eq!(
        f.outs, f.ins,
        "{cell}: every departure must land (out {} vs in {})",
        f.outs, f.ins
    );
    assert_eq!(
        f.dones, f.outs,
        "{cell}: every migration must complete within the run"
    );
    assert_eq!(
        f.exported,
        f.landed + f.spilled,
        "{cell}: pages lost or duplicated in flight (exported {} vs landed {} + spilled {})",
        f.exported,
        f.landed,
        f.spilled
    );
    assert_eq!(
        f.outs, cr.fleet.migrations,
        "{cell}: fleet metric disagrees with the trace"
    );
    assert_eq!(
        SimDuration::from_nanos(f.downtime),
        cr.fleet.migration_downtime,
        "{cell}: downtime metric disagrees with the trace"
    );
    // The run loop is shared: every host reports the same fleet-wide
    // dispatch count, and nobody hit the safety cutoff.
    for r in &cr.host_results {
        assert_eq!(r.events, cr.host_results[0].events, "{cell}: event counts");
        assert!(!r.truncated, "{cell}: run truncated");
    }
}

// ---------------------------------------------------------------------------
// 1. Single-host equivalence
// ---------------------------------------------------------------------------

/// A one-host cluster with a *non-default* interconnect and the fleet
/// scheduler armed must be byte-identical to the plain single-host path:
/// same Debug form (every per-VM stat, series point and ledger field),
/// same trace JSONL. Checked at jobs 1 and 8, faults off and on — the
/// `jobs` knob and the cluster layer must both be invisible here.
#[test]
fn one_host_cluster_is_byte_identical_to_the_single_host_path() {
    for (chaos, faults) in [
        ("off", FaultProfile::none()),
        ("sample-loss", profile("sample-loss")),
    ] {
        for jobs in [1usize, 8] {
            let cfg = RunConfig {
                jobs,
                ..traced_cfg(20260807, faults.clone())
            };
            let kind = fleet_kind(8, 8);
            let baseline = run_spec(
                build_scenario(kind, &cfg),
                PolicyKind::SmartAlloc { p: 2.0 },
                &cfg,
            );
            let one = ClusterConfig {
                hosts: 1,
                net: NetModel::commodity(),
                far: None,
                migration: Some(eager_migration()),
            };
            let cr = run_cluster(
                build_scenario(kind, &cfg),
                PolicyKind::SmartAlloc { p: 2.0 },
                &cfg,
                &one,
            );
            let cell = format!("jobs {jobs} / chaos {chaos}");
            assert_eq!(cr.fleet.hosts, 1);
            assert_eq!(cr.fleet.migrations, 0, "{cell}: nowhere to migrate to");
            assert_eq!(cr.fleet.cross_host_transfers, 0, "{cell}");
            let host = &cr.host_results[0];
            assert!(
                jsonl(host, cfg.seed) == jsonl(&baseline, cfg.seed),
                "{cell}: trace JSONL differs between run_spec and a 1-host cluster"
            );
            assert_eq!(
                format!("{host:?}"),
                format!("{baseline:?}"),
                "{cell}: 1-host cluster result differs from the single-host path"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Migration: the 2x32 acceptance cell and the conservation proptest
// ---------------------------------------------------------------------------

/// The PR's acceptance cell: a 2-host, 32-VM cluster with the fleet
/// scheduler armed completes with at least one MM-initiated migration,
/// conserves every page across each move, and replay-verifies on both
/// hosts from the trace alone.
#[test]
fn two_host_32_vm_cluster_migrates_and_conserves_every_page() {
    let cfg = traced_cfg(20260807, FaultProfile::none());
    let spec = cluster_spec(fleet_kind(32, 8), 2, &cfg);
    assert_eq!(spec.name, "scenario5-2x32x8mb-balanced");
    let cluster = ClusterConfig {
        hosts: 2,
        net: NetModel::datacenter(),
        far: None,
        migration: Some(eager_migration()),
    };
    let cr = run_cluster(spec, PolicyKind::SmartAlloc { p: 2.0 }, &cfg, &cluster);
    assert!(
        cr.fleet.migrations >= 1,
        "the fleet scheduler never fired on a 2x32 cluster (metrics: {:?})",
        cr.fleet
    );
    assert!(
        cr.fleet.migration_downtime > SimDuration::ZERO,
        "a migration pauses its VM for a nonzero interval"
    );
    assert!(cr.fleet.cross_host_transfers >= cr.fleet.migrations);
    assert_conservation(&cr, "2x32");
    assert_replays(&cr, "2x32");
    // All 32 VMs finished somewhere, exactly once.
    let resident: usize = cr.host_results.iter().map(|r| r.vm_results.len()).sum();
    assert_eq!(resident, 32, "every VM ends resident on exactly one host");
}

// Random topologies, seeds, chaos profiles and scheduler eagerness: the
// conservation invariant and the replay verifier must hold in every cell,
// migrations or none. Small cells keep the property suite affordable.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn migration_conservation_holds_under_random_schedules_and_chaos(
        seed in 1u64..1_000_000,
        hosts in 2usize..=3,
        vms in 4u32..=8,
        chaos_idx in 0usize..4,
        eager in any::<bool>(),
    ) {
        let chaos_names = ["off", "sample-loss", "mm-crash", "bitrot"];
        let faults = match chaos_names[chaos_idx] {
            "off" => FaultProfile::none(),
            name => profile(name),
        };
        let divergence = if eager { 0.05 } else { 0.25 };
        let cfg = traced_cfg(seed, faults);
        let spec = cluster_spec(fleet_kind(vms, 4), hosts, &cfg);
        let cluster = ClusterConfig {
            hosts,
            net: NetModel::datacenter(),
            far: None,
            migration: Some(FleetConfig {
                divergence_threshold: divergence,
                ..eager_migration()
            }),
        };
        let cr = run_cluster(spec, PolicyKind::SmartAlloc { p: 2.0 }, &cfg, &cluster);
        let cell = format!(
            "{hosts} hosts / {vms} vms / seed {seed} / chaos {} / div {divergence}",
            chaos_names[chaos_idx]
        );
        assert_conservation(&cr, &cell);
        assert_replays(&cr, &cell);
    }
}

// ---------------------------------------------------------------------------
// 3. The far tier
// ---------------------------------------------------------------------------

/// With a deliberately tiny far shard, puts spill into far memory, far
/// traffic shows up in the trace, the replay verifier re-derives the far
/// occupancy, and two identical runs produce byte-identical results — the
/// far tier's cost model draws from the deterministic substream plan, not
/// from wall-clock anything.
#[test]
fn far_tier_spills_deterministically_and_replays() {
    let cfg = traced_cfg(20260807, FaultProfile::none());
    let run = || {
        let mut spec = cluster_spec(fleet_kind(8, 8), 2, &cfg);
        // Pin local tmem to a handful of pages per host shard so frontswap
        // occupancy overflows it quickly: persistent puts that find the
        // shard full spill into the (roomy) far tier instead of failing
        // outright. Cleancache puts never spill — ephemeral pages are
        // droppable by contract. The greedy policy is the one whose target
        // check never binds (every VM's target is the whole node), so puts
        // genuinely reach the backend's capacity wall; smart-alloc rescales
        // targets to fit and would mask the far tier entirely.
        spec.tmem_bytes = 2 * 16 * 4096;
        let far = FarConfig {
            capacity_pages: 4096,
        };
        let cluster = ClusterConfig {
            hosts: 2,
            net: NetModel::datacenter(),
            far: Some(far),
            migration: Some(eager_migration()),
        };
        run_cluster(spec, PolicyKind::Greedy, &cfg, &cluster)
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.host_results.iter().zip(&b.host_results) {
        assert_eq!(
            format!("{ra:?}"),
            format!("{rb:?}"),
            "far-tier cluster runs are not deterministic"
        );
    }
    assert_eq!(a.fleet, b.fleet);
    let far_events = a
        .host_results
        .iter()
        .flat_map(|r| &r.trace.as_ref().unwrap().events)
        .filter(|e| matches!(e.payload, Payload::FarGet { .. } | Payload::FarFlush { .. }))
        .count();
    assert!(far_events > 0, "tiny far shard saw no far traffic");
    assert_conservation(&a, "far 2x8");
    assert_replays(&a, "far 2x8");
}

/// `far: None` means *no* far tier, not a zero-sized one: no far events in
/// any host's trace, zero far occupancy everywhere, and reruns are
/// byte-identical (the disabled tier draws nothing from the RNG plan).
#[test]
fn disabled_far_tier_is_completely_absent() {
    let cfg = traced_cfg(20260807, FaultProfile::none());
    let run = || {
        let spec = cluster_spec(fleet_kind(8, 8), 2, &cfg);
        let cluster = ClusterConfig {
            hosts: 2,
            net: NetModel::datacenter(),
            far: None,
            migration: Some(eager_migration()),
        };
        run_cluster(spec, PolicyKind::SmartAlloc { p: 2.0 }, &cfg, &cluster)
    };
    let a = run();
    let b = run();
    for (h, (ra, rb)) in a.host_results.iter().zip(&b.host_results).enumerate() {
        assert_eq!(
            format!("{ra:?}"),
            format!("{rb:?}"),
            "host {h}: far-less cluster runs are not deterministic"
        );
        assert!(
            ra.final_far_used.iter().all(|&p| p == 0),
            "host {h}: far occupancy without a far tier"
        );
        let far_traffic = ra.trace.as_ref().unwrap().events.iter().any(|e| {
            matches!(e.payload, Payload::FarGet { .. } | Payload::FarFlush { .. })
                || matches!(
                    e.payload,
                    Payload::Put {
                        result: sim_core::trace::PutResult::StoredFar,
                        ..
                    }
                )
        });
        assert!(!far_traffic, "host {h}: far events without a far tier");
    }
}

/// The CI cluster-smoke cells, in-tree: a 2-host cluster with migration
/// armed survives the `mm-crash` and `bitrot` chaos profiles and still
/// replay-verifies on every host — control-plane crashes and data-plane
/// corruption compose with migration, including mid-flight purges.
#[test]
fn two_host_chaos_cells_replay_under_mm_crash_and_bitrot() {
    std::thread::scope(|s| {
        let handles: Vec<_> = ["mm-crash", "bitrot"]
            .into_iter()
            .map(|name| {
                s.spawn(move || {
                    let cfg = traced_cfg(20260807, profile(name));
                    let spec = cluster_spec(fleet_kind(8, 8), 2, &cfg);
                    let cluster = ClusterConfig {
                        hosts: 2,
                        net: NetModel::datacenter(),
                        far: None,
                        migration: Some(eager_migration()),
                    };
                    let cr = run_cluster(spec, PolicyKind::SmartAlloc { p: 2.0 }, &cfg, &cluster);
                    let cell = format!("2x8 / chaos {name}");
                    assert_conservation(&cr, &cell);
                    assert_replays(&cr, &cell);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("chaos cell panicked");
        }
    });
}

// ---------------------------------------------------------------------------
// 4. The fleet report, golden-pinned
// ---------------------------------------------------------------------------

/// Compare `actual` to the committed golden, or rewrite it when
/// `REGEN_TRACE_GOLDEN=1` (then fail, so a regen run is never green).
fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("REGEN_TRACE_GOLDEN").is_some() {
        // Write (don't panic) so a single regen run refreshes every golden
        // this test checks; the caller fails the test afterwards.
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the committed golden. If the change is \
         deliberate, regenerate with REGEN_TRACE_GOLDEN=1"
    );
}

/// The rendered fleet table and the `fleet_report.csv` body of one fully
/// deterministic 2x8 cell (far tier on, eager migration) are pinned
/// byte-exactly, stranded-memory and cross-host-traffic columns included.
#[test]
fn fleet_report_and_csv_match_goldens() {
    let cfg = traced_cfg(20260807, FaultProfile::none());
    let spec = cluster_spec(fleet_kind(8, 8), 2, &cfg);
    let far = FarConfig {
        capacity_pages: (spec.tmem_pages() / 2 / 8).max(1),
    };
    let cluster = ClusterConfig {
        hosts: 2,
        net: NetModel::datacenter(),
        far: Some(far),
        migration: Some(eager_migration()),
    };
    let cr = run_cluster(spec, PolicyKind::SmartAlloc { p: 2.0 }, &cfg, &cluster);
    check_golden("fleet_report_2x8.txt", &report::render_fleet(&cr));

    let dir = std::env::temp_dir().join("smartmem-cluster-golden");
    let path = report::write_fleet_csv(&cr, &dir).unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    check_golden("fleet_report_2x8.csv", &body);
    assert!(
        std::env::var_os("REGEN_TRACE_GOLDEN").is_none(),
        "regenerated goldens — rerun without REGEN_TRACE_GOLDEN"
    );
}
