//! Fleet-family regression tests: Scenario5 obeys the same determinism
//! contract as the Table II scenarios — `--jobs` is an engine knob, never
//! a result knob, with faults off *and* on — and one run replays
//! identically to the next.

use scenarios::chaos::shipped_profiles;
use scenarios::config::RunConfig;
use scenarios::runner::{run_scenario, RunResult};
use scenarios::spec::{Arrival, FleetParams, ScenarioKind, WorkloadMix};
use scenarios::PolicyKind;
use sim_core::faults::FaultProfile;

/// A small-but-real fleet cell: 8 VMs, every mix member present, staggered
/// arrivals — everything the generator does, at test-suite cost.
fn fleet_kind() -> ScenarioKind {
    ScenarioKind::Scenario5(FleetParams {
        vms: 8,
        footprint_mb: 8,
        mix: WorkloadMix::Balanced,
        arrival: Arrival::Staggered { gap_ms: 250 },
    })
}

fn cfg(jobs: usize, faults: FaultProfile) -> RunConfig {
    RunConfig {
        seed: 20260807,
        jobs,
        faults,
        ..RunConfig::default()
    }
}

/// The full result structure through its Debug form — every per-VM stat,
/// run record, ledger field and the event count — is the "report bytes"
/// this suite compares.
fn report(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn fleet_run_is_byte_identical_across_job_counts_faults_off() {
    let a = run_scenario(
        fleet_kind(),
        PolicyKind::SmartAlloc { p: 2.0 },
        &cfg(1, FaultProfile::none()),
    );
    let b = run_scenario(
        fleet_kind(),
        PolicyKind::SmartAlloc { p: 2.0 },
        &cfg(8, FaultProfile::none()),
    );
    assert!(!a.truncated, "test cell must run to completion");
    assert!(
        a.vm_results.iter().all(|vm| !vm.runs.is_empty()),
        "every fleet VM ran its program"
    );
    assert_eq!(
        report(&a),
        report(&b),
        "fleet report differs between --jobs 1 and --jobs 8 (faults off)"
    );
}

#[test]
fn fleet_run_is_byte_identical_across_job_counts_faults_on() {
    let profile = shipped_profiles()
        .into_iter()
        .find(|p| p.name == "sample-loss")
        .expect("sample-loss ships with the chaos suite")
        .profile;
    let a = run_scenario(
        fleet_kind(),
        PolicyKind::SmartAlloc { p: 2.0 },
        &cfg(1, profile.clone()),
    );
    let b = run_scenario(
        fleet_kind(),
        PolicyKind::SmartAlloc { p: 2.0 },
        &cfg(8, profile.clone()),
    );
    assert!(a.faults.injected() > 0, "the fault profile actually fired");
    assert_eq!(
        report(&a),
        report(&b),
        "fleet report differs between --jobs 1 and --jobs 8 (faults on)"
    );
    // Replay determinism: the same cell again must reproduce the same
    // ledger and report, fault schedule included.
    let c = run_scenario(
        fleet_kind(),
        PolicyKind::SmartAlloc { p: 2.0 },
        &cfg(1, profile),
    );
    assert_eq!(report(&a), report(&c), "faulted fleet run failed to replay");
}
