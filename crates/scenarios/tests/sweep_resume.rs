//! Resume-equivalence suite: the batch driver's acceptance bar.
//!
//! A sweep killed after any number of cells and resumed — at any
//! `--jobs` count — must produce the **byte-identical** report and CSV
//! and the same per-cell result digests as one uninterrupted run. These
//! tests drive a 12-cell matrix (3 scenarios × 2 policies × 2 chaos,
//! mixing built-in names, a scenario `.toml` file and a fleet cell)
//! through `stop_after` kill points at several k, then resume, and
//! compare bytes. The journal-corruption tests tear records mid-write,
//! flip payload bytes and append garbage, and check every damaged record
//! is detected (length/digest), warned about, and simply re-run — while
//! a journal from a *different* sweep is refused outright.

use scenarios::batch::{self, SweepOutcome, JOURNAL_FILE};
use std::fs;
use std::path::{Path, PathBuf};

const MANIFEST: &str = r#"
version = 1

[sweep]
name = "resume-equivalence"
scenarios = ["usemem", "tiny.toml", "fleet:2:8:balanced:0"]
policies = ["greedy", "smart-alloc:2"]
chaos = ["none", "mm-crash"]
reps = 1
seed = 7
scale = 0.01
"#;

const TINY_SCENARIO: &str = r#"
version = 1

[scenario]
name = "tiny"
tmem = "64MiB"

[[vm]]
count = 2
ram = "32MiB"
program = ["run usemem 8MiB 8MiB 32MiB 2"]
"#;

/// A scratch area holding the manifest, its scenario file, and per-case
/// sweep directories. Unique per test so parallel test threads never
/// collide; removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(test: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("smartmem-sweep-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("sweep.toml"), MANIFEST).unwrap();
        fs::write(root.join("tiny.toml"), TINY_SCENARIO).unwrap();
        Scratch { root }
    }

    fn manifest(&self) -> PathBuf {
        self.root.join("sweep.toml")
    }

    fn dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Everything the equivalence checks compare: rendered report, rendered
/// CSV, and the per-cell digests in matrix order.
fn fingerprint(plan: &batch::SweepPlan, out: &SweepOutcome) -> (String, String, Vec<u64>) {
    assert!(out.complete(), "fingerprints are taken of complete sweeps");
    (
        batch::render_report(plan, out),
        batch::render_csv(out),
        out.records.iter().map(|r| r.digest).collect(),
    )
}

fn baseline(scratch: &Scratch) -> (String, String, Vec<u64>) {
    let plan = batch::load_plan(&scratch.manifest(), 1).unwrap();
    let out = batch::run_sweep(&plan, &scratch.dir("baseline"), None).unwrap();
    assert_eq!(out.total, 12, "the test matrix is designed as 12 cells");
    assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    fingerprint(&plan, &out)
}

#[test]
fn killed_and_resumed_sweeps_are_byte_identical_at_any_jobs_count() {
    let scratch = Scratch::new("equivalence");
    let expected = baseline(&scratch);

    // k spans the edges (first cell, almost-done) and the middle; each k
    // runs the interrupted pass and the resume at both jobs 1 and jobs 8.
    for (k, jobs) in [(1, 1), (1, 8), (5, 8), (7, 1), (11, 8), (11, 1)] {
        let plan = batch::load_plan(&scratch.manifest(), jobs).unwrap();
        let dir = scratch.dir(&format!("kill-{k}-jobs-{jobs}"));

        let first = batch::run_sweep(&plan, &dir, Some(k)).unwrap();
        assert!(!first.complete(), "k={k} must leave the sweep unfinished");
        assert_eq!((first.ran, first.resumed), (k, 0));

        let second = batch::run_sweep(&plan, &dir, None).unwrap();
        assert!(second.complete());
        assert_eq!((second.ran, second.resumed), (12 - k, k));
        assert!(second.warnings.is_empty(), "{:?}", second.warnings);

        let got = fingerprint(&plan, &second);
        assert_eq!(
            got, expected,
            "resumed sweep (k={k}, jobs={jobs}) must be byte-identical to uninterrupted"
        );
    }
}

#[test]
fn double_interrupt_then_resume_is_still_identical() {
    let scratch = Scratch::new("double-kill");
    let expected = baseline(&scratch);
    let plan = batch::load_plan(&scratch.manifest(), 2).unwrap();
    let dir = scratch.dir("twice");
    assert_eq!(batch::run_sweep(&plan, &dir, Some(3)).unwrap().ran, 3);
    assert_eq!(batch::run_sweep(&plan, &dir, Some(4)).unwrap().resumed, 3);
    let out = batch::run_sweep(&plan, &dir, None).unwrap();
    assert!(out.complete());
    assert_eq!(out.resumed, 7);
    assert_eq!(fingerprint(&plan, &out), expected);
}

/// Satellite: every way a journal can rot — torn tail record (a kill
/// mid-write), a flipped payload byte, trailing garbage — is detected by
/// the length/digest framing, surfaced as a warning naming the line, and
/// treated as "cell not done"; the resumed sweep still converges to the
/// uninterrupted bytes.
#[test]
fn corrupted_journal_records_are_warned_and_rerun() {
    let scratch = Scratch::new("corruption");
    let expected = baseline(&scratch);
    let plan = batch::load_plan(&scratch.manifest(), 1).unwrap();

    // (name, corruption applied to a 3-cell journal, warning substring)
    type Corruption = Box<dyn Fn(&Path)>;
    let cases: Vec<(&str, Corruption, &str)> = vec![
        (
            "torn-tail",
            Box::new(|j: &Path| {
                // Chop mid-record: a process killed inside write(2).
                let bytes = fs::read(j).unwrap();
                fs::write(j, &bytes[..bytes.len() - 21]).unwrap();
            }),
            "treating its cell as not done",
        ),
        (
            "flipped-byte",
            Box::new(|j: &Path| {
                let text = fs::read_to_string(j).unwrap();
                // Damage the *last* record's payload tail (vm_ns digits);
                // framing must catch it even though the line parses.
                let flipped = {
                    let mut lines: Vec<String> = text.lines().map(String::from).collect();
                    let last = lines.last_mut().unwrap();
                    let swapped: String = last
                        .chars()
                        .rev()
                        .enumerate()
                        .map(|(i, c)| if i == 1 { '9' } else { c })
                        .collect();
                    *last = swapped.chars().rev().collect();
                    lines.join("\n") + "\n"
                };
                assert_ne!(flipped, text, "corruption must change the journal");
                fs::write(j, flipped).unwrap();
            }),
            "digest mismatch",
        ),
        (
            "trailing-garbage",
            Box::new(|j: &Path| {
                let mut bytes = fs::read(j).unwrap();
                bytes.extend_from_slice(b"SMJ1 oops not-a-record\n");
                fs::write(j, bytes).unwrap();
            }),
            "treating its cell as not done",
        ),
    ];

    for (name, corrupt, want) in cases {
        let dir = scratch.dir(name);
        let first = batch::run_sweep(&plan, &dir, Some(3)).unwrap();
        assert_eq!(first.ran, 3);
        corrupt(&dir.join(JOURNAL_FILE));

        let out = batch::run_sweep(&plan, &dir, None).unwrap();
        assert!(out.complete(), "{name}: sweep must still finish");
        assert!(
            out.warnings.iter().any(|w| w.contains(want)),
            "{name}: expected a warning containing '{want}', got {:?}",
            out.warnings
        );
        assert!(
            out.warnings.iter().all(|w| w.contains("journal line ")),
            "{name}: warnings must name the journal line: {:?}",
            out.warnings
        );
        assert_eq!(
            fingerprint(&plan, &out),
            expected,
            "{name}: corruption recovery must not change the final bytes"
        );
    }
}

#[test]
fn truncation_inside_the_header_restarts_the_journal() {
    let scratch = Scratch::new("torn-header");
    let plan = batch::load_plan(&scratch.manifest(), 1).unwrap();
    let dir = scratch.dir("sweep");
    batch::run_sweep(&plan, &dir, Some(2)).unwrap();
    // Keep only half of the *first* line: even the header record can tear.
    let text = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    let first_line_len = text.lines().next().unwrap().len();
    fs::write(dir.join(JOURNAL_FILE), &text[..first_line_len / 2]).unwrap();

    let out = batch::run_sweep(&plan, &dir, Some(1)).unwrap();
    assert_eq!(
        out.resumed, 0,
        "a torn header invalidates the whole journal (cells cannot be trusted \
         without the sweep identity)"
    );
    assert!(!out.warnings.is_empty());
}

#[test]
fn journal_from_a_different_sweep_is_refused() {
    let scratch = Scratch::new("foreign");
    let plan = batch::load_plan(&scratch.manifest(), 1).unwrap();
    let dir = scratch.dir("sweep");
    batch::run_sweep(&plan, &dir, Some(1)).unwrap();

    // Same axes, different seed: a different experiment. Mixing its cells
    // into this journal would silently corrupt results, so it must error
    // rather than warn.
    fs::write(
        scratch.root.join("other.toml"),
        MANIFEST.replace("seed = 7", "seed = 8"),
    )
    .unwrap();
    let other = batch::load_plan(&scratch.root.join("other.toml"), 1).unwrap();
    let err = batch::run_sweep(&other, &dir, None).unwrap_err();
    assert!(
        err.contains("different sweep"),
        "foreign journal must be refused, got: {err}"
    );

    // Editing a referenced scenario file changes the identity too.
    fs::write(
        scratch.root.join("tiny.toml"),
        TINY_SCENARIO.replace("64MiB", "32MiB"),
    )
    .unwrap();
    let edited = batch::load_plan(&scratch.manifest(), 1).unwrap();
    let err = batch::run_sweep(&edited, &dir, None).unwrap_err();
    assert!(err.contains("different sweep"), "{err}");
}
