//! Regression tests: parallelism is an engine knob, never a result knob.
//!
//! The acceptance bar for the parallel experiment engine is byte-identical
//! output — the rendered report text and the CSV bodies of a figure run at
//! `--jobs 1` and at `--jobs N` must match exactly, not merely "be close".
//! These tests run the real fig3/table2 paths at a tiny scale under both
//! engines and compare bytes.
//!
//! The heaviest cells (multi-rep and multi-job grids) are `#[ignore]`d so
//! the default `cargo test -q` stays fast; CI's slow-suite job runs them
//! with `cargo test -- --ignored`.

use scenarios::chaos::{self, shipped_profiles};
use scenarios::config::RunConfig;
use scenarios::runner::run_scenario;
use scenarios::{figures, report, PolicyKind, ScenarioKind, DEGRADATION_BOUND};
use sim_core::trace::TraceConfig;
use std::fs;
use std::path::Path;

fn cfg(jobs: usize) -> RunConfig {
    RunConfig {
        scale: 0.01,
        seed: 20260806,
        jobs,
        ..RunConfig::default()
    }
}

#[test]
#[ignore = "multi-rep fig3 grid (~25 s); CI runs the slow suite via --ignored"]
fn parallel_fig3_is_byte_identical_to_serial() {
    let reps = 2;
    let serial = figures::fig3(&cfg(1), reps);
    let parallel = figures::fig3(&cfg(4), reps);

    // Report text.
    assert_eq!(
        report::render_bars(&serial),
        report::render_bars(&parallel),
        "fig3 report text differs between --jobs 1 and --jobs 4"
    );

    // CSV bytes.
    let base = std::env::temp_dir().join("smartmem-determinism-fig3");
    let dir_s = base.join("serial");
    let dir_p = base.join("parallel");
    let path_s = report::write_bars_csv(&serial, &dir_s).unwrap();
    let path_p = report::write_bars_csv(&parallel, &dir_p).unwrap();
    let bytes_s = fs::read(path_s).unwrap();
    let bytes_p = fs::read(path_p).unwrap();
    assert!(
        bytes_s == bytes_p,
        "fig3 CSV differs between --jobs 1 and --jobs 4"
    );
    let _ = fs::remove_dir_all(base);
}

#[test]
fn parallel_series_figure_is_byte_identical_to_serial() {
    let serial = figures::fig4(&cfg(1));
    let parallel = figures::fig4(&cfg(3));
    assert_eq!(
        report::render_series(&serial, 24),
        report::render_series(&parallel, 24),
        "fig4 series report differs between job counts"
    );

    let base = std::env::temp_dir().join("smartmem-determinism-fig4");
    let path_s = report::write_series_csv(&serial, &base.join("serial")).unwrap();
    let path_p = report::write_series_csv(&parallel, &base.join("parallel")).unwrap();
    assert!(
        fs::read(path_s).unwrap() == fs::read(path_p).unwrap(),
        "fig4 CSV differs between job counts"
    );
    let _ = fs::remove_dir_all(base);
}

#[test]
#[ignore = "full table2 twice at jobs 1/8 (~20 s); CI runs the slow suite via --ignored"]
fn table2_is_independent_of_job_count() {
    assert_eq!(figures::table2_rows(&cfg(1)), figures::table2_rows(&cfg(8)));
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading golden {}: {e}", path.display()))
}

/// The fault-injection layer must be invisible when disabled: with the
/// default (fault-free) `RunConfig`, today's fig3 report is byte-identical
/// to the pre-fault-injection build's output, captured in
/// `tests/golden/`. A diff here means the robustness PR changed fault-free
/// behaviour — the one thing it promised not to do.
#[test]
#[ignore = "two-rep fig3 grid (~25 s); CI runs the slow suite via --ignored"]
fn fault_free_fig3_matches_pre_fault_injection_golden() {
    let fig = figures::fig3(&cfg(4), 2);
    assert_eq!(
        report::render_bars(&fig),
        golden("fig3_s0.01_seed20260806_reps2.txt"),
        "fault-free fig3 output drifted from the pre-PR golden"
    );
}

#[test]
fn fault_free_table2_matches_pre_fault_injection_golden() {
    let mut out = String::from("== Table II — scenarios (scale 0.01) ==\n");
    for (name, rows) in figures::table2_rows(&cfg(1)) {
        out.push_str(&name);
        out.push('\n');
        for r in rows {
            out.push_str("  ");
            out.push_str(&r);
            out.push('\n');
        }
    }
    assert_eq!(
        out,
        golden("table2_s0.01.txt"),
        "fault-free table2 output drifted from the pre-PR golden"
    );
}

/// Batched control-plane delivery must be invisible: same-tick events now
/// drain from the heap as one batch and an interval's VIRQ snapshots cross
/// to the relay in one call, so the pre-batch goldens pin the output. With
/// `fault_free_fig3_matches_pre_fault_injection_golden` covering jobs 4,
/// this completes the jobs 1/4/8 grid against the same golden; the
/// fault-profiles-on half of the contract lives in
/// `chaos_report_is_byte_identical_across_job_counts` (reports at jobs
/// 1/4/8) and in the faulted trace check below. Trace JSONL is produced
/// per run — the engine parallelizes across grid cells, never inside a
/// run — so its goldens (`trace_replay.rs`, default suite) plus the
/// faulted A/B here are the per-run equivalent of the jobs grid.
#[test]
#[ignore = "fig3 grids at jobs 1 and 8 plus traced faulted runs (~60 s); CI runs the slow suite via --ignored"]
fn batched_delivery_matches_pre_batch_goldens_across_engine_widths() {
    let expected = golden("fig3_s0.01_seed20260806_reps2.txt");
    for jobs in [1usize, 8] {
        let fig = figures::fig3(&cfg(jobs), 2);
        assert_eq!(
            report::render_bars(&fig),
            expected,
            "batched dispatch at --jobs {jobs} drifted from the pre-batch fig3 golden"
        );
    }

    // Fault profile on: two independent traced runs must serialize to
    // byte-identical JSONL — batch delivery draws netlink fates per
    // logical message, so the fault stream (and everything downstream of
    // it) stays exactly that of message-at-a-time delivery.
    let sample_loss = shipped_profiles()
        .into_iter()
        .find(|p| p.name == "sample-loss")
        .expect("sample-loss ships with the chaos suite")
        .profile;
    let faulted = RunConfig {
        scale: 0.01,
        time_scale: Some(0.1),
        seed: 42,
        faults: sample_loss,
        trace: Some(TraceConfig::default()),
        ..RunConfig::default()
    };
    let jsonl = |r: &scenarios::runner::RunResult| {
        let header = sim_core::trace::TraceHeader {
            scenario: r.scenario.clone(),
            policy: r.policy.clone(),
            seed: faulted.seed,
            filter: None,
        };
        r.trace
            .as_ref()
            .expect("trace requested")
            .to_jsonl(&header, None)
    };
    let a = run_scenario(
        ScenarioKind::Scenario1,
        PolicyKind::SmartAlloc { p: 2.0 },
        &faulted,
    );
    let b = run_scenario(
        ScenarioKind::Scenario1,
        PolicyKind::SmartAlloc { p: 2.0 },
        &faulted,
    );
    assert_eq!(
        format!("{:?}", a.faults),
        format!("{:?}", b.faults),
        "fault ledgers must replay identically"
    );
    assert!(
        jsonl(&a) == jsonl(&b),
        "faulted trace JSONL differs between identical batched runs"
    );
}

/// Chaos runs obey the same determinism contract as the figures: one seed
/// pins the fault schedule, and the rendered report and ledger CSV are
/// byte-identical at any `--jobs` count.
#[test]
#[ignore = "three full chaos grids (~45 s); CI runs the slow suite via --ignored"]
fn chaos_report_is_byte_identical_across_job_counts() {
    let run = |jobs: usize| {
        let config = RunConfig {
            scale: 0.01,
            seed: 42,
            jobs,
            ..RunConfig::default()
        };
        chaos::run_chaos(
            &config,
            &[ScenarioKind::Scenario1],
            &[PolicyKind::Greedy, PolicyKind::SmartAlloc { p: 2.0 }],
            &shipped_profiles(),
            DEGRADATION_BOUND,
        )
    };
    let r1 = run(1);
    let r4 = run(4);
    let r8 = run(8);
    assert_eq!(
        r1.render(),
        r4.render(),
        "chaos report differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        r4.render(),
        r8.render(),
        "chaos report differs between --jobs 4 and --jobs 8"
    );
    assert_eq!(r1.to_csv(), r8.to_csv(), "chaos ledger CSV differs");
}

/// The flight recorder must be an observer, never an actor: attaching it
/// cannot change a single simulation outcome. Run one cell with tracing
/// off and on and compare the *entire* result structure (through its Debug
/// form, which covers every per-VM stat, series point and ledger field)
/// after detaching the trace itself.
#[test]
fn tracing_is_invisible_to_simulation_outcomes() {
    let config = RunConfig {
        scale: 0.01,
        time_scale: Some(0.1), // short run — this is an A/B identity check
        seed: 42,
        record_series: true,
        ..RunConfig::default()
    };
    let traced_config = RunConfig {
        trace: Some(TraceConfig::default()),
        ..config.clone()
    };
    let plain = run_scenario(
        ScenarioKind::Scenario1,
        PolicyKind::SmartAlloc { p: 2.0 },
        &config,
    );
    let mut traced = run_scenario(
        ScenarioKind::Scenario1,
        PolicyKind::SmartAlloc { p: 2.0 },
        &traced_config,
    );
    assert!(plain.trace.is_none(), "no recorder without trace config");
    assert!(
        traced.trace.as_ref().is_some_and(|t| !t.events.is_empty()),
        "recorder attached and recording"
    );
    traced.trace = None;
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "attaching the flight recorder changed a simulation outcome"
    );
}

#[test]
#[ignore = "jobs-64 oversubscription grid (~20 s); CI runs the slow suite via --ignored"]
fn oversubscribed_jobs_change_nothing() {
    // More workers than grid cells: every worker beyond the cell count
    // must idle out without disturbing collection order.
    let groups_serial = figures::running_time_groups(
        scenarios::ScenarioKind::Scenario2,
        &[scenarios::PolicyKind::Greedy, scenarios::PolicyKind::NoTmem],
        &cfg(1),
        2,
    );
    let groups_wide = figures::running_time_groups(
        scenarios::ScenarioKind::Scenario2,
        &[scenarios::PolicyKind::Greedy, scenarios::PolicyKind::NoTmem],
        &cfg(64),
        2,
    );
    assert_eq!(groups_serial.len(), groups_wide.len());
    for (a, b) in groups_serial.iter().zip(&groups_wide) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.bars.len(), b.bars.len());
        for (x, y) in a.bars.iter().zip(&b.bars) {
            assert_eq!(x.label, y.label);
            assert!(x.mean_s.to_bits() == y.mean_s.to_bits(), "bit-exact means");
            assert!(x.std_s.to_bits() == y.std_s.to_bits(), "bit-exact stddevs");
            assert_eq!(x.n, y.n);
        }
    }
}
