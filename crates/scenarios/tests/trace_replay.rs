//! Replay verification of the flight recorder, end to end.
//!
//! The trace schema is a load-bearing contract: `trace_check::verify`
//! re-derives per-VM tmem occupancy, the admission counters and the fault
//! ledger purely from the event stream and must land exactly on the live
//! accounting for every covered cell. Two golden files pin the serialized
//! JSONL form byte-exactly — one synthetic trace exercising every payload
//! variant, and one real (filtered) run. Regenerate them after a deliberate
//! schema change with:
//!
//! ```text
//! REGEN_TRACE_GOLDEN=1 cargo test -p smartmem-scenarios --test trace_replay
//! ```

use scenarios::chaos::{chaos_policies, shipped_profiles};
use scenarios::config::RunConfig;
use scenarios::runner::run_scenario;
use scenarios::{trace_check, ScenarioKind};
use sim_core::cost::CostModel;
use sim_core::faults::{FaultProfile, NetlinkFate, SampleFate};
use sim_core::time::SimTime;
use sim_core::trace::{
    FaultKind, Payload, PushOutcome, PutResult, Recorder, Subsystem, TraceConfig, TraceData,
    TraceHeader, Tracer, TRACE_SCHEMA_VERSION,
};
use std::path::{Path, PathBuf};

fn traced_cfg(faults: FaultProfile) -> RunConfig {
    RunConfig {
        scale: 0.01,
        seed: 42,
        record_series: true, // the verifier checks the series point-wise
        trace: Some(TraceConfig::default()),
        faults,
        ..RunConfig::default()
    }
}

fn sample_loss() -> FaultProfile {
    shipped_profiles()
        .into_iter()
        .find(|p| p.name == "sample-loss")
        .expect("sample-loss ships with the chaos suite")
        .profile
}

/// Run one traced cell and assert its replay lands exactly on the live
/// accounting. Cells run on worker threads so multi-core hosts overlap them.
fn verify_cells(
    cells: Vec<(
        ScenarioKind,
        scenarios::PolicyKind,
        &'static str,
        FaultProfile,
    )>,
) {
    std::thread::scope(|s| {
        let handles: Vec<_> = cells
            .into_iter()
            .map(|(scenario, policy, chaos, faults)| {
                s.spawn(move || {
                    let r = run_scenario(scenario, policy, &traced_cfg(faults));
                    let cell = format!("{} / {} / chaos {chaos}", r.scenario, r.policy);
                    let rep = trace_check::verify(&r)
                        .unwrap_or_else(|e| panic!("{cell}: replay unavailable: {e}"));
                    assert!(
                        rep.ok(),
                        "{cell}: replay diverged from live accounting:\n  {}",
                        rep.mismatches.join("\n  ")
                    );
                    assert!(
                        rep.events > 0 && rep.checks > 0,
                        "{cell}: degenerate replay ({} events, {} checks)",
                        rep.events,
                        rep.checks
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("replay cell panicked");
        }
    });
}

/// Fast default slice of the grid: both scenarios, a smart and a static
/// policy, chaos off and on. The exhaustive grid lives in the `#[ignore]`d
/// test below (CI runs it with `--ignored`).
#[test]
fn replay_reproduces_live_accounting_representative_cells() {
    verify_cells(vec![
        (
            ScenarioKind::Scenario1,
            scenarios::PolicyKind::SmartAlloc { p: 2.0 },
            "off",
            FaultProfile::none(),
        ),
        (
            ScenarioKind::Scenario1,
            scenarios::PolicyKind::Greedy,
            "sample-loss",
            sample_loss(),
        ),
        (
            ScenarioKind::Scenario2,
            scenarios::PolicyKind::StaticAlloc,
            "sample-loss",
            sample_loss(),
        ),
    ]);
}

/// (Scenario1–2 × the four managed policies × chaos off/sample-loss):
/// replaying the event stream must reproduce the final per-VM occupancy,
/// the admission counters and the fault ledger exactly, in every cell.
/// ~45 s on one core — part of the slow suite (`cargo test -- --ignored`).
#[test]
#[ignore = "exhaustive 16-cell grid; CI runs it via --ignored"]
fn replay_reproduces_live_accounting_across_the_grid() {
    let mut cells = Vec::new();
    for scenario in [ScenarioKind::Scenario1, ScenarioKind::Scenario2] {
        for policy in chaos_policies() {
            for (chaos, faults) in [
                ("off", FaultProfile::none()),
                ("sample-loss", sample_loss()),
            ] {
                cells.push((scenario, policy, chaos, faults));
            }
        }
    }
    verify_cells(cells);
}

/// JSONL round-trip: parse(to_jsonl(trace)) returns the same events and
/// header fields, and re-serializing the parsed events is byte-stable.
#[test]
fn jsonl_round_trips_exactly() {
    let cfg = RunConfig {
        time_scale: Some(0.1), // fewer intervals — this test is about bytes
        ..traced_cfg(sample_loss())
    };
    let r = run_scenario(
        ScenarioKind::Scenario1,
        scenarios::PolicyKind::SmartAlloc { p: 2.0 },
        &cfg,
    );
    let data = r.trace.as_ref().expect("trace was configured");
    let header = TraceHeader {
        scenario: r.scenario.clone(),
        policy: r.policy.clone(),
        seed: cfg.seed,
        filter: None,
    };
    let text = data.to_jsonl(&header, None);
    let parsed = TraceData::parse_jsonl(&text).expect("own output must parse");
    assert_eq!(parsed.version, TRACE_SCHEMA_VERSION);
    assert_eq!(parsed.scenario, r.scenario);
    assert_eq!(parsed.policy, r.policy);
    assert_eq!(parsed.seed, cfg.seed);
    assert_eq!(parsed.dropped_oldest, 0);
    assert_eq!(parsed.filter, None);
    assert_eq!(parsed.events, data.events, "events must round-trip exactly");

    let re = TraceData {
        events: parsed.events,
        dropped_oldest: parsed.dropped_oldest,
        metrics: Default::default(), // metrics are not serialized
    };
    assert_eq!(
        re.to_jsonl(&header, None),
        text,
        "serialization must be byte-stable"
    );
}

/// A filtered write keeps only the requested subsystems and stamps the
/// filter into the header, which marks the trace as non-replayable.
#[test]
fn write_filter_restricts_subsystems_and_is_recorded() {
    let cfg = RunConfig {
        time_scale: Some(0.1),
        ..traced_cfg(FaultProfile::none())
    };
    let r = run_scenario(
        ScenarioKind::Scenario1,
        scenarios::PolicyKind::StaticAlloc,
        &cfg,
    );
    let data = r.trace.as_ref().unwrap();
    let header = TraceHeader {
        scenario: r.scenario.clone(),
        policy: r.policy.clone(),
        seed: cfg.seed,
        filter: None,
    };
    let text = data.to_jsonl(&header, Some(&[Subsystem::Hypervisor, Subsystem::Mm]));
    let parsed = TraceData::parse_jsonl(&text).unwrap();
    assert_eq!(parsed.filter.as_deref(), Some("hyp,mm"));
    assert!(
        !parsed.events.is_empty(),
        "mm/hyp events must survive the filter"
    );
    assert!(parsed
        .events
        .iter()
        .all(|e| matches!(e.subsystem, Subsystem::Mm | Subsystem::Hypervisor)));
    assert!(parsed.events.len() < data.events.len());
}

// ---------------------------------------------------------------------------
// Golden pinning
// ---------------------------------------------------------------------------

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` to the committed golden, or rewrite the golden when
/// `REGEN_TRACE_GOLDEN=1` (then fail, so a regen run is never green).
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("REGEN_TRACE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        panic!(
            "regenerated {} — rerun without REGEN_TRACE_GOLDEN",
            path.display()
        );
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the committed golden. If the schema change is \
         deliberate, bump TRACE_SCHEMA_VERSION and regenerate with \
         REGEN_TRACE_GOLDEN=1"
    );
}

/// A synthetic trace with one event of every payload variant (and every
/// enum label), serialized and compared byte-exactly. This is the schema
/// contract: any change to the wire form shows up here first.
#[test]
fn trace_schema_golden_covers_every_event_kind() {
    assert_eq!(
        TRACE_SCHEMA_VERSION, 1,
        "bump the golden file name with the schema"
    );
    let tracer = Tracer::new(Recorder::new(1024, Some(CostModel::hdd())));
    let evs: Vec<(Option<u32>, Subsystem, Payload)> = vec![
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Put {
                pool: 0,
                result: PutResult::Stored,
                used: 10,
                target: 100,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Put {
                pool: 0,
                result: PutResult::Replaced,
                used: 10,
                target: 100,
            },
        ),
        (
            Some(2),
            Subsystem::Tmem,
            Payload::Put {
                pool: 1,
                result: PutResult::StoredEvict,
                used: 99,
                target: 100,
            },
        ),
        (
            Some(2),
            Subsystem::Tmem,
            Payload::Put {
                pool: 1,
                result: PutResult::RejectTarget,
                used: 100,
                target: 100,
            },
        ),
        (
            Some(2),
            Subsystem::Tmem,
            Payload::Put {
                pool: 1,
                result: PutResult::RejectCapacity,
                used: 50,
                target: 100,
            },
        ),
        (Some(1), Subsystem::Tmem, Payload::Evict { pool: 1 }),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Get {
                pool: 0,
                hit: true,
                freed: true,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Get {
                pool: 1,
                hit: false,
                freed: false,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Flush { pool: 0, pages: 1 },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::PoolDestroy { pool: 0, pages: 7 },
        ),
        (
            Some(3),
            Subsystem::Tmem,
            Payload::Reclaim { pool: 2, pages: 4 },
        ),
        (
            None,
            Subsystem::Hypervisor,
            Payload::TargetsApplied {
                seq: 5,
                entries: 3,
                applied: true,
            },
        ),
        (
            None,
            Subsystem::Hypervisor,
            Payload::TargetsApplied {
                seq: 4,
                entries: 3,
                applied: false,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::VirqSample {
                seq: 6,
                fate: SampleFate::Deliver,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::VirqSample {
                seq: 7,
                fate: SampleFate::Drop,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::VirqSample {
                seq: 8,
                fate: SampleFate::Delay,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::VirqSample {
                seq: 9,
                fate: SampleFate::Duplicate,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::IntervalClose {
                seq: 6,
                stale: false,
                ok: true,
            },
        ),
        (
            None,
            Subsystem::Virq,
            Payload::IntervalClose {
                seq: 7,
                stale: true,
                ok: false,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::NetlinkStats {
                seq: 6,
                fate: NetlinkFate::Deliver,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::NetlinkStats {
                seq: 7,
                fate: NetlinkFate::Drop,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::NetlinkStats {
                seq: 8,
                fate: NetlinkFate::Reorder,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::RelayEnqueue { seq: 6, depth: 2 },
        ),
        (None, Subsystem::Relay, Payload::RelayShed { seq: 5 }),
        (
            None,
            Subsystem::Relay,
            Payload::RelayPush {
                seq: 5,
                attempt: 1,
                outcome: PushOutcome::Landed,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::RelayPush {
                seq: 5,
                attempt: 2,
                outcome: PushOutcome::Parked,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::RelayPush {
                seq: 5,
                attempt: 3,
                outcome: PushOutcome::Superseded,
            },
        ),
        (
            None,
            Subsystem::Relay,
            Payload::RelayPush {
                seq: 5,
                attempt: 4,
                outcome: PushOutcome::Abandoned,
            },
        ),
        (
            None,
            Subsystem::Mm,
            Payload::MmDecision {
                seq_in: 6,
                push_seq: 5,
                sent: true,
                warming: false,
                targets: vec![(1, 100), (2, 200), (3, 0)],
                rescale: Some((300, 250)),
            },
        ),
        (
            None,
            Subsystem::Mm,
            Payload::MmDecision {
                seq_in: 7,
                push_seq: 0,
                sent: false,
                warming: true,
                targets: vec![],
                rescale: None,
            },
        ),
        (None, Subsystem::Mm, Payload::MmDiscard { seq_in: 6 }),
        (None, Subsystem::Mm, Payload::MmCrash { cycle: 9 }),
        (None, Subsystem::Mm, Payload::MmRestart),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::SampleDrop,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::SampleDelay,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::SampleDuplicate,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::NetlinkDrop,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::NetlinkReorder,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::HypercallFail,
            },
        ),
        (
            None,
            Subsystem::Fault,
            Payload::Fault {
                kind: FaultKind::MmCrash,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::PoolCreate {
                pool: 0,
                ephemeral: false,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::PoolCreate {
                pool: 3,
                ephemeral: true,
            },
        ),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::Put {
                pool: 0,
                result: PutResult::StoredFar,
                used: 100,
                target: 100,
            },
        ),
        (Some(1), Subsystem::Tmem, Payload::FarGet { pool: 0 }),
        (
            Some(1),
            Subsystem::Tmem,
            Payload::FarFlush { pool: 0, pages: 3 },
        ),
        (
            Some(2),
            Subsystem::Fleet,
            Payload::MigrateOut {
                pages: 40,
                far: 5,
                purged: 1,
                ram: 2048,
            },
        ),
        (
            Some(2),
            Subsystem::Fleet,
            Payload::MigrateIn {
                pages: 38,
                far: 5,
                spilled: 2,
            },
        ),
        (
            Some(2),
            Subsystem::Fleet,
            Payload::MigrateDone {
                downtime: 5_702_400,
            },
        ),
    ];
    for (i, (vm, sub, payload)) in evs.into_iter().enumerate() {
        tracer.set_now(SimTime(i as u64 * 1_000));
        tracer.emit(|| (vm, sub, payload));
    }
    let data = tracer.finish().unwrap();
    let header = TraceHeader {
        scenario: "synthetic".into(),
        policy: "schema-pin".into(),
        seed: 0,
        filter: None,
    };
    let text = data.to_jsonl(&header, None);
    assert!(text.starts_with("{\"schema\":\"smartmem-trace\",\"version\":1,"));
    TraceData::parse_jsonl(&text).expect("golden trace must parse");
    check_golden("trace_schema_v1.jsonl", &text);
}

/// One real (small, filtered) run pinned byte-exactly: Scenario 1 under
/// static-alloc with a 10× sampling interval, written with a `hyp,mm`
/// subsystem filter. Pins event ordering and timestamping, not just the
/// per-line shape.
#[test]
fn small_run_jsonl_matches_golden_byte_exactly() {
    let cfg = RunConfig {
        time_scale: Some(0.1),
        ..traced_cfg(FaultProfile::none())
    };
    let r = run_scenario(
        ScenarioKind::Scenario1,
        scenarios::PolicyKind::StaticAlloc,
        &cfg,
    );
    let data = r.trace.as_ref().unwrap();
    let header = TraceHeader {
        scenario: r.scenario.clone(),
        policy: r.policy.clone(),
        seed: cfg.seed,
        filter: None,
    };
    let text = data.to_jsonl(&header, Some(&[Subsystem::Hypervisor, Subsystem::Mm]));
    check_golden("trace_run_s1_static_ts0.1.jsonl", &text);
}
