//! The declarative DSL is pinned to the Rust constructors.
//!
//! The shipped `scenarios/*.toml` files are not merely "similar" to the
//! built-in Table II constructors — they are differentially tested to
//! produce **exactly** the same [`ScenarioSpec`], at every memory scale,
//! so `run-file scenarios/usemem.toml` and `run usemem` are the same
//! experiment by construction. Chaos-profile files round-trip against the
//! shipped profiles the same way. The rejection table pins the parser's
//! strictness: malformed input fails with a line- and field-anchored
//! error, never a panic and never a silently-defaulted value. A property
//! test pins manifest expansion as the exact permutation matrix.

use proptest::prelude::*;
use scenarios::chaos::shipped_profiles;
use scenarios::config::RunConfig;
use scenarios::dsl::{
    self, expand_cells, load_manifest, load_scenario, parse_chaos_src, parse_manifest_src,
    parse_scenario_src, CellId,
};
use scenarios::spec::{
    build_scenario, Arrival, FleetParams, ScenarioKind, ScenarioSpec, WorkloadMix,
};
use scenarios::PolicyKind;
use std::path::PathBuf;

/// The repo's shipped scenario directory.
fn shipped_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn cfg(scale: f64) -> RunConfig {
    RunConfig {
        scale,
        ..RunConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Differential round-trips: shipped files == constructors.
// ---------------------------------------------------------------------------

#[test]
fn shipped_vm_scenarios_equal_constructor_specs_at_every_scale() {
    let pairs = [
        ("scenario1.toml", ScenarioKind::Scenario1),
        ("scenario2.toml", ScenarioKind::Scenario2),
        ("usemem.toml", ScenarioKind::UsememScenario),
        ("scenario3.toml", ScenarioKind::Scenario3),
    ];
    // 0.37 is deliberately awkward: scale_bytes page-rounding and
    // UsememConfig::paper's MiB-granular scaling diverge from naive
    // multiplication there, so a DSL shortcut would be caught.
    for scale in [1.0, 0.125, 0.37] {
        let cfg = cfg(scale);
        for (file, kind) in pairs {
            let doc = load_scenario(&shipped_dir().join(file), &cfg).unwrap();
            // DSL-built specs carry no ScenarioKind (they are not a
            // built-in); everything else must match exactly.
            let expected = ScenarioSpec {
                kind: None,
                ..build_scenario(kind, &cfg)
            };
            assert_eq!(
                doc.spec, expected,
                "{file} at scale {scale} diverges from its constructor"
            );
        }
    }
}

#[test]
fn shipped_fleet_scenario_equals_constructor_spec() {
    let cfg = cfg(0.125);
    let doc = load_scenario(&shipped_dir().join("fleet-small.toml"), &cfg).unwrap();
    let kind = ScenarioKind::Scenario5(FleetParams {
        vms: 8,
        footprint_mb: 64,
        mix: WorkloadMix::Balanced,
        arrival: Arrival::Staggered { gap_ms: 250 },
    });
    // [fleet] files route through build_scenario, so the kind survives.
    assert_eq!(doc.spec, build_scenario(kind, &cfg));
}

#[test]
fn shipped_chaos_files_equal_shipped_profiles() {
    for profile in shipped_profiles() {
        let path = shipped_dir().join(format!("chaos/{}.toml", profile.name));
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let parsed = parse_chaos_src(&src).unwrap();
        assert_eq!(
            parsed,
            profile,
            "{} diverges from the shipped profile",
            path.display()
        );
        // And the renderer round-trips it.
        assert_eq!(
            parse_chaos_src(&dsl::chaos_to_toml(&profile)).unwrap(),
            profile
        );
    }
}

#[test]
fn shipped_manifest_parses_to_the_expected_axes() {
    let m = load_manifest(&shipped_dir().join("sweep-smoke.toml")).unwrap();
    assert_eq!(m.name, "smoke");
    assert_eq!(m.scenarios, ["scenario1.toml", "usemem"]);
    assert_eq!(
        m.policies,
        [PolicyKind::Greedy, PolicyKind::SmartAlloc { p: 2.0 }]
    );
    assert_eq!(m.chaos, ["none", "chaos/sample-loss.toml"]);
    assert_eq!((m.reps, m.seed, m.scale), (1, 42, 0.125));
}

#[test]
fn shipped_run_directives_are_exposed_to_run_file() {
    let doc = load_scenario(&shipped_dir().join("scenario1.toml"), &cfg(0.125)).unwrap();
    assert_eq!(
        doc.run.policies,
        Some(vec![
            PolicyKind::NoTmem,
            PolicyKind::Greedy,
            PolicyKind::SmartAlloc { p: 2.0 }
        ])
    );
    assert_eq!(doc.run.reps, Some(1));
    assert_eq!(doc.run.seed, None);
}

// ---------------------------------------------------------------------------
// Rejection table: malformed input fails with anchored errors, no panics.
// ---------------------------------------------------------------------------

const VALID_SCENARIO: &str = r#"
version = 1

[scenario]
name = "t"
tmem = "64MiB"

[[vm]]
ram = "32MiB"
program = ["run inmem 8MiB"]
"#;

#[test]
fn scenario_rejection_table() {
    // (mutation of a valid file, substring the error must carry)
    let cases: &[(&str, &str, &str)] = &[
        ("version = 1", "version = 3", "unsupported format version 3"),
        ("version = 1", "", "version"),
        (
            "name = \"t\"",
            "name = \"t\"\nbogus = 1",
            "unknown field 'bogus'",
        ),
        ("tmem = \"64MiB\"", "tmem = \"64QiB\"", "cannot parse size"),
        (
            "ram = \"32MiB\"",
            "ram = \"32MiB\"\ncount = 0",
            "count: must be at least 1",
        ),
        (
            "program = [\"run inmem 8MiB\"]",
            "program = [\"run warp 8MiB\"]",
            "cannot parse program step",
        ),
        (
            "program = [\"run inmem 8MiB\"]",
            "program = []",
            "program is empty",
        ),
        (
            "program = [\"run inmem 8MiB\"]",
            "program = [\"run inmem 8MiB\"]\nstart_on = [\"vm9 block 1\"]",
            "references vm9",
        ),
        (
            "program = [\"run inmem 8MiB\"]",
            "program = [\"run inmem 8MiB\"]\nstart_on = [\"vm1 block 2\"]",
            "runs no usemem",
        ),
        (
            "[[vm]]",
            "[[vm]]\n[mystery]\nx = 1\n\n[[vm]]",
            "unknown table [mystery]",
        ),
        ("ram = \"32MiB\"", "ram = 32", "expected a string"),
    ];
    for (from, to, want) in cases {
        let src = VALID_SCENARIO.replacen(from, to, 1);
        assert_ne!(&src, VALID_SCENARIO, "mutation '{to}' did not apply");
        let err = parse_scenario_src(&src, &cfg(1.0))
            .expect_err(&format!("mutation '{to}' should be rejected"));
        assert!(
            err.contains(want),
            "error for '{to}' should mention '{want}', got: {err}"
        );
        assert!(
            err.contains("line "),
            "error for '{to}' should be line-anchored, got: {err}"
        );
    }
}

#[test]
fn fleet_and_chaos_rejection_table() {
    let fleet = "version = 1\n\n[fleet]\nvms = 8\n";
    for (src, want) in [
        (
            fleet.replace("vms = 8", "vms = 0"),
            "a fleet needs at least 1 VM",
        ),
        (
            fleet.replace("vms = 8", "vms = 4\nmix = \"chaotic\""),
            "unknown workload mix 'chaotic'",
        ),
        (
            fleet.replace("vms = 8", "vms = 4\n\n[scenario]\nname = \"x\""),
            "not both",
        ),
        (
            "version = 1\n\n[chaos]\nname = \"x\"\nvirq_drop = 1.5\n".to_string(),
            "outside [0, 1]",
        ),
        (
            "version = 1\n\n[chaos]\nname = \"x\"\nwarp_factor = 0.5\n".to_string(),
            "unknown field 'warp_factor'",
        ),
        // Data-plane probabilities go through the same [0, 1] gate…
        (
            "version = 1\n\n[chaos]\nname = \"x\"\npage_bitflip = 1.5\n".to_string(),
            "outside [0, 1]",
        ),
        (
            "version = 1\n\n[chaos]\nname = \"x\"\nput_io_fail = -0.1\n".to_string(),
            "outside [0, 1]",
        ),
        // …and the per-edge budgets are validated as a whole file.
        (
            "version = 1\n\n[chaos]\nname = \"x\"\npage_bitflip = 0.6\ntorn_write = 0.6\n"
                .to_string(),
            "sum to",
        ),
        (
            "version = 1\n\n[chaos]\nname = \"x\"\nbrownout_for = 2\n".to_string(),
            "brownout_for",
        ),
    ] {
        let err = if src.contains("[chaos]") {
            parse_chaos_src(&src).expect_err(&format!("should reject: {src}"))
        } else {
            parse_scenario_src(&src, &cfg(1.0))
                .map(|_| ())
                .expect_err(&format!("should reject: {src}"))
        };
        assert!(
            err.contains(want),
            "error should mention '{want}', got: {err}"
        );
        assert!(
            err.contains("line "),
            "error should be line-anchored: {err}"
        );
    }
}

#[test]
fn manifest_rejection_table() {
    let valid =
        "version = 1\n\n[sweep]\nname = \"s\"\nscenarios = [\"usemem\"]\npolicies = [\"greedy\"]\n";
    for (from, to, want) in [
        (
            "policies = [\"greedy\"]",
            "policies = [\"greedy\", \"greedy\"]",
            "duplicate policy 'greedy'",
        ),
        (
            "policies = [\"greedy\"]",
            "policies = []",
            "policy axis is empty",
        ),
        (
            "scenarios = [\"usemem\"]",
            "scenarios = [\"usemem\", \"scenario9\"]",
            "unknown scenario 'scenario9'",
        ),
        (
            "name = \"s\"",
            "name = \"s\"\nreps = 0",
            "must be at least 1",
        ),
        (
            "name = \"s\"",
            "name = \"s\"\nscale = -2.0",
            "positive finite",
        ),
    ] {
        let src = valid.replacen(from, to, 1);
        assert_ne!(src, valid, "mutation '{to}' did not apply");
        let err = parse_manifest_src(&src).expect_err(&format!("should reject: {to}"));
        assert!(
            err.contains(want),
            "error for '{to}' should mention '{want}': {err}"
        );
        assert!(
            err.contains("line "),
            "error for '{to}' should be line-anchored: {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Manifest expansion is the exact permutation matrix.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The expansion is exactly the sorted permutation matrix: every cell
    /// in range, strictly increasing in `CellId` order (so no duplicates
    /// and a stable deterministic ordering), with cardinality equal to
    /// the product of the axis lengths. Those three facts force the set
    /// to be the full product — no reimplementation of the nested loops
    /// needed as an oracle.
    #[test]
    fn expansion_is_the_permutation_matrix(
        s in 1usize..7,
        p in 1usize..7,
        c in 1usize..5,
        r in 1u32..5,
    ) {
        let cells = expand_cells(s, p, c, r);
        prop_assert_eq!(cells.len(), s * p * c * r as usize);
        prop_assert!(cells.iter().all(|cell| {
            cell.scenario < s && cell.policy < p && cell.chaos < c && cell.rep < r
        }));
        prop_assert!(
            cells.windows(2).all(|w| w[0] < w[1]),
            "expansion must be strictly increasing (sorted, duplicate-free)"
        );
    }

    /// Shrinking any axis yields the exact subsequence of the bigger
    /// expansion restricted to that axis prefix — cell ordering (and so
    /// journal cell numbering) is stable under axis subsets.
    #[test]
    fn axis_subsets_are_order_stable_subsequences(
        s in 1usize..6,
        p in 1usize..6,
        c in 1usize..4,
        r in 2u32..5,
        keep_s in 1usize..6,
        keep_r in 1u32..5,
    ) {
        let keep_s = keep_s.min(s);
        let keep_r = keep_r.min(r);
        let full = expand_cells(s, p, c, r);
        let filtered: Vec<CellId> = full
            .iter()
            .copied()
            .filter(|cell| cell.scenario < keep_s && cell.rep < keep_r)
            .collect();
        prop_assert_eq!(filtered, expand_cells(keep_s, p, c, keep_r));
    }
}
