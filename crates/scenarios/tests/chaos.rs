//! Chaos suite: graceful degradation under the shipped fault profiles.
//!
//! The acceptance bar (ISSUE: robustness tentpole) is *bounded slowdown,
//! zero corruption*: with up to 50% sample loss, 25% hypercall failure or
//! an MM crash-and-restart, every (scenario × policy) cell must stay
//! within [`scenarios::DEGRADATION_BOUND`] of its fault-free running time,
//! and the tmem accounting invariants — checked at every VIRQ interval —
//! must never be violated. The tests also sanity-check the fault ledger so
//! a profile that silently stops injecting (or a degradation path that
//! silently stops engaging) fails loudly.

use scenarios::chaos::{chaos_policies, shipped_profiles, ChaosReport};
use scenarios::config::RunConfig;
use scenarios::{run_chaos, PolicyKind, ScenarioKind, DEGRADATION_BOUND};

fn cfg() -> RunConfig {
    RunConfig {
        scale: 0.01,
        seed: 42,
        jobs: 4,
        ..RunConfig::default()
    }
}

/// One scenario, two representative policies (the paper's baseline and its
/// headline policy) — enough to exercise every degradation path while
/// keeping the suite fast. The full grid runs via `smartmem-cli chaos`.
fn small_grid() -> ChaosReport {
    run_chaos(
        &cfg(),
        &[ScenarioKind::Scenario1],
        &[PolicyKind::Greedy, PolicyKind::SmartAlloc { p: 2.0 }],
        &shipped_profiles(),
        DEGRADATION_BOUND,
    )
}

#[test]
fn shipped_profiles_degrade_within_bound_and_never_corrupt() {
    let report = small_grid();
    assert!(
        report.bound_violations().is_empty(),
        "degradation bound {}x exceeded:\n{}",
        report.bound,
        report.render()
    );
    assert_eq!(
        report.invariant_violations(),
        0,
        "tmem accounting invariant violated under faults:\n{}",
        report.render()
    );
    // Every cell actually ran the invariant checker.
    for c in &report.cells {
        assert!(
            c.ledger.invariant_checks > 0,
            "{}/{}/{}: invariant checker never ran",
            c.scenario,
            c.policy,
            c.profile
        );
    }
}

#[test]
fn fault_ledgers_show_each_profile_injecting_and_degrading() {
    let report = small_grid();
    for c in &report.cells {
        let l = &c.ledger;
        match c.profile.as_str() {
            "baseline" => {
                assert_eq!(l.injected(), 0, "baseline must be fault-free");
                assert_eq!(l.seq_gaps, 0);
                assert_eq!(l.stale_intervals, 0, "fault-free targets never stale");
                assert!(c.ratios.iter().all(|&r| r == 1.0));
            }
            "sample-loss" => {
                assert!(l.samples_dropped > 0, "VIRQ drops must fire");
                assert!(l.netlink_dropped > 0, "netlink drops must fire");
                assert!(l.seq_gaps > 0, "MM must detect the gaps");
                assert!(
                    l.stale_intervals > 0,
                    "sustained loss must trip the TTL fallback ({}/{})",
                    c.scenario,
                    c.policy
                );
                assert!(
                    l.snapshots_discarded > 0,
                    "duplicates/reorders must be discarded idempotently"
                );
            }
            "flaky-hypercalls" => {
                assert!(l.hypercalls_failed > 0, "hypercall failures must fire");
                assert!(
                    l.hypercall_retries > 0,
                    "relay must retry failed pushes ({}/{})",
                    c.scenario,
                    c.policy
                );
            }
            "mm-crash" => {
                assert_eq!(l.mm_crashes, 1, "exactly one crash is scheduled");
                assert_eq!(l.mm_restarts, 1, "watchdog must restart the MM");
            }
            "bitrot" => {
                assert!(l.bitflips_injected > 0, "bit flips must fire");
                assert!(l.torn_writes_injected > 0, "torn writes must fire");
                // The acceptance invariant: every injected corruption ends
                // the run detected — by a guest get, a flush, reclaim, or
                // the scrubber's final pass — never latent, never returned
                // as wrong bytes (the guests' fingerprint checks would
                // panic the run).
                assert_eq!(
                    l.corruptions_detected,
                    l.bitflips_injected + l.torn_writes_injected,
                    "every injected corruption must be detected ({}/{})",
                    c.scenario,
                    c.policy
                );
                assert!(l.corruptions_recovered <= l.corruptions_detected);
                assert!(l.scrub_passes > 0, "periodic scrubber must run");
                assert!(l.scrub_pages_checked > 0, "scrubber must verify pages");
                // Frontswap scenarios have no ephemeral pools; the loss
                // knob must therefore draw nothing.
                assert_eq!(l.ephemeral_losses_injected, 0);
            }
            "backend-brownout" => {
                assert!(l.put_io_failures_injected > 0, "injected EIO must fire");
                assert!(
                    l.brownout_rejections > 0,
                    "brownout windows must reject puts"
                );
                assert!(l.brownout_ticks > 0, "brownout intervals must be counted");
                assert_eq!(l.corruptions_detected, 0, "brownout never corrupts");
                assert!(
                    l.scrub_passes >= 1,
                    "the data-fault layer always runs a final scrub"
                );
            }
            other => panic!("unknown profile in report: {other}"),
        }
    }
}

#[test]
fn chaos_policies_cover_the_managed_paper_set() {
    let names: Vec<String> = chaos_policies().iter().map(|p| p.to_string()).collect();
    assert_eq!(
        names,
        ["greedy", "static-alloc", "reconf-static", "smart-alloc(2%)"]
    );
}
