//! Resumable batch sweeps: run a manifest's cell matrix with per-cell
//! checkpointing, survive interrupts, and resume without redoing work.
//!
//! A sweep is the matrix [`dsl::expand_cells`] builds from a manifest's
//! axes. Each completed cell appends one self-verifying record to a
//! journal (`journal.smj`) in the sweep directory:
//!
//! ```text
//! SMJ1 <payload-len> <fnv1a-64-hex> <payload>
//! ```
//!
//! The payload is tab-separated; the first record is a `header` pinning
//! the sweep's identity — an FNV-1a digest over the manifest source and
//! every referenced scenario/chaos file — so a journal can never silently
//! resume a *different* sweep. Cell records carry the full result summary
//! plus a digest of the canonical [`RunResult`] encoding
//! ([`result_digest`]), which is what the resume-equivalence suite pins.
//!
//! On restart, [`run_sweep`] replays the journal: framed records that
//! fail the length or digest check (a mid-record kill, disk corruption)
//! are reported as warnings and their cells simply re-run — a torn
//! checkpoint costs one cell, never the sweep. Because every cell is
//! deterministic (seed derived from the cell label, execution through
//! [`crate::par::run_indexed`]), the final report and CSV are
//! byte-identical whether the sweep ran uninterrupted or was killed and
//! resumed any number of times, at any `--jobs` count.

use crate::config::RunConfig;
use crate::dsl::{self, expand_cells, CellId, Manifest};
use crate::par::run_indexed;
use crate::runner::{run_spec, RunResult};
use crate::spec::{build_scenario, ScenarioSpec};
use sim_core::faults::FaultProfile;
use sim_core::rng::SplitMix64;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file name inside a sweep directory.
pub const JOURNAL_FILE: &str = "journal.smj";
/// Human-readable report file name.
pub const REPORT_FILE: &str = "report.txt";
/// Per-cell CSV file name.
pub const CSV_FILE: &str = "cells.csv";

const MAGIC: &str = "SMJ1";

/// FNV-1a 64-bit hash — the journal's framing digest and the base of
/// every identity digest in this module.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest a [`RunResult`] over a canonical text encoding of every
/// deterministic field (times as nanoseconds, floats as IEEE-754 bit
/// patterns). Two runs of the same cell produce the same digest; the
/// resume-equivalence suite pins this across interrupts and job counts.
pub fn result_digest(r: &RunResult) -> u64 {
    let mut s = String::new();
    let _ = write!(
        s,
        "{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}",
        r.scenario,
        r.policy,
        r.end_time.as_nanos(),
        r.events,
        r.truncated,
        r.mm_cycles,
        r.mm_transmissions,
        r.disk_reads,
        r.disk_writes,
        r.disk_read_wait.as_nanos(),
        r.disk_throttle.as_nanos(),
    );
    for used in &r.final_tmem_used {
        let _ = write!(s, "\x1fu{used}");
    }
    for vm in &r.vm_results {
        let _ = write!(s, "\x1fvm:{}:{}:{}", vm.name, vm.vm_id.0, vm.stopped_early);
        for run in &vm.runs {
            let _ = write!(
                s,
                "\x1fr:{}:{}:{}",
                run.workload,
                run.start.as_nanos(),
                run.end.map_or(-1i128, |e| i128::from(e.as_nanos()))
            );
        }
        for (label, t) in &vm.milestones {
            let _ = write!(s, "\x1fm:{label}:{}", t.as_nanos());
        }
        let k = &vm.kernel_stats;
        let _ = write!(
            s,
            "\x1fk:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
            k.minor_faults,
            k.tmem_faults,
            k.disk_faults,
            k.readahead_pages,
            k.evictions_to_tmem,
            k.evictions_to_disk,
            k.evictions_free,
            k.failed_puts,
            k.tmem_flushes,
            k.reclaimed_pages,
        );
    }
    let l = &r.faults;
    let _ = write!(
        s,
        "\x1fl:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
        l.samples_delivered,
        l.samples_dropped,
        l.samples_delayed,
        l.samples_duplicated,
        l.netlink_dropped,
        l.netlink_reordered,
        l.hypercalls_failed,
        l.hypercall_retries,
        l.hypercalls_abandoned,
        l.hypercalls_superseded,
        l.mm_crashes,
        l.mm_restarts,
        l.seq_gaps,
        l.snapshots_discarded,
        l.stale_intervals,
        l.invariant_checks,
        l.invariant_violations,
    );
    if let Some(series) = &r.series {
        for (tag, group) in [("su", &series.used), ("st", &series.target)] {
            for ts in group {
                let _ = write!(s, "\x1f{tag}");
                for (t, v) in ts.points() {
                    let _ = write!(s, ":{}:{:016x}", t.as_nanos(), v.to_bits());
                }
            }
        }
    }
    fnv1a(s.as_bytes())
}

/// A fully-resolved sweep: the manifest, its scenario and chaos axes
/// loaded and validated, the per-cell run configuration, and the identity
/// digest that pins journals to this exact input set.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The manifest as parsed.
    pub manifest: Manifest,
    /// Resolved scenario axis: `(label, spec)`, labels unique.
    pub scenarios: Vec<(String, ScenarioSpec)>,
    /// Resolved chaos axis: `(label, profile)`, `None` = fault-free.
    pub chaos: Vec<(String, Option<FaultProfile>)>,
    /// Per-cell base configuration (manifest scale/seed; caller's jobs).
    pub cfg: RunConfig,
    /// FNV-1a digest over the manifest source and every referenced file.
    pub digest: u64,
}

impl SweepPlan {
    /// The expanded cell matrix, in journal/report order.
    pub fn cells(&self) -> Vec<CellId> {
        expand_cells(
            self.scenarios.len(),
            self.manifest.policies.len(),
            self.chaos.len(),
            self.manifest.reps,
        )
    }

    /// The canonical `scenario/policy/chaos/repN` label of one cell — the
    /// journal key and the per-cell seed-derivation label.
    pub fn cell_label(&self, cell: CellId) -> String {
        format!(
            "{}/{}/{}/rep{}",
            self.scenarios[cell.scenario].0,
            self.manifest.policies[cell.policy],
            self.chaos[cell.chaos].0,
            cell.rep
        )
    }
}

fn label_ok(label: &str) -> Result<(), String> {
    if label.contains(['\t', '\n', '/']) {
        return Err(format!(
            "label '{label}' contains a tab, newline or '/'; journal labels cannot"
        ));
    }
    Ok(())
}

/// Load a manifest from `path` and resolve every axis. `jobs` is the
/// parallelism the sweep will run with (execution-only: it never affects
/// results).
pub fn load_plan(path: &Path, jobs: usize) -> Result<SweepPlan, String> {
    let src = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let manifest = dsl::parse_manifest_src(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    resolve_plan(manifest, &src, dir, jobs)
}

/// Resolve a parsed manifest against `dir` (the directory scenario/chaos
/// paths are relative to). The identity digest covers `manifest_src` plus
/// the bytes of every referenced file, so editing any input invalidates
/// old journals instead of silently mixing results.
pub fn resolve_plan(
    manifest: Manifest,
    manifest_src: &str,
    dir: &Path,
    jobs: usize,
) -> Result<SweepPlan, String> {
    let cfg = RunConfig {
        scale: manifest.scale,
        seed: manifest.seed,
        jobs,
        ..RunConfig::default()
    };
    cfg.validate()?;

    let mut identity = String::new();
    let _ = write!(identity, "manifest\x1f{manifest_src}");

    let mut scenarios = Vec::with_capacity(manifest.scenarios.len());
    for entry in &manifest.scenarios {
        let spec = if entry.ends_with(".toml") {
            let path = dir.join(entry);
            let src = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let _ = write!(identity, "\x1fscenario\x1f{src}");
            dsl::parse_scenario_src(&src, &cfg)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .spec
        } else {
            let _ = write!(identity, "\x1fscenario\x1f{entry}");
            build_scenario(dsl::parse_kind(entry)?, &cfg)
        };
        let label = spec.name.clone();
        label_ok(&label)?;
        if scenarios.iter().any(|(l, _)| l == &label) {
            return Err(format!(
                "two scenario axis entries resolve to the same name '{label}'; \
                 journal cells would collide"
            ));
        }
        scenarios.push((label, spec));
    }

    let mut chaos = Vec::with_capacity(manifest.chaos.len());
    for entry in &manifest.chaos {
        let resolved = dsl::resolve_chaos(entry, dir)?;
        let label = match &resolved {
            None => "baseline".to_string(),
            Some(p) => p.name.clone(),
        };
        label_ok(&label)?;
        if entry.ends_with(".toml") {
            let src = fs::read_to_string(dir.join(entry)).expect("read by resolve_chaos");
            let _ = write!(identity, "\x1fchaos\x1f{src}");
        } else {
            let _ = write!(identity, "\x1fchaos\x1f{entry}");
        }
        if chaos.iter().any(|(l, _)| l == &label) {
            return Err(format!(
                "two chaos axis entries resolve to the same name '{label}'"
            ));
        }
        chaos.push((label, resolved.map(|p| p.profile)));
    }

    Ok(SweepPlan {
        digest: fnv1a(identity.as_bytes()),
        manifest,
        scenarios,
        chaos,
        cfg,
    })
}

/// One journaled cell: the label, the result digest, and the summary the
/// report/CSV are rebuilt from without re-running anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Position in the expanded matrix.
    pub index: usize,
    /// Scenario label.
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// Chaos label (`baseline` when fault-free).
    pub chaos: String,
    /// Repetition, 0-based.
    pub rep: u32,
    /// [`result_digest`] of the cell's `RunResult`.
    pub digest: u64,
    /// Scenario end time, nanoseconds.
    pub end_ns: u64,
    /// Events dispatched (determinism fingerprint).
    pub events: u64,
    /// MM cycles executed.
    pub mm_cycles: u64,
    /// Target transmissions sent.
    pub mm_transmissions: u64,
    /// Disk reads served.
    pub disk_reads: u64,
    /// Disk writes absorbed.
    pub disk_writes: u64,
    /// Faults injected ([`sim_core::faults::FaultLedger::injected`]).
    pub injected: u64,
    /// tmem invariant violations (must stay 0).
    pub invariant_violations: u64,
    /// Per-VM total completed-run time, nanoseconds (0 for VMs whose runs
    /// were all stopped externally).
    pub vm_ns: Vec<u64>,
}

fn frame(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'));
    format!(
        "{MAGIC} {} {:016x} {payload}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    )
}

fn unframe(line: &str) -> Result<&str, String> {
    let rest = line
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or("not an SMJ1 record")?;
    let (len_s, rest) = rest.split_once(' ').ok_or("missing length field")?;
    let (fnv_s, payload) = rest.split_once(' ').ok_or("missing digest field")?;
    let len: usize = len_s
        .parse()
        .map_err(|_| format!("bad length field '{len_s}'"))?;
    if payload.len() != len {
        return Err(format!(
            "length mismatch: header says {len} bytes, found {} (truncated record?)",
            payload.len()
        ));
    }
    let fnv = u64::from_str_radix(fnv_s, 16).map_err(|_| format!("bad digest field '{fnv_s}'"))?;
    let actual = fnv1a(payload.as_bytes());
    if fnv != actual {
        return Err(format!(
            "digest mismatch: record says {fnv:016x}, payload hashes to {actual:016x} \
             (corrupted record?)"
        ));
    }
    Ok(payload)
}

fn encode_cell(c: &CellRecord) -> String {
    let vm_ns: Vec<String> = c.vm_ns.iter().map(u64::to_string).collect();
    format!(
        "cell\t{}\t{}\t{}\t{}\t{}\t{:016x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        c.index,
        c.scenario,
        c.policy,
        c.chaos,
        c.rep,
        c.digest,
        c.end_ns,
        c.events,
        c.mm_cycles,
        c.mm_transmissions,
        c.disk_reads,
        c.disk_writes,
        c.injected,
        c.invariant_violations,
        vm_ns.join(","),
    )
}

fn decode_cell(payload: &str) -> Result<CellRecord, String> {
    let f: Vec<&str> = payload.split('\t').collect();
    if f.len() != 16 || f[0] != "cell" {
        return Err(format!("malformed cell record ({} fields)", f.len()));
    }
    let int = |s: &str, what: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad {what} '{s}'"))
    };
    Ok(CellRecord {
        index: int(f[1], "index")? as usize,
        scenario: f[2].to_string(),
        policy: f[3].to_string(),
        chaos: f[4].to_string(),
        rep: int(f[5], "rep")? as u32,
        digest: u64::from_str_radix(f[6], 16).map_err(|_| format!("bad digest '{}'", f[6]))?,
        end_ns: int(f[7], "end_ns")?,
        events: int(f[8], "events")?,
        mm_cycles: int(f[9], "mm_cycles")?,
        mm_transmissions: int(f[10], "mm_transmissions")?,
        disk_reads: int(f[11], "disk_reads")?,
        disk_writes: int(f[12], "disk_writes")?,
        injected: int(f[13], "injected")?,
        invariant_violations: int(f[14], "invariant_violations")?,
        vm_ns: if f[15].is_empty() {
            Vec::new()
        } else {
            f[15]
                .split(',')
                .map(|s| int(s, "vm time"))
                .collect::<Result<_, _>>()?
        },
    })
}

fn encode_header(plan: &SweepPlan, total: usize) -> String {
    format!(
        "header\t{}\t{:016x}\t{}\t{}\t{:016x}",
        plan.manifest.name,
        plan.digest,
        total,
        plan.manifest.seed,
        plan.manifest.scale.to_bits(),
    )
}

/// Journal replay: completed cells keyed by index, plus warnings for
/// every record that failed verification (those cells re-run).
struct Replay {
    done: BTreeMap<usize, CellRecord>,
    warnings: Vec<String>,
    /// The journal has a valid header for *this* sweep; append to it.
    header_ok: bool,
}

fn read_journal(path: &Path, plan: &SweepPlan, total: usize) -> Result<Replay, String> {
    let mut replay = Replay {
        done: BTreeMap::new(),
        warnings: Vec::new(),
        header_ok: false,
    };
    let src = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let expected_header = encode_header(plan, total);
    for (i, line) in src.lines().enumerate() {
        let lineno = i + 1;
        let payload = match unframe(line) {
            Ok(p) => p,
            Err(e) => {
                replay.warnings.push(format!(
                    "journal line {lineno}: {e}; treating its cell as not done"
                ));
                continue;
            }
        };
        if i == 0 {
            if payload == expected_header {
                replay.header_ok = true;
                continue;
            }
            if let Some(rest) = payload.strip_prefix("header\t") {
                // A valid header for something else: refuse to mix sweeps.
                return Err(format!(
                    "{}: journal belongs to a different sweep or input set \
                     (header '{rest}'); use a fresh --resume directory or \
                     delete the stale journal",
                    path.display()
                ));
            }
            replay.warnings.push(format!(
                "journal line {lineno}: expected a header record; restarting the journal"
            ));
            return Ok(replay);
        }
        if !replay.header_ok {
            unreachable!("loop returns on line 1 unless the header matched");
        }
        match decode_cell(payload) {
            Ok(rec) if rec.index < total => {
                if let Some(prev) = replay.done.get(&rec.index) {
                    if *prev != rec {
                        replay.warnings.push(format!(
                            "journal line {lineno}: conflicting duplicate for cell \
                             {}; keeping the first record",
                            rec.index
                        ));
                    }
                } else {
                    replay.done.insert(rec.index, rec);
                }
            }
            Ok(rec) => replay.warnings.push(format!(
                "journal line {lineno}: cell index {} is outside this sweep's \
                 {total}-cell matrix; ignoring it",
                rec.index
            )),
            Err(e) => replay.warnings.push(format!(
                "journal line {lineno}: {e}; treating its cell as not done"
            )),
        }
    }
    Ok(replay)
}

/// Outcome of one [`run_sweep`] invocation.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every known-complete cell, in matrix order. Covers the whole
    /// matrix iff [`SweepOutcome::complete`].
    pub records: Vec<CellRecord>,
    /// Cells executed by this invocation.
    pub ran: usize,
    /// Cells skipped because the journal already had them.
    pub resumed: usize,
    /// Matrix size.
    pub total: usize,
    /// Journal-replay warnings (corrupt/foreign records).
    pub warnings: Vec<String>,
}

impl SweepOutcome {
    /// Every cell of the matrix is done.
    pub fn complete(&self) -> bool {
        self.records.len() == self.total
    }
}

/// Run (or resume) a sweep in `dir`. Cells already journaled are skipped;
/// newly completed cells are appended and flushed one record at a time,
/// so a kill at any instant loses at most the cells in flight.
/// `stop_after` caps how many cells this invocation runs (the test
/// suite's in-process stand-in for a kill); `None` runs to completion.
pub fn run_sweep(
    plan: &SweepPlan,
    dir: &Path,
    stop_after: Option<usize>,
) -> Result<SweepOutcome, String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let jpath = dir.join(JOURNAL_FILE);
    let cells = plan.cells();
    let total = cells.len();
    let replay = read_journal(&jpath, plan, total)?;
    let mut done = replay.done;
    let warnings = replay.warnings;

    let file = if replay.header_ok {
        fs::OpenOptions::new()
            .append(true)
            .open(&jpath)
            .map_err(|e| format!("{}: {e}", jpath.display()))?
    } else {
        // Fresh (or unusable) journal: start over with a header record.
        done.clear();
        let mut f = fs::File::create(&jpath).map_err(|e| format!("{}: {e}", jpath.display()))?;
        f.write_all(frame(&encode_header(plan, total)).as_bytes())
            .map_err(|e| format!("{}: {e}", jpath.display()))?;
        f
    };
    let resumed = done.len();

    let grid: Vec<(usize, CellId)> = cells
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !done.contains_key(i))
        .take(stop_after.unwrap_or(usize::MAX))
        .collect();
    let ran = grid.len();

    let sink = Mutex::new((file, Vec::<String>::new()));
    let results = run_indexed(grid, plan.cfg.jobs, |_, (index, cell)| {
        let rec = run_cell(plan, index, cell);
        let line = frame(&encode_cell(&rec));
        let mut guard = sink.lock().expect("journal writer poisoned");
        let (f, errs) = &mut *guard;
        if let Err(e) = f.write_all(line.as_bytes()).and_then(|_| f.flush()) {
            errs.push(format!("journal append for cell {index}: {e}"));
        }
        rec
    });
    let (_, io_errors) = sink.into_inner().expect("journal writer poisoned");
    if let Some(e) = io_errors.into_iter().next() {
        return Err(e);
    }
    for rec in results {
        done.insert(rec.index, rec);
    }

    Ok(SweepOutcome {
        records: done.into_values().collect(),
        ran,
        resumed,
        total,
        warnings,
    })
}

fn run_cell(plan: &SweepPlan, index: usize, cell: CellId) -> CellRecord {
    let (scenario_label, spec) = &plan.scenarios[cell.scenario];
    let policy = plan.manifest.policies[cell.policy];
    let (chaos_label, faults) = &plan.chaos[cell.chaos];
    let label = plan.cell_label(cell);
    let mut cfg = plan.cfg.clone();
    cfg.seed = SplitMix64::new(plan.cfg.seed).derive(&label).next();
    cfg.faults = faults.clone().unwrap_or_else(FaultProfile::none);
    let r = run_spec(spec.clone(), policy, &cfg);
    CellRecord {
        index,
        scenario: scenario_label.clone(),
        policy: policy.to_string(),
        chaos: chaos_label.clone(),
        rep: cell.rep,
        digest: result_digest(&r),
        end_ns: r.end_time.as_nanos(),
        events: r.events,
        mm_cycles: r.mm_cycles,
        mm_transmissions: r.mm_transmissions,
        disk_reads: r.disk_reads,
        disk_writes: r.disk_writes,
        injected: r.faults.injected(),
        invariant_violations: r.faults.invariant_violations,
        vm_ns: r
            .vm_results
            .iter()
            .map(|vm| vm.completions().iter().map(|d| d.as_nanos()).sum())
            .collect(),
    }
}

/// Render the human-readable sweep report from journaled records only
/// (nothing re-runs). Byte-identical for identical record sets.
pub fn render_report(plan: &SweepPlan, out: &SweepOutcome) -> String {
    let m = &plan.manifest;
    let mut s = format!(
        "sweep {} ({} cells: {} scenarios x {} policies x {} chaos x {} reps, \
         scale {}, seed {})\n",
        m.name,
        out.total,
        plan.scenarios.len(),
        m.policies.len(),
        plan.chaos.len(),
        m.reps,
        m.scale,
        m.seed,
    );
    for rec in &out.records {
        let vm_total: u64 = rec.vm_ns.iter().sum();
        let _ = writeln!(
            s,
            "[{:>3}] {}/{}/{}/rep{}: end={:.6}s vm_time={:.6}s events={} \
             injected={} digest={:016x}",
            rec.index,
            rec.scenario,
            rec.policy,
            rec.chaos,
            rec.rep,
            rec.end_ns as f64 / 1e9,
            vm_total as f64 / 1e9,
            rec.events,
            rec.injected,
            rec.digest,
        );
    }
    let _ = writeln!(
        s,
        "cells: {}/{} complete{}",
        out.records.len(),
        out.total,
        if out.complete() { "" } else { " (resumable)" }
    );
    s
}

/// Render the per-cell CSV from journaled records.
pub fn render_csv(out: &SweepOutcome) -> String {
    let mut s = String::from(
        "index,scenario,policy,chaos,rep,digest,end_s,vm_time_s,events,mm_cycles,\
         mm_transmissions,disk_reads,disk_writes,injected,invariant_violations\n",
    );
    for rec in &out.records {
        let vm_total: u64 = rec.vm_ns.iter().sum();
        let _ = writeln!(
            s,
            "{},{},{},{},{},{:016x},{:.6},{:.6},{},{},{},{},{},{},{}",
            rec.index,
            rec.scenario,
            rec.policy,
            rec.chaos,
            rec.rep,
            rec.digest,
            rec.end_ns as f64 / 1e9,
            vm_total as f64 / 1e9,
            rec.events,
            rec.mm_cycles,
            rec.mm_transmissions,
            rec.disk_reads,
            rec.disk_writes,
            rec.injected,
            rec.invariant_violations,
        );
    }
    s
}

/// Write `report.txt` and `cells.csv` into the sweep directory, returning
/// their paths. Call only when the sweep is complete (asserted).
pub fn write_outputs(
    plan: &SweepPlan,
    dir: &Path,
    out: &SweepOutcome,
) -> Result<(PathBuf, PathBuf), String> {
    assert!(
        out.complete(),
        "outputs are only written for complete sweeps"
    );
    let report = dir.join(REPORT_FILE);
    let csv = dir.join(CSV_FILE);
    fs::write(&report, render_report(plan, out))
        .map_err(|e| format!("{}: {e}", report.display()))?;
    fs::write(&csv, render_csv(out)).map_err(|e| format!("{}: {e}", csv.display()))?;
    Ok((report, csv))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn frame_round_trips_and_detects_tampering() {
        let line = frame("cell\t0\tx");
        let payload = unframe(line.trim_end()).unwrap();
        assert_eq!(payload, "cell\t0\tx");

        // Truncation (a torn write) fails the length check.
        let torn = &line[..line.len() - 3];
        assert!(unframe(torn.trim_end())
            .unwrap_err()
            .contains("length mismatch"));

        // A flipped payload byte fails the digest check.
        let corrupt = line.trim_end().replace("\tx", "\ty");
        assert!(unframe(&corrupt).unwrap_err().contains("digest mismatch"));

        assert!(unframe("garbage").unwrap_err().contains("not an SMJ1"));
    }

    #[test]
    fn cell_records_encode_and_decode_exactly() {
        let rec = CellRecord {
            index: 7,
            scenario: "scenario1".into(),
            policy: "smart-alloc(2%)".into(),
            chaos: "sample-loss".into(),
            rep: 3,
            digest: 0xdead_beef_0123_4567,
            end_ns: 12_345_678_901,
            events: 99,
            mm_cycles: 10,
            mm_transmissions: 8,
            disk_reads: 1000,
            disk_writes: 2000,
            injected: 17,
            invariant_violations: 0,
            vm_ns: vec![1, 2, 3],
        };
        assert_eq!(decode_cell(&encode_cell(&rec)).unwrap(), rec);

        let empty_vms = CellRecord {
            vm_ns: Vec::new(),
            ..rec
        };
        assert_eq!(decode_cell(&encode_cell(&empty_vms)).unwrap(), empty_vms);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_cell("cell\t1\tonly")
            .unwrap_err()
            .contains("malformed"));
        assert!(decode_cell("header\ta\tb")
            .unwrap_err()
            .contains("malformed"));
        let good = encode_cell(&CellRecord {
            index: 0,
            scenario: "s".into(),
            policy: "p".into(),
            chaos: "c".into(),
            rep: 0,
            digest: 1,
            end_ns: 2,
            events: 3,
            mm_cycles: 4,
            mm_transmissions: 5,
            disk_reads: 6,
            disk_writes: 7,
            injected: 8,
            invariant_violations: 9,
            vm_ns: vec![10],
        });
        let bad = good.replace("\t2\t", "\tnope\t");
        assert!(decode_cell(&bad).is_err());
    }
}
