//! The benchmark scenarios: Table II plus the fleet family.
//!
//! Each Table II scenario deploys three VMs with the paper's RAM/CPU
//! parameters and a per-VM *program* (a sequence of workload runs and
//! sleeps), plus start rules (fixed times or cross-VM milestone triggers)
//! and an optional global stop trigger — everything Table II specifies,
//! scaled by the run configuration.
//!
//! [`ScenarioKind::Scenario5`] goes beyond the paper: a parameterized
//! fleet of 8–128 identical VMs with staggered arrivals and a mixed
//! `inmem`/`fileserver`/`usemem` workload population sized to millions of
//! logical sessions (ROADMAP item 1).

use crate::config::RunConfig;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use tmem::key::VmId;
use workloads::fileserver::FileServerConfig;
use workloads::graph::GraphAnalyticsConfig;
use workloads::inmem::InMemoryAnalyticsConfig;
use workloads::traits::Workload;
use workloads::usemem::UsememConfig;
use xen_sim::vm::VmConfig;

/// The four scenarios of Table II, plus the fleet family (Scenario 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// 3 × 1 GB VMs; in-memory-analytics twice with a 5 s sleep; 1 GB tmem.
    Scenario1,
    /// 3 × 512 MB VMs; graph-analytics once; VM3 starts 30 s later; 1 GB
    /// tmem.
    Scenario2,
    /// 3 × 512 MB VMs; usemem with cross-VM triggers; 384 MB tmem.
    UsememScenario,
    /// VM1/VM2 512 MB graph-analytics; VM3 1 GB in-memory-analytics 30 s
    /// later; 1 GB tmem.
    Scenario3,
    /// The fleet family: `vms` identical guests with per-VM footprints,
    /// staggered arrivals and a mixed workload population. Not in the
    /// paper (its evaluation tops out at 4 VMs); this is the ≥50-VM
    /// scale-out of ROADMAP item 1.
    Scenario5(FleetParams),
}

/// Which workloads a fleet's VMs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMix {
    /// Round-robin `inmem` / `fileserver` / `usemem` by VM index.
    Balanced,
    /// Every VM runs in-memory-analytics (frontswap-heavy).
    Analytics,
    /// Every VM runs the file server (cleancache-heavy).
    Serving,
    /// Every VM runs single-block usemem sized exactly to the footprint —
    /// the purest paging load, and the mix the peak-RSS guard uses.
    Paging,
}

impl WorkloadMix {
    /// Report name fragment.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadMix::Balanced => "balanced",
            WorkloadMix::Analytics => "analytics",
            WorkloadMix::Serving => "serving",
            WorkloadMix::Paging => "paging",
        }
    }
}

/// When a fleet's VMs come online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arrival {
    /// All VMs start at t = 0.
    Simultaneous,
    /// VM `i` starts at `i × gap_ms` (time-scaled): a rolling deploy.
    Staggered {
        /// Gap between consecutive VM starts, in milliseconds.
        gap_ms: u32,
    },
}

/// Parameters of the Scenario-5 fleet family.
///
/// Unlike the Table II scenarios, fleet cells are *not* resized by
/// [`RunConfig::scale`] — `vms` and `footprint_mb` already say exactly how
/// big the cell is. Time scaling (`RunConfig::time_scale`) still applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetParams {
    /// Number of VMs to deploy (8–128 is the designed range).
    pub vms: u32,
    /// Per-VM workload footprint in MiB; VM RAM is 80% of this, so every
    /// guest runs under the paper's memory-pressure precondition.
    pub footprint_mb: u32,
    /// Workload population.
    pub mix: WorkloadMix,
    /// Arrival schedule.
    pub arrival: Arrival,
}

impl Default for FleetParams {
    /// The headline cell: 64 VMs × 512 MiB, balanced mix, 250 ms rolling
    /// arrivals.
    fn default() -> Self {
        FleetParams {
            vms: 64,
            footprint_mb: 512,
            mix: WorkloadMix::Balanced,
            arrival: Arrival::Staggered { gap_ms: 250 },
        }
    }
}

impl ScenarioKind {
    /// All paper scenarios, in paper order. (Fleet cells are parameterized,
    /// so they are constructed explicitly rather than enumerated.)
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Scenario1,
        ScenarioKind::Scenario2,
        ScenarioKind::UsememScenario,
        ScenarioKind::Scenario3,
    ];

    /// Report name.
    pub fn name(&self) -> String {
        match self {
            ScenarioKind::Scenario1 => "scenario1".into(),
            ScenarioKind::Scenario2 => "scenario2".into(),
            ScenarioKind::UsememScenario => "usemem".into(),
            ScenarioKind::Scenario3 => "scenario3".into(),
            ScenarioKind::Scenario5(p) => {
                format!("scenario5-{}x{}mb-{}", p.vms, p.footprint_mb, p.mix.name())
            }
        }
    }

    /// The smart-alloc `P` values the paper evaluates for this scenario's
    /// running-time figure.
    pub fn paper_smart_ps(&self) -> &'static [f64] {
        match self {
            ScenarioKind::Scenario1 => &[0.25, 0.75, 2.0],
            ScenarioKind::Scenario2 => &[2.0, 6.0],
            ScenarioKind::UsememScenario => &[0.75, 2.0],
            ScenarioKind::Scenario3 => &[2.0, 4.0],
            ScenarioKind::Scenario5(_) => &[2.0],
        }
    }
}

/// What a VM executes, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramStep {
    /// Run a workload to completion.
    Run(WorkloadSpec),
    /// Sleep for a fixed (already time-scaled) duration.
    Sleep(SimDuration),
}

/// Workload constructor parameters (kept as data so repetitions can reseed).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The usemem micro-benchmark.
    Usemem(UsememConfig),
    /// CloudSuite-equivalent in-memory-analytics.
    InMem(InMemoryAnalyticsConfig),
    /// CloudSuite-equivalent graph-analytics.
    Graph(GraphAnalyticsConfig),
    /// Zipf-popular static file serving (cleancache).
    FileServer(FileServerConfig),
}

impl WorkloadSpec {
    /// Instantiate the workload with its seed replaced by `seed` (each VM ×
    /// repetition gets an independent dataset).
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Usemem(c) => Box::new(workloads::usemem::Usemem::new(*c)),
            WorkloadSpec::InMem(c) => {
                let mut c = *c;
                c.seed = seed;
                Box::new(workloads::inmem::InMemoryAnalytics::new(c))
            }
            WorkloadSpec::Graph(c) => {
                let mut c = *c;
                c.seed = seed;
                Box::new(workloads::graph::GraphAnalytics::new(c))
            }
            WorkloadSpec::FileServer(c) => {
                let mut c = *c;
                c.seed = seed;
                Box::new(workloads::fileserver::FileServer::new(c))
            }
        }
    }
}

/// When a VM's program begins.
#[derive(Debug, Clone, PartialEq)]
pub enum StartRule {
    /// At a fixed instant.
    At(SimDuration),
    /// Once every listed `(vm_index, milestone_label)` has been observed.
    OnMilestonesAll(Vec<(usize, String)>),
}

/// One VM of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Hypervisor-facing configuration (RAM, vCPUs).
    pub config: VmConfig,
    /// The program to execute.
    pub program: Vec<ProgramStep>,
    /// When to begin.
    pub start: StartRule,
}

/// A fully-specified scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Built-in identity, when this spec corresponds to one of the
    /// enumerable scenario kinds; `None` for custom scenarios loaded from
    /// `.toml` files ([`crate::dsl`]).
    pub kind: Option<ScenarioKind>,
    /// Report name — `kind.name()` for built-ins, the file's declared name
    /// for custom scenarios.
    pub name: String,
    /// tmem capacity enabled on the node, in bytes (already scaled).
    pub tmem_bytes: u64,
    /// The deployed VMs — 3 for the Table II scenarios, 8–128 for the
    /// fleet family.
    pub vms: Vec<VmSpec>,
    /// Stop every VM when this `(vm_index, milestone)` fires (the Usemem
    /// scenario's "stopped simultaneously when VM3 attempts to allocate
    /// 768 MB").
    pub stop_all_on: Option<(usize, String)>,
}

impl ScenarioSpec {
    /// tmem capacity in pages.
    pub fn tmem_pages(&self) -> u64 {
        self.tmem_bytes / 4096
    }

    /// Logical user sessions this spec simulates: one per in-memory
    /// analytics rating and one per file-server request. (Usemem and
    /// graph-analytics model batch jobs, not sessions.)
    pub fn logical_sessions(&self) -> u64 {
        self.vms
            .iter()
            .flat_map(|vm| &vm.program)
            .map(|step| match step {
                ProgramStep::Run(WorkloadSpec::InMem(c)) => c.n_ratings as u64,
                ProgramStep::Run(WorkloadSpec::FileServer(c)) => c.requests,
                _ => 0,
            })
            .sum()
    }

    /// Validate the spec, returning an actionable message on the first
    /// violation. Built-in Table II scenarios always pass; this guards
    /// customized specs (capacity sweeps, user-authored scenarios) before
    /// a runner consumes them.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario has an empty name; reports need one".into());
        }
        if self.vms.is_empty() {
            return Err("scenario deploys zero VMs; nothing would run".into());
        }
        if self.tmem_pages() == 0 {
            return Err(format!(
                "tmem_bytes = {} is less than one 4096-byte page; use \
                 PolicyKind::NoTmem to model a node without tmem",
                self.tmem_bytes
            ));
        }
        for (i, vm) in self.vms.iter().enumerate() {
            if vm.config.ram_pages() == 0 {
                return Err(format!(
                    "VM {} ({}) has zero pages of RAM",
                    i, vm.config.name
                ));
            }
            if vm.program.is_empty() {
                return Err(format!(
                    "VM {} ({}) has an empty program; it would never finish",
                    i, vm.config.name
                ));
            }
            if let StartRule::OnMilestonesAll(reqs) = &vm.start {
                for (src, label) in reqs {
                    if *src >= self.vms.len() {
                        return Err(format!(
                            "VM {} waits on milestone '{label}' of VM index \
                             {src}, but only {} VMs are deployed",
                            i,
                            self.vms.len()
                        ));
                    }
                    if *src == i {
                        return Err(format!(
                            "VM {i} waits on its own milestone '{label}'; it \
                             would never start"
                        ));
                    }
                }
            }
        }
        if let Some((vm, label)) = &self.stop_all_on {
            if *vm >= self.vms.len() {
                return Err(format!(
                    "stop_all_on references VM index {vm} (milestone \
                     '{label}'), but only {} VMs are deployed",
                    self.vms.len()
                ));
            }
        }
        Ok(())
    }
}

/// Paper-calibrated workload footprints (bytes, full scale). The CloudSuite
/// runs must exceed their VM's RAM to create the memory pressure the paper
/// engineers "for the benchmarks to work in a realistic setting".
const INMEM_FOOTPRINT: u64 = 1280 << 20; // 1.25 GiB on a 1 GiB VM
const GRAPH_FOOTPRINT: u64 = 896 << 20; // 896 MiB on a 512 MiB VM

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// The `alloc:<MiB>` milestone label usemem emits for its `k`-th block
/// (1-based) under `cfg`.
pub fn usemem_alloc_label(cfg: &UsememConfig, k: u64) -> String {
    let bytes = (cfg.start_bytes + (k - 1) * cfg.step_bytes).min(cfg.max_bytes);
    format!("alloc:{}", bytes >> 20)
}

/// Build a fleet cell: `p.vms` identical guests, each with 80% of the
/// workload footprint as RAM (the paper's pressure precondition), sharing
/// a tmem pool of a quarter of the aggregate footprint. Arrivals follow
/// `p.arrival`; the mix assigns workloads by VM index so the population is
/// stable under any VM count.
fn build_fleet(p: FleetParams, cfg: &RunConfig) -> ScenarioSpec {
    let n = p.vms.max(1);
    let fp = u64::from(p.footprint_mb.max(1)) * MIB;
    let ram = fp * 4 / 5;
    // One logical session per corpus page read, twice over: enough traffic
    // that the popular set cycles through cleancache several times.
    let fs_requests = 2 * fp / 4096;
    let inmem = || WorkloadSpec::InMem(InMemoryAnalyticsConfig::with_footprint(fp, 0));
    let fileserver =
        || WorkloadSpec::FileServer(FileServerConfig::with_footprint(fp, fs_requests, 0));
    // Ramping usemem (an eighth at a time) for the balanced mix; a single
    // footprint-sized block for the paging mix, where the page table must
    // stay exactly O(footprint) for the peak-RSS guard.
    let usemem = |single: bool| {
        let step = if single { fp } else { (fp / 8).max(4096) };
        WorkloadSpec::Usemem(UsememConfig {
            start_bytes: step,
            step_bytes: step,
            max_bytes: fp,
            compute_per_page: SimDuration::from_micros(2),
            max_steady_passes: 2,
        })
    };
    let vms = (0..n)
        .map(|i| {
            let workload = match p.mix {
                WorkloadMix::Analytics => inmem(),
                WorkloadMix::Serving => fileserver(),
                WorkloadMix::Paging => usemem(true),
                WorkloadMix::Balanced => match i % 3 {
                    0 => inmem(),
                    1 => fileserver(),
                    _ => usemem(false),
                },
            };
            let start = match p.arrival {
                Arrival::Simultaneous => SimDuration::ZERO,
                Arrival::Staggered { gap_ms } => {
                    cfg.scale_time(SimDuration::from_millis(u64::from(gap_ms) * u64::from(i)))
                }
            };
            VmSpec {
                config: VmConfig::new(VmId(i + 1), format!("VM{}", i + 1), ram, 1),
                program: vec![ProgramStep::Run(workload)],
                start: StartRule::At(start),
            }
        })
        .collect();
    let kind = ScenarioKind::Scenario5(p);
    ScenarioSpec {
        name: kind.name(),
        kind: Some(kind),
        tmem_bytes: (u64::from(n) * fp / 4).max(4 * 4096),
        vms,
        stop_all_on: None,
    }
}

/// Build a scenario spec from Table II (scaled by `cfg`) or a fleet cell
/// (sized by its own [`FleetParams`]).
pub fn build_scenario(kind: ScenarioKind, cfg: &RunConfig) -> ScenarioSpec {
    match kind {
        ScenarioKind::Scenario5(p) => build_fleet(p, cfg),
        ScenarioKind::Scenario1 => {
            // "All VMs execute in-memory-analytics once simultaneously,
            // sleep for 5 seconds and execute it again."
            let sleep = cfg.scale_time(SimDuration::from_secs(5));
            let footprint = cfg.scale_bytes(INMEM_FOOTPRINT);
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(GIB),
                        1,
                    ),
                    program: vec![
                        ProgramStep::Run(WorkloadSpec::InMem(
                            InMemoryAnalyticsConfig::with_footprint(footprint, 0),
                        )),
                        ProgramStep::Sleep(sleep),
                        ProgramStep::Run(WorkloadSpec::InMem(
                            InMemoryAnalyticsConfig::with_footprint(footprint, 0),
                        )),
                    ],
                    start: StartRule::At(SimDuration::ZERO),
                })
                .collect();
            ScenarioSpec {
                name: kind.name(),
                kind: Some(kind),
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
        ScenarioKind::Scenario2 => {
            // "The first two VMs launch the benchmarks simultaneously, and
            // the third one launches it 30 seconds later."
            let stagger = cfg.scale_time(SimDuration::from_secs(30));
            let footprint = cfg.scale_bytes(GRAPH_FOOTPRINT);
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Graph(
                        GraphAnalyticsConfig::with_footprint(footprint, 0),
                    ))],
                    start: StartRule::At(if i < 2 { SimDuration::ZERO } else { stagger }),
                })
                .collect();
            ScenarioSpec {
                name: kind.name(),
                kind: Some(kind),
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
        ScenarioKind::UsememScenario => {
            // "VM1 and VM2 start executing usemem simultaneously, and VM3
            // starts when VM1 and VM2 attempt to allocate 640MB... they are
            // stopped simultaneously when VM3 attempts to allocate 768MB."
            let ucfg = UsememConfig::paper(cfg.scale);
            let start_vm3 = usemem_alloc_label(&ucfg, 5); // 640 MB = 5th block
            let stop_all = usemem_alloc_label(&ucfg, 6); // 768 MB = 6th block
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Usemem(ucfg))],
                    start: if i < 2 {
                        StartRule::At(SimDuration::ZERO)
                    } else {
                        StartRule::OnMilestonesAll(vec![
                            (0, start_vm3.clone()),
                            (1, start_vm3.clone()),
                        ])
                    },
                })
                .collect();
            ScenarioSpec {
                name: kind.name(),
                kind: Some(kind),
                tmem_bytes: cfg.scale_bytes(384 * MIB),
                vms,
                stop_all_on: Some((2, stop_all)),
            }
        }
        ScenarioKind::Scenario3 => {
            // "VM1 and VM2 execute graph-analytics and VM3 executes
            // in-memory-analytics... VM3 launches 30 seconds later."
            let stagger = cfg.scale_time(SimDuration::from_secs(30));
            let graph_fp = cfg.scale_bytes(GRAPH_FOOTPRINT);
            let inmem_fp = cfg.scale_bytes(INMEM_FOOTPRINT);
            let mut vms: Vec<VmSpec> = (0..2)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Graph(
                        GraphAnalyticsConfig::with_footprint(graph_fp, 0),
                    ))],
                    start: StartRule::At(SimDuration::ZERO),
                })
                .collect();
            vms.push(VmSpec {
                config: VmConfig::new(VmId(3), "VM3", cfg.scale_bytes(GIB), 1),
                program: vec![ProgramStep::Run(WorkloadSpec::InMem(
                    InMemoryAnalyticsConfig::with_footprint(inmem_fp, 0),
                ))],
                start: StartRule::At(stagger),
            });
            ScenarioSpec {
                name: kind.name(),
                kind: Some(kind),
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig {
            scale: 1.0,
            ..RunConfig::default()
        }
    }

    #[test]
    fn every_scenario_deploys_three_vms() {
        for kind in ScenarioKind::ALL {
            let spec = build_scenario(kind, &cfg());
            assert_eq!(spec.vms.len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn scenario1_matches_table2() {
        let spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        assert_eq!(spec.tmem_bytes, 1 << 30);
        for vm in &spec.vms {
            assert_eq!(vm.config.ram_bytes, 1 << 30);
            assert_eq!(vm.config.vcpus, 1);
            assert_eq!(vm.program.len(), 3, "run, sleep, run");
            assert!(
                matches!(vm.program[1], ProgramStep::Sleep(d) if d == SimDuration::from_secs(5))
            );
        }
    }

    #[test]
    fn scenario2_staggers_vm3_by_30s() {
        let spec = build_scenario(ScenarioKind::Scenario2, &cfg());
        assert!(matches!(spec.vms[0].start, StartRule::At(d) if d == SimDuration::ZERO));
        assert!(matches!(spec.vms[2].start, StartRule::At(d) if d == SimDuration::from_secs(30)));
        assert_eq!(spec.vms[0].config.ram_bytes, 512 << 20);
    }

    #[test]
    fn usemem_scenario_wires_cross_vm_triggers() {
        let spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        assert_eq!(spec.tmem_bytes, 384 << 20);
        match &spec.vms[2].start {
            StartRule::OnMilestonesAll(reqs) => {
                assert_eq!(
                    reqs,
                    &vec![(0, "alloc:640".to_string()), (1, "alloc:640".to_string())]
                );
            }
            other => panic!("unexpected start rule {other:?}"),
        }
        assert_eq!(spec.stop_all_on, Some((2, "alloc:768".to_string())));
    }

    #[test]
    fn scenario3_mixes_vm_sizes() {
        let spec = build_scenario(ScenarioKind::Scenario3, &cfg());
        assert_eq!(spec.vms[0].config.ram_bytes, 512 << 20);
        assert_eq!(spec.vms[2].config.ram_bytes, 1 << 30);
        assert!(matches!(
            spec.vms[2].program[0],
            ProgramStep::Run(WorkloadSpec::InMem(_))
        ));
    }

    #[test]
    fn scaling_shrinks_memory_and_triggers_consistently() {
        let half = RunConfig {
            scale: 0.25,
            ..RunConfig::default()
        };
        let spec = build_scenario(ScenarioKind::UsememScenario, &half);
        assert_eq!(spec.tmem_bytes, 96 << 20);
        match &spec.vms[2].start {
            StartRule::OnMilestonesAll(reqs) => {
                // 640 MB × 0.25 = 160 MB.
                assert_eq!(reqs[0].1, "alloc:160");
            }
            other => panic!("unexpected start rule {other:?}"),
        }
    }

    #[test]
    fn builtin_scenarios_validate_cleanly() {
        for kind in ScenarioKind::ALL {
            let spec = build_scenario(kind, &cfg());
            assert!(spec.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.vms.clear();
        assert!(spec.validate().unwrap_err().contains("zero VMs"));

        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.tmem_bytes = 100;
        assert!(spec.validate().unwrap_err().contains("4096-byte page"));

        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.vms[1].program.clear();
        assert!(spec.validate().unwrap_err().contains("empty program"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.vms[2].start = StartRule::OnMilestonesAll(vec![(9, "alloc:640".into())]);
        assert!(spec.validate().unwrap_err().contains("only 3 VMs"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.vms[2].start = StartRule::OnMilestonesAll(vec![(2, "alloc:640".into())]);
        assert!(spec.validate().unwrap_err().contains("own milestone"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.stop_all_on = Some((7, "alloc:768".into()));
        assert!(spec.validate().unwrap_err().contains("stop_all_on"));
    }

    fn fleet(vms: u32, footprint_mb: u32, mix: WorkloadMix, arrival: Arrival) -> FleetParams {
        FleetParams {
            vms,
            footprint_mb,
            mix,
            arrival,
        }
    }

    #[test]
    fn fleet_staggered_arrivals_are_strictly_ordered() {
        let p = fleet(
            8,
            64,
            WorkloadMix::Balanced,
            Arrival::Staggered { gap_ms: 250 },
        );
        let spec = build_scenario(ScenarioKind::Scenario5(p), &cfg());
        assert_eq!(spec.vms.len(), 8);
        let mut prev = None;
        for (i, vm) in spec.vms.iter().enumerate() {
            let StartRule::At(at) = vm.start else {
                panic!("fleet VMs start on the clock, not on milestones");
            };
            assert_eq!(
                at,
                SimDuration::from_millis(250 * i as u64),
                "VM{} must arrive exactly i × gap after t=0",
                i + 1
            );
            if let Some(p) = prev {
                assert!(at > p, "arrival order must be strictly increasing");
            }
            prev = Some(at);
        }
        // Simultaneous arrival collapses the schedule to t=0.
        let p0 = fleet(8, 64, WorkloadMix::Balanced, Arrival::Simultaneous);
        let spec0 = build_scenario(ScenarioKind::Scenario5(p0), &cfg());
        for vm in &spec0.vms {
            assert!(matches!(vm.start, StartRule::At(d) if d == SimDuration::ZERO));
        }
    }

    #[test]
    fn fleet_balanced_mix_round_robins_workloads() {
        let p = fleet(9, 64, WorkloadMix::Balanced, Arrival::Simultaneous);
        let spec = build_scenario(ScenarioKind::Scenario5(p), &cfg());
        for (i, vm) in spec.vms.iter().enumerate() {
            let ProgramStep::Run(w) = &vm.program[0] else {
                panic!("fleet programs are a single run");
            };
            match i % 3 {
                0 => assert!(matches!(w, WorkloadSpec::InMem(_)), "VM{}", i + 1),
                1 => assert!(matches!(w, WorkloadSpec::FileServer(_)), "VM{}", i + 1),
                _ => assert!(matches!(w, WorkloadSpec::Usemem(_)), "VM{}", i + 1),
            }
        }
    }

    #[test]
    fn fleet_keeps_the_pressure_precondition_and_validates() {
        for mix in [
            WorkloadMix::Balanced,
            WorkloadMix::Analytics,
            WorkloadMix::Serving,
            WorkloadMix::Paging,
        ] {
            let p = fleet(8, 128, mix, Arrival::Staggered { gap_ms: 100 });
            let spec = build_scenario(ScenarioKind::Scenario5(p), &cfg());
            assert!(spec.validate().is_ok(), "{mix:?}");
            let fp = 128 * MIB;
            assert_eq!(spec.tmem_bytes, 8 * fp / 4);
            for vm in &spec.vms {
                assert_eq!(vm.config.ram_bytes, fp * 4 / 5);
                match &vm.program[0] {
                    ProgramStep::Run(WorkloadSpec::InMem(c)) => {
                        assert!(c.footprint_bytes() > vm.config.ram_bytes)
                    }
                    ProgramStep::Run(WorkloadSpec::Usemem(c)) => {
                        assert!(c.max_bytes > vm.config.ram_bytes);
                        assert_ne!(c.max_steady_passes, u64::MAX, "fleet usemem terminates");
                    }
                    ProgramStep::Run(WorkloadSpec::FileServer(c)) => {
                        assert!(c.footprint_bytes() > fp / 4, "corpus exceeds its cache")
                    }
                    other => panic!("unexpected fleet program step {other:?}"),
                }
            }
        }
    }

    #[test]
    fn fleet_names_and_sessions_scale_with_parameters() {
        let p = FleetParams::default();
        assert_eq!(p.vms, 64);
        let spec = build_scenario(ScenarioKind::Scenario5(p), &cfg());
        assert_eq!(spec.name, "scenario5-64x512mb-balanced");
        assert!(
            spec.logical_sessions() > 1_000_000,
            "the headline fleet cell must simulate millions of sessions, got {}",
            spec.logical_sessions()
        );
        // The fleet is sized by its params, not by RunConfig::scale.
        let tiny_scale = RunConfig {
            scale: 0.01,
            ..RunConfig::default()
        };
        let same = build_scenario(ScenarioKind::Scenario5(p), &tiny_scale);
        assert_eq!(same.tmem_bytes, spec.tmem_bytes);
        assert_eq!(same.vms[0].config.ram_bytes, spec.vms[0].config.ram_bytes);
    }

    #[test]
    fn footprints_exceed_vm_ram() {
        // The pressure precondition of the whole evaluation.
        let spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        if let ProgramStep::Run(WorkloadSpec::InMem(c)) = &spec.vms[0].program[0] {
            assert!(c.footprint_bytes() > spec.vms[0].config.ram_bytes);
        } else {
            panic!("scenario1 VM1 must run in-memory-analytics");
        }
        let spec2 = build_scenario(ScenarioKind::Scenario2, &cfg());
        if let ProgramStep::Run(WorkloadSpec::Graph(c)) = &spec2.vms[0].program[0] {
            assert!(c.footprint_bytes() > spec2.vms[0].config.ram_bytes);
        } else {
            panic!("scenario2 VM1 must run graph-analytics");
        }
    }
}
