//! Table II: the benchmark scenarios.
//!
//! Each scenario deploys three VMs with the paper's RAM/CPU parameters and
//! a per-VM *program* (a sequence of workload runs and sleeps), plus start
//! rules (fixed times or cross-VM milestone triggers) and an optional
//! global stop trigger — everything Table II specifies, scaled by the
//! run configuration.

use crate::config::RunConfig;
use serde::{Deserialize, Serialize};
use sim_core::time::SimDuration;
use tmem::key::VmId;
use workloads::graph::GraphAnalyticsConfig;
use workloads::inmem::InMemoryAnalyticsConfig;
use workloads::traits::Workload;
use workloads::usemem::UsememConfig;
use xen_sim::vm::VmConfig;

/// The four scenarios of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// 3 × 1 GB VMs; in-memory-analytics twice with a 5 s sleep; 1 GB tmem.
    Scenario1,
    /// 3 × 512 MB VMs; graph-analytics once; VM3 starts 30 s later; 1 GB
    /// tmem.
    Scenario2,
    /// 3 × 512 MB VMs; usemem with cross-VM triggers; 384 MB tmem.
    UsememScenario,
    /// VM1/VM2 512 MB graph-analytics; VM3 1 GB in-memory-analytics 30 s
    /// later; 1 GB tmem.
    Scenario3,
}

impl ScenarioKind {
    /// All scenarios, in paper order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Scenario1,
        ScenarioKind::Scenario2,
        ScenarioKind::UsememScenario,
        ScenarioKind::Scenario3,
    ];

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Scenario1 => "scenario1",
            ScenarioKind::Scenario2 => "scenario2",
            ScenarioKind::UsememScenario => "usemem",
            ScenarioKind::Scenario3 => "scenario3",
        }
    }

    /// The smart-alloc `P` values the paper evaluates for this scenario's
    /// running-time figure.
    pub fn paper_smart_ps(&self) -> &'static [f64] {
        match self {
            ScenarioKind::Scenario1 => &[0.25, 0.75, 2.0],
            ScenarioKind::Scenario2 => &[2.0, 6.0],
            ScenarioKind::UsememScenario => &[0.75, 2.0],
            ScenarioKind::Scenario3 => &[2.0, 4.0],
        }
    }
}

/// What a VM executes, in order.
#[derive(Debug, Clone)]
pub enum ProgramStep {
    /// Run a workload to completion.
    Run(WorkloadSpec),
    /// Sleep for a fixed (already time-scaled) duration.
    Sleep(SimDuration),
}

/// Workload constructor parameters (kept as data so repetitions can reseed).
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// The usemem micro-benchmark.
    Usemem(UsememConfig),
    /// CloudSuite-equivalent in-memory-analytics.
    InMem(InMemoryAnalyticsConfig),
    /// CloudSuite-equivalent graph-analytics.
    Graph(GraphAnalyticsConfig),
}

impl WorkloadSpec {
    /// Instantiate the workload with its seed replaced by `seed` (each VM ×
    /// repetition gets an independent dataset).
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Usemem(c) => Box::new(workloads::usemem::Usemem::new(*c)),
            WorkloadSpec::InMem(c) => {
                let mut c = *c;
                c.seed = seed;
                Box::new(workloads::inmem::InMemoryAnalytics::new(c))
            }
            WorkloadSpec::Graph(c) => {
                let mut c = *c;
                c.seed = seed;
                Box::new(workloads::graph::GraphAnalytics::new(c))
            }
        }
    }
}

/// When a VM's program begins.
#[derive(Debug, Clone)]
pub enum StartRule {
    /// At a fixed instant.
    At(SimDuration),
    /// Once every listed `(vm_index, milestone_label)` has been observed.
    OnMilestonesAll(Vec<(usize, String)>),
}

/// One VM of a scenario.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Hypervisor-facing configuration (RAM, vCPUs).
    pub config: VmConfig,
    /// The program to execute.
    pub program: Vec<ProgramStep>,
    /// When to begin.
    pub start: StartRule,
}

/// A fully-specified scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario identity.
    pub kind: ScenarioKind,
    /// tmem capacity enabled on the node, in bytes (already scaled).
    pub tmem_bytes: u64,
    /// The deployed VMs (always 3, per Table II).
    pub vms: Vec<VmSpec>,
    /// Stop every VM when this `(vm_index, milestone)` fires (the Usemem
    /// scenario's "stopped simultaneously when VM3 attempts to allocate
    /// 768 MB").
    pub stop_all_on: Option<(usize, String)>,
}

impl ScenarioSpec {
    /// tmem capacity in pages.
    pub fn tmem_pages(&self) -> u64 {
        self.tmem_bytes / 4096
    }

    /// Validate the spec, returning an actionable message on the first
    /// violation. Built-in Table II scenarios always pass; this guards
    /// customized specs (capacity sweeps, user-authored scenarios) before
    /// a runner consumes them.
    pub fn validate(&self) -> Result<(), String> {
        if self.vms.is_empty() {
            return Err("scenario deploys zero VMs; nothing would run".into());
        }
        if self.tmem_pages() == 0 {
            return Err(format!(
                "tmem_bytes = {} is less than one 4096-byte page; use \
                 PolicyKind::NoTmem to model a node without tmem",
                self.tmem_bytes
            ));
        }
        for (i, vm) in self.vms.iter().enumerate() {
            if vm.config.ram_pages() == 0 {
                return Err(format!(
                    "VM {} ({}) has zero pages of RAM",
                    i, vm.config.name
                ));
            }
            if vm.program.is_empty() {
                return Err(format!(
                    "VM {} ({}) has an empty program; it would never finish",
                    i, vm.config.name
                ));
            }
            if let StartRule::OnMilestonesAll(reqs) = &vm.start {
                for (src, label) in reqs {
                    if *src >= self.vms.len() {
                        return Err(format!(
                            "VM {} waits on milestone '{label}' of VM index \
                             {src}, but only {} VMs are deployed",
                            i,
                            self.vms.len()
                        ));
                    }
                    if *src == i {
                        return Err(format!(
                            "VM {i} waits on its own milestone '{label}'; it \
                             would never start"
                        ));
                    }
                }
            }
        }
        if let Some((vm, label)) = &self.stop_all_on {
            if *vm >= self.vms.len() {
                return Err(format!(
                    "stop_all_on references VM index {vm} (milestone \
                     '{label}'), but only {} VMs are deployed",
                    self.vms.len()
                ));
            }
        }
        Ok(())
    }
}

/// Paper-calibrated workload footprints (bytes, full scale). The CloudSuite
/// runs must exceed their VM's RAM to create the memory pressure the paper
/// engineers "for the benchmarks to work in a realistic setting".
const INMEM_FOOTPRINT: u64 = 1280 << 20; // 1.25 GiB on a 1 GiB VM
const GRAPH_FOOTPRINT: u64 = 896 << 20; // 896 MiB on a 512 MiB VM

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// The `alloc:<MiB>` milestone label usemem emits for its `k`-th block
/// (1-based) under `cfg`.
pub fn usemem_alloc_label(cfg: &UsememConfig, k: u64) -> String {
    let bytes = (cfg.start_bytes + (k - 1) * cfg.step_bytes).min(cfg.max_bytes);
    format!("alloc:{}", bytes >> 20)
}

/// Build a scenario spec from Table II, scaled by `cfg`.
pub fn build_scenario(kind: ScenarioKind, cfg: &RunConfig) -> ScenarioSpec {
    match kind {
        ScenarioKind::Scenario1 => {
            // "All VMs execute in-memory-analytics once simultaneously,
            // sleep for 5 seconds and execute it again."
            let sleep = cfg.scale_time(SimDuration::from_secs(5));
            let footprint = cfg.scale_bytes(INMEM_FOOTPRINT);
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(GIB),
                        1,
                    ),
                    program: vec![
                        ProgramStep::Run(WorkloadSpec::InMem(
                            InMemoryAnalyticsConfig::with_footprint(footprint, 0),
                        )),
                        ProgramStep::Sleep(sleep),
                        ProgramStep::Run(WorkloadSpec::InMem(
                            InMemoryAnalyticsConfig::with_footprint(footprint, 0),
                        )),
                    ],
                    start: StartRule::At(SimDuration::ZERO),
                })
                .collect();
            ScenarioSpec {
                kind,
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
        ScenarioKind::Scenario2 => {
            // "The first two VMs launch the benchmarks simultaneously, and
            // the third one launches it 30 seconds later."
            let stagger = cfg.scale_time(SimDuration::from_secs(30));
            let footprint = cfg.scale_bytes(GRAPH_FOOTPRINT);
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Graph(
                        GraphAnalyticsConfig::with_footprint(footprint, 0),
                    ))],
                    start: StartRule::At(if i < 2 { SimDuration::ZERO } else { stagger }),
                })
                .collect();
            ScenarioSpec {
                kind,
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
        ScenarioKind::UsememScenario => {
            // "VM1 and VM2 start executing usemem simultaneously, and VM3
            // starts when VM1 and VM2 attempt to allocate 640MB... they are
            // stopped simultaneously when VM3 attempts to allocate 768MB."
            let ucfg = UsememConfig::paper(cfg.scale);
            let start_vm3 = usemem_alloc_label(&ucfg, 5); // 640 MB = 5th block
            let stop_all = usemem_alloc_label(&ucfg, 6); // 768 MB = 6th block
            let vms = (0..3)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Usemem(ucfg))],
                    start: if i < 2 {
                        StartRule::At(SimDuration::ZERO)
                    } else {
                        StartRule::OnMilestonesAll(vec![
                            (0, start_vm3.clone()),
                            (1, start_vm3.clone()),
                        ])
                    },
                })
                .collect();
            ScenarioSpec {
                kind,
                tmem_bytes: cfg.scale_bytes(384 * MIB),
                vms,
                stop_all_on: Some((2, stop_all)),
            }
        }
        ScenarioKind::Scenario3 => {
            // "VM1 and VM2 execute graph-analytics and VM3 executes
            // in-memory-analytics... VM3 launches 30 seconds later."
            let stagger = cfg.scale_time(SimDuration::from_secs(30));
            let graph_fp = cfg.scale_bytes(GRAPH_FOOTPRINT);
            let inmem_fp = cfg.scale_bytes(INMEM_FOOTPRINT);
            let mut vms: Vec<VmSpec> = (0..2)
                .map(|i| VmSpec {
                    config: VmConfig::new(
                        VmId(i as u32 + 1),
                        format!("VM{}", i + 1),
                        cfg.scale_bytes(512 * MIB),
                        1,
                    ),
                    program: vec![ProgramStep::Run(WorkloadSpec::Graph(
                        GraphAnalyticsConfig::with_footprint(graph_fp, 0),
                    ))],
                    start: StartRule::At(SimDuration::ZERO),
                })
                .collect();
            vms.push(VmSpec {
                config: VmConfig::new(VmId(3), "VM3", cfg.scale_bytes(GIB), 1),
                program: vec![ProgramStep::Run(WorkloadSpec::InMem(
                    InMemoryAnalyticsConfig::with_footprint(inmem_fp, 0),
                ))],
                start: StartRule::At(stagger),
            });
            ScenarioSpec {
                kind,
                tmem_bytes: cfg.scale_bytes(GIB),
                vms,
                stop_all_on: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig {
            scale: 1.0,
            ..RunConfig::default()
        }
    }

    #[test]
    fn every_scenario_deploys_three_vms() {
        for kind in ScenarioKind::ALL {
            let spec = build_scenario(kind, &cfg());
            assert_eq!(spec.vms.len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn scenario1_matches_table2() {
        let spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        assert_eq!(spec.tmem_bytes, 1 << 30);
        for vm in &spec.vms {
            assert_eq!(vm.config.ram_bytes, 1 << 30);
            assert_eq!(vm.config.vcpus, 1);
            assert_eq!(vm.program.len(), 3, "run, sleep, run");
            assert!(
                matches!(vm.program[1], ProgramStep::Sleep(d) if d == SimDuration::from_secs(5))
            );
        }
    }

    #[test]
    fn scenario2_staggers_vm3_by_30s() {
        let spec = build_scenario(ScenarioKind::Scenario2, &cfg());
        assert!(matches!(spec.vms[0].start, StartRule::At(d) if d == SimDuration::ZERO));
        assert!(matches!(spec.vms[2].start, StartRule::At(d) if d == SimDuration::from_secs(30)));
        assert_eq!(spec.vms[0].config.ram_bytes, 512 << 20);
    }

    #[test]
    fn usemem_scenario_wires_cross_vm_triggers() {
        let spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        assert_eq!(spec.tmem_bytes, 384 << 20);
        match &spec.vms[2].start {
            StartRule::OnMilestonesAll(reqs) => {
                assert_eq!(
                    reqs,
                    &vec![(0, "alloc:640".to_string()), (1, "alloc:640".to_string())]
                );
            }
            other => panic!("unexpected start rule {other:?}"),
        }
        assert_eq!(spec.stop_all_on, Some((2, "alloc:768".to_string())));
    }

    #[test]
    fn scenario3_mixes_vm_sizes() {
        let spec = build_scenario(ScenarioKind::Scenario3, &cfg());
        assert_eq!(spec.vms[0].config.ram_bytes, 512 << 20);
        assert_eq!(spec.vms[2].config.ram_bytes, 1 << 30);
        assert!(matches!(
            spec.vms[2].program[0],
            ProgramStep::Run(WorkloadSpec::InMem(_))
        ));
    }

    #[test]
    fn scaling_shrinks_memory_and_triggers_consistently() {
        let half = RunConfig {
            scale: 0.25,
            ..RunConfig::default()
        };
        let spec = build_scenario(ScenarioKind::UsememScenario, &half);
        assert_eq!(spec.tmem_bytes, 96 << 20);
        match &spec.vms[2].start {
            StartRule::OnMilestonesAll(reqs) => {
                // 640 MB × 0.25 = 160 MB.
                assert_eq!(reqs[0].1, "alloc:160");
            }
            other => panic!("unexpected start rule {other:?}"),
        }
    }

    #[test]
    fn builtin_scenarios_validate_cleanly() {
        for kind in ScenarioKind::ALL {
            let spec = build_scenario(kind, &cfg());
            assert!(spec.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.vms.clear();
        assert!(spec.validate().unwrap_err().contains("zero VMs"));

        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.tmem_bytes = 100;
        assert!(spec.validate().unwrap_err().contains("4096-byte page"));

        let mut spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        spec.vms[1].program.clear();
        assert!(spec.validate().unwrap_err().contains("empty program"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.vms[2].start = StartRule::OnMilestonesAll(vec![(9, "alloc:640".into())]);
        assert!(spec.validate().unwrap_err().contains("only 3 VMs"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.vms[2].start = StartRule::OnMilestonesAll(vec![(2, "alloc:640".into())]);
        assert!(spec.validate().unwrap_err().contains("own milestone"));

        let mut spec = build_scenario(ScenarioKind::UsememScenario, &cfg());
        spec.stop_all_on = Some((7, "alloc:768".into()));
        assert!(spec.validate().unwrap_err().contains("stop_all_on"));
    }

    #[test]
    fn footprints_exceed_vm_ram() {
        // The pressure precondition of the whole evaluation.
        let spec = build_scenario(ScenarioKind::Scenario1, &cfg());
        if let ProgramStep::Run(WorkloadSpec::InMem(c)) = &spec.vms[0].program[0] {
            assert!(c.footprint_bytes() > spec.vms[0].config.ram_bytes);
        } else {
            panic!("scenario1 VM1 must run in-memory-analytics");
        }
        let spec2 = build_scenario(ScenarioKind::Scenario2, &cfg());
        if let ProgramStep::Run(WorkloadSpec::Graph(c)) = &spec2.vms[0].program[0] {
            assert!(c.footprint_bytes() > spec2.vms[0].config.ram_bytes);
        } else {
            panic!("scenario2 VM1 must run graph-analytics");
        }
    }
}
