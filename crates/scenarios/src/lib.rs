#![warn(missing_docs)]

//! Scenarios and the experiment runner (paper §IV–V).
//!
//! This crate assembles the full simulated node — hypervisor, shared disk,
//! the guest kernels (three for the Table II scenarios, 8–128 for the
//! fleet family), the dom0 TKM relay and the user-space Memory Manager —
//! and drives the four benchmark scenarios of Table II under each
//! policy, producing exactly the data behind the paper's figures:
//!
//! * per-VM, per-run **running times** (Figs. 3, 5, 7, 9),
//! * per-second **tmem occupancy and target time-series** (Figs. 4, 6, 8,
//!   10).
//!
//! Beyond the paper's figures, the [`chaos`] module stress-tests the
//! control plane under deterministic fault injection (lost samples, flaky
//! hypercalls, MM crashes) and verifies graceful degradation: bounded
//! slowdown and intact tmem accounting invariants. The parameterized
//! fleet family ([`spec::FleetParams`], `ScenarioKind::Scenario5`) scales
//! the same machinery to 8–128 VMs with staggered arrivals and mixed
//! workloads for scale-focused benchmarking (`bench-fleet`).
//!
//! ## Scaling
//!
//! Every scenario supports a memory `scale` (1.0 = the paper's sizes). To
//! keep policy *dynamics* scale-invariant, the sampling interval, sleeps
//! and staggered starts scale by the same factor by default: halving all
//! memory halves all phase lengths, so the number of MM cycles a run spans
//! — the quantity that determines how far a policy's targets can travel —
//! stays fixed. See `RunConfig::time_scale`.

pub mod batch;
pub mod chaos;
pub mod config;
pub mod dsl;
pub mod figures;
pub mod par;
pub mod report;
pub mod runner;
pub mod spec;
pub mod toml;
pub mod trace_check;

pub use chaos::{run_chaos, ChaosProfile, ChaosReport, DEGRADATION_BOUND};
pub use config::RunConfig;
pub use runner::{
    run_cluster, run_scenario, ClusterConfig, ClusterResult, FleetMetrics, RunResult, VmResult,
};
pub use spec::{build_scenario, Arrival, FleetParams, ScenarioKind, ScenarioSpec, WorkloadMix};
pub use trace_check::{verify, verify_cluster, ReplayReport};

pub use smartmem_core::PolicyKind;
