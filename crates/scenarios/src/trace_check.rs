//! Replay verifier for the flight recorder.
//!
//! The trace event stream is a load-bearing contract: this module re-derives
//! per-VM tmem occupancy, the admission counters and the whole
//! [`FaultLedger`] *purely from events* and checks them against the live
//! accounting carried by a [`RunResult`]. A run whose trace replays cleanly
//! proves that every subsystem emitted exactly the events its state changes
//! imply — no missing emission sites, no double counting, no schema drift.
//!
//! Replay rules:
//!
//! * occupancy: `Put` with a frame-consuming result is +1 for the putting
//!   VM; `Evict` is −1 for the victim; a persistent-pool `Get` hit frees the
//!   frame (−1); `Flush`/`PoolDestroy`/`Reclaim`/`DataPurge` subtract their
//!   page counts.
//!   The occupancy vector at the `k`-th [`Payload::IntervalClose`] must
//!   match the `k`-th point of the recorded occupancy time-series, and the
//!   final vector must match `RunResult::final_tmem_used`.
//! * far tier: a `stored_far` put is +1 *far* occupancy (the local frame was
//!   never consumed); `FarGet` is −1 (far hits are exclusive; the paired
//!   `Get` event carries `freed: false`); `FarFlush` subtracts its page
//!   count. The final far vector must match `RunResult::final_far_used`.
//! * migration: `MigrateOut` empties the departing VM on the source host
//!   (local pages + purged corrupt pages from local occupancy, far pages
//!   from far occupancy); `MigrateIn` credits the destination with what
//!   landed locally and in far memory, and counts spilled pages into the
//!   VM's reclaim total (the import overflow path goes through the guest's
//!   reclaim callback, which has no `Reclaim` event of its own). A VM that
//!   appears in a host's trace but not in its final `vm_results` must end
//!   the replay at exactly zero occupancy on that host.
//! * admission counters: the per-VM `puts_succ`/`puts_failed`/`get_hits`/
//!   `flushes` tallies compared against the guest kernel stats cover the
//!   *frontswap* datapath only, so `PoolCreate` events (which make the
//!   trace self-describing about each pool's kind) gate the tallies:
//!   traffic on a pool announced as ephemeral moves occupancy and the
//!   metrics registry but is excluded from the kernel-stat comparison.
//! * ledger: sample/netlink fates, relay push outcomes (a retry is any
//!   attempt ≥ 2 that is not a `Superseded` marker — superseding re-reports
//!   the old push's attempt count without making a new attempt), MM
//!   crash/restart/discard events, and sequence gaps re-derived with the
//!   MM's own rule: a fresh snapshot's `seq_in` more than one above the
//!   previous one is a gap, and a crash resets the high-water mark.

use crate::runner::RunResult;
use sim_core::faults::{FaultLedger, NetlinkFate, SampleFate};
use sim_core::trace::{FaultKind, Payload, PushOutcome, PutResult};
use std::collections::BTreeMap;

/// Outcome of one replay verification.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Events replayed.
    pub events: usize,
    /// Individual comparisons performed.
    pub checks: u64,
    /// Human-readable description of every comparison that failed. Empty
    /// means the trace replays the run exactly.
    pub mismatches: Vec<String>,
}

impl ReplayReport {
    /// True when every comparison passed.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Per-VM state re-derived from the event stream.
#[derive(Debug, Clone, Copy, Default)]
struct VmReplay {
    occupancy: i64,
    far_occ: i64,
    puts_succ: u64,
    puts_failed: u64,
    get_hits: u64,
    flushes: u64,
    reclaimed: u64,
}

impl VmReplay {
    fn absorb(&mut self, other: &VmReplay) {
        self.occupancy += other.occupancy;
        self.far_occ += other.far_occ;
        self.puts_succ += other.puts_succ;
        self.puts_failed += other.puts_failed;
        self.get_hits += other.get_hits;
        self.flushes += other.flushes;
        self.reclaimed += other.reclaimed;
    }
}

fn check<T: PartialEq + std::fmt::Debug>(
    report: &mut ReplayReport,
    what: &str,
    replayed: T,
    live: T,
) {
    report.checks += 1;
    if replayed != live {
        report
            .mismatches
            .push(format!("{what}: replayed {replayed:?} != live {live:?}"));
    }
}

/// Replay `result.trace` and verify it against the run's live accounting.
///
/// Errors when the run is not verifiable at all: no trace attached, or the
/// ring buffer dropped events (raise `TraceConfig::capacity`). Mismatches
/// found during replay are collected in the report, not errors.
pub fn verify(result: &RunResult) -> Result<ReplayReport, String> {
    let mut report = ReplayReport::default();
    let vms = replay_one(result, &mut report)?;
    check_admission_counters(result, &vms, &mut report);
    Ok(report)
}

/// Replay every host of a cluster run and verify the fleet-wide accounting.
///
/// Each host's trace is replayed independently (occupancy, fault ledger,
/// metrics registry, MM counters), then the per-VM admission counters are
/// *summed across hosts* and checked against the lifetime kernel statistics
/// reported by whichever host the VM finished on — a migrated VM's kernel
/// travels with it, so its counters span hosts while each host's trace only
/// saw its own residency window.
pub fn verify_cluster(hosts: &[RunResult]) -> Result<ReplayReport, String> {
    let mut report = ReplayReport::default();
    let mut merged: BTreeMap<u32, VmReplay> = BTreeMap::new();
    for (h, host) in hosts.iter().enumerate() {
        let before = report.mismatches.len();
        let vms = replay_one(host, &mut report)?;
        for msg in &mut report.mismatches[before..] {
            *msg = format!("host{h}: {msg}");
        }
        for (id, v) in vms {
            merged.entry(id).or_default().absorb(&v);
        }
    }
    for host in hosts {
        check_admission_counters(host, &merged, &mut report);
    }
    Ok(report)
}

/// Replay a single host's trace: occupancy (local and far), the fault
/// ledger, the metrics registry and the MM counters. Returns the per-VM
/// replay state so callers can merge admission counters across hosts.
fn replay_one(
    result: &RunResult,
    report: &mut ReplayReport,
) -> Result<BTreeMap<u32, VmReplay>, String> {
    let trace = result
        .trace
        .as_ref()
        .ok_or("run has no trace attached (RunConfig::trace was None)")?;
    if trace.dropped_oldest > 0 {
        return Err(format!(
            "trace dropped {} oldest events; raise TraceConfig::capacity to replay",
            trace.dropped_oldest
        ));
    }

    report.events += trace.events.len();
    let mut vms: BTreeMap<u32, VmReplay> = BTreeMap::new();
    for vr in &result.vm_results {
        vms.insert(vr.vm_id.0, VmReplay::default());
    }
    let mut led = FaultLedger::default();
    // MM snapshot-sequence high-water mark (None after a crash, like the
    // rebuilt StatsHistory).
    let mut last_seq: Option<u64> = None;
    let mut interval_idx = 0usize;
    let series = result.series.as_ref();

    // Metrics-registry recount (counters only; histograms are checked by
    // their counts, which are implied by the event counts).
    let mut puts = 0u64;
    let mut puts_rejected = 0u64;
    let mut gets = 0u64;
    let mut get_hits = 0u64;
    let mut flush_pages = 0u64;
    let mut evictions = 0u64;
    let mut reclaimed_pages = 0u64;
    let mut virq_samples = 0u64;
    let mut relay_enqueued = 0u64;
    let mut relay_shed = 0u64;
    let mut relay_pushes = 0u64;
    let mut relay_retries = 0u64;
    let mut mm_decisions = 0u64;
    let mut mm_sent = 0u64;
    let mut faults_injected = 0u64;

    // Pool kinds learned from `PoolCreate` events. The kernel admission
    // counters (`evictions_to_tmem`, `failed_puts`, `tmem_faults`,
    // `tmem_flushes`) cover the frontswap datapath only, so cleancache
    // (ephemeral-pool) traffic moves occupancy and the metrics registry
    // but is excluded from the per-VM counter comparison.
    let mut ephemeral_pools: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();

    for ev in &trace.events {
        match &ev.payload {
            Payload::PoolCreate { pool, ephemeral } => {
                if *ephemeral {
                    ephemeral_pools.insert(*pool);
                }
            }
            Payload::Put {
                pool, result: r, ..
            } => {
                puts += 1;
                let frontswap = !ephemeral_pools.contains(pool);
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                if r.is_success() {
                    if frontswap {
                        vm.puts_succ += 1;
                    }
                } else {
                    if frontswap {
                        vm.puts_failed += 1;
                    }
                    puts_rejected += 1;
                }
                if r.consumed_frame() {
                    vm.occupancy += 1;
                }
                if *r == PutResult::StoredFar {
                    vm.far_occ += 1;
                }
            }
            Payload::Evict { .. } => {
                evictions += 1;
                vms.entry(ev.vm.unwrap_or(0)).or_default().occupancy -= 1;
            }
            Payload::Get { pool, hit, freed } => {
                gets += 1;
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                if *hit {
                    if !ephemeral_pools.contains(pool) {
                        vm.get_hits += 1;
                    }
                    get_hits += 1;
                }
                if *freed {
                    vm.occupancy -= 1;
                }
            }
            Payload::Flush { pool, pages } => {
                flush_pages += pages;
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                if !ephemeral_pools.contains(pool) {
                    vm.flushes += 1;
                }
                vm.occupancy -= *pages as i64;
            }
            Payload::PoolDestroy { pages, .. } => {
                flush_pages += pages;
                vms.entry(ev.vm.unwrap_or(0)).or_default().occupancy -= *pages as i64;
            }
            Payload::Reclaim { pages, .. } => {
                reclaimed_pages += pages;
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                vm.reclaimed += pages;
                vm.occupancy -= *pages as i64;
            }
            Payload::TargetsApplied { .. } => {}
            Payload::VirqSample { fate, .. } => {
                virq_samples += 1;
                match fate {
                    SampleFate::Deliver => led.samples_delivered += 1,
                    SampleFate::Drop => led.samples_dropped += 1,
                    SampleFate::Delay => led.samples_delayed += 1,
                    SampleFate::Duplicate => led.samples_duplicated += 1,
                }
            }
            Payload::IntervalClose { stale, ok, .. } => {
                led.invariant_checks += 1;
                if *stale {
                    led.stale_intervals += 1;
                }
                if !*ok {
                    led.invariant_violations += 1;
                }
                if let Some(series) = series {
                    for (i, vr) in result.vm_results.iter().enumerate() {
                        report.checks += 1;
                        let occ = vms.get(&vr.vm_id.0).map(|v| v.occupancy).unwrap_or(0);
                        match series.used[i].points().get(interval_idx) {
                            Some(&(_, live)) if live == occ as f64 => {}
                            Some(&(at, live)) => report.mismatches.push(format!(
                                "occupancy[{}] at interval {} ({:?}): replayed {} != live {}",
                                vr.name, interval_idx, at, occ, live
                            )),
                            None => report.mismatches.push(format!(
                                "interval {} has no matching series point",
                                interval_idx
                            )),
                        }
                    }
                }
                interval_idx += 1;
            }
            Payload::NetlinkStats { fate, .. } => match fate {
                NetlinkFate::Deliver => {}
                NetlinkFate::Drop => led.netlink_dropped += 1,
                NetlinkFate::Reorder => led.netlink_reordered += 1,
            },
            Payload::RelayEnqueue { .. } => relay_enqueued += 1,
            Payload::RelayShed { .. } => relay_shed += 1,
            Payload::RelayPush {
                attempt, outcome, ..
            } => {
                relay_pushes += 1;
                if *attempt >= 2 {
                    relay_retries += 1;
                    if *outcome != PushOutcome::Superseded {
                        led.hypercall_retries += 1;
                    }
                }
                // A first-attempt Superseded marker never made attempt ≥ 2,
                // so the retry exclusion above is the only special case.
                match outcome {
                    PushOutcome::Abandoned => led.hypercalls_abandoned += 1,
                    PushOutcome::Superseded => led.hypercalls_superseded += 1,
                    PushOutcome::Landed | PushOutcome::Parked => {}
                }
            }
            Payload::MmDecision { seq_in, sent, .. } => {
                mm_decisions += 1;
                if *sent {
                    mm_sent += 1;
                }
                if let Some(last) = last_seq {
                    if *seq_in > last + 1 {
                        led.seq_gaps += 1;
                    }
                }
                last_seq = Some(*seq_in);
            }
            Payload::MmDiscard { .. } => led.snapshots_discarded += 1,
            Payload::MmCrash { .. } => {
                led.mm_crashes += 1;
                last_seq = None;
            }
            Payload::MmRestart => led.mm_restarts += 1,
            Payload::Fault { kind } => {
                faults_injected += 1;
                match kind {
                    FaultKind::HypercallFail => led.hypercalls_failed += 1,
                    FaultKind::PageBitflip => led.bitflips_injected += 1,
                    FaultKind::TornWrite => led.torn_writes_injected += 1,
                    FaultKind::EphemeralLoss => led.ephemeral_losses_injected += 1,
                    FaultKind::PutIoFail => led.put_io_failures_injected += 1,
                    FaultKind::BrownoutReject => led.brownout_rejections += 1,
                    FaultKind::BrownoutTick => led.brownout_ticks += 1,
                    FaultKind::CorruptDetected => led.corruptions_detected += 1,
                    FaultKind::CorruptRecovered => led.corruptions_recovered += 1,
                    _ => {}
                }
            }
            // A silent occupancy drop: an injected ephemeral loss, a corrupt
            // ephemeral page dropped on get, corrupt reclaim victims withheld
            // from write-back, or a scrubber quarantine. The guest issued no
            // hypercall, so only occupancy moves.
            Payload::DataPurge { pages, .. } => {
                vms.entry(ev.vm.unwrap_or(0)).or_default().occupancy -= *pages as i64;
            }
            Payload::Scrub {
                checked,
                quarantined,
                ..
            } => {
                led.scrub_passes += 1;
                led.scrub_pages_checked += checked;
                led.objects_quarantined += quarantined;
            }
            // A far hit: the paired `Get` event carried `hit: true,
            // freed: false`, so only the far occupancy moves here.
            Payload::FarGet { .. } => {
                vms.entry(ev.vm.unwrap_or(0)).or_default().far_occ -= 1;
            }
            Payload::FarFlush { pages, .. } => {
                vms.entry(ev.vm.unwrap_or(0)).or_default().far_occ -= *pages as i64;
            }
            Payload::MigrateOut {
                pages, far, purged, ..
            } => {
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                vm.occupancy -= (*pages + *purged) as i64;
                vm.far_occ -= *far as i64;
                led.migrations_out += 1;
                led.migrate_pages += pages + far;
                led.migrate_purged += purged;
            }
            Payload::MigrateIn {
                pages,
                far,
                spilled,
            } => {
                let vm = vms.entry(ev.vm.unwrap_or(0)).or_default();
                vm.occupancy += *pages as i64;
                vm.far_occ += *far as i64;
                // Import overflow is handed to the guest's reclaim callback
                // (pages pushed back to the swap device), which bumps the
                // kernel's reclaimed_pages without a `Reclaim` event.
                vm.reclaimed += spilled;
                led.migrations_in += 1;
                led.migrate_spilled += spilled;
            }
            Payload::MigrateDone { .. } => {}
        }
    }

    // Final per-VM occupancy against the hypervisor's closing accounting. A
    // VM that migrated away appears in the trace but not in this host's
    // vm_results: it must have left nothing behind.
    for (i, vr) in result.vm_results.iter().enumerate() {
        let v = vms.get(&vr.vm_id.0).copied().unwrap_or_default();
        check(
            report,
            &format!("final occupancy[{}]", vr.name),
            v.occupancy,
            result.final_tmem_used.get(i).copied().unwrap_or(0) as i64,
        );
        check(
            report,
            &format!("final far occupancy[{}]", vr.name),
            v.far_occ,
            result.final_far_used.get(i).copied().unwrap_or(0) as i64,
        );
    }
    let resident: std::collections::BTreeSet<u32> =
        result.vm_results.iter().map(|vr| vr.vm_id.0).collect();
    for (&id, v) in &vms {
        if !resident.contains(&id) {
            check(
                report,
                &format!("departed vm{id} occupancy"),
                v.occupancy,
                0,
            );
            check(
                report,
                &format!("departed vm{id} far occupancy"),
                v.far_occ,
                0,
            );
        }
    }
    // Per-interval alignment: every recorded series point was visited.
    if let Some(series) = series {
        if let Some(s) = series.used.first() {
            check(
                report,
                "interval closes vs series points",
                interval_idx,
                s.len(),
            );
        }
    }
    // The whole fault ledger, field by field.
    let lf = &result.faults;
    let ledger_fields: [(&str, u64, u64); 33] = [
        (
            "samples_delivered",
            led.samples_delivered,
            lf.samples_delivered,
        ),
        ("samples_dropped", led.samples_dropped, lf.samples_dropped),
        ("samples_delayed", led.samples_delayed, lf.samples_delayed),
        (
            "samples_duplicated",
            led.samples_duplicated,
            lf.samples_duplicated,
        ),
        ("netlink_dropped", led.netlink_dropped, lf.netlink_dropped),
        (
            "netlink_reordered",
            led.netlink_reordered,
            lf.netlink_reordered,
        ),
        (
            "hypercalls_failed",
            led.hypercalls_failed,
            lf.hypercalls_failed,
        ),
        (
            "hypercall_retries",
            led.hypercall_retries,
            lf.hypercall_retries,
        ),
        (
            "hypercalls_abandoned",
            led.hypercalls_abandoned,
            lf.hypercalls_abandoned,
        ),
        (
            "hypercalls_superseded",
            led.hypercalls_superseded,
            lf.hypercalls_superseded,
        ),
        ("mm_crashes", led.mm_crashes, lf.mm_crashes),
        ("mm_restarts", led.mm_restarts, lf.mm_restarts),
        ("seq_gaps", led.seq_gaps, lf.seq_gaps),
        (
            "snapshots_discarded",
            led.snapshots_discarded,
            lf.snapshots_discarded,
        ),
        ("stale_intervals", led.stale_intervals, lf.stale_intervals),
        (
            "invariant_checks",
            led.invariant_checks,
            lf.invariant_checks,
        ),
        (
            "invariant_violations",
            led.invariant_violations,
            lf.invariant_violations,
        ),
        (
            "bitflips_injected",
            led.bitflips_injected,
            lf.bitflips_injected,
        ),
        (
            "torn_writes_injected",
            led.torn_writes_injected,
            lf.torn_writes_injected,
        ),
        (
            "ephemeral_losses_injected",
            led.ephemeral_losses_injected,
            lf.ephemeral_losses_injected,
        ),
        (
            "put_io_failures_injected",
            led.put_io_failures_injected,
            lf.put_io_failures_injected,
        ),
        (
            "brownout_rejections",
            led.brownout_rejections,
            lf.brownout_rejections,
        ),
        ("brownout_ticks", led.brownout_ticks, lf.brownout_ticks),
        (
            "corruptions_detected",
            led.corruptions_detected,
            lf.corruptions_detected,
        ),
        (
            "corruptions_recovered",
            led.corruptions_recovered,
            lf.corruptions_recovered,
        ),
        (
            "objects_quarantined",
            led.objects_quarantined,
            lf.objects_quarantined,
        ),
        ("scrub_passes", led.scrub_passes, lf.scrub_passes),
        (
            "scrub_pages_checked",
            led.scrub_pages_checked,
            lf.scrub_pages_checked,
        ),
        ("migrations_out", led.migrations_out, lf.migrations_out),
        ("migrations_in", led.migrations_in, lf.migrations_in),
        ("migrate_pages", led.migrate_pages, lf.migrate_pages),
        ("migrate_purged", led.migrate_purged, lf.migrate_purged),
        ("migrate_spilled", led.migrate_spilled, lf.migrate_spilled),
    ];
    for (name, replayed, live) in ledger_fields {
        check(report, &format!("ledger.{name}"), replayed, live);
    }
    // The metrics registry must agree with a plain recount of the events.
    let m = &trace.metrics;
    check(report, "metrics.puts", puts, m.puts);
    check(
        report,
        "metrics.puts_rejected",
        puts_rejected,
        m.puts_rejected,
    );
    check(report, "metrics.gets", gets, m.gets);
    check(report, "metrics.get_hits", get_hits, m.get_hits);
    check(report, "metrics.flush_pages", flush_pages, m.flush_pages);
    check(report, "metrics.evictions", evictions, m.evictions);
    check(
        report,
        "metrics.reclaimed_pages",
        reclaimed_pages,
        m.reclaimed_pages,
    );
    check(report, "metrics.virq_samples", virq_samples, m.virq_samples);
    check(
        report,
        "metrics.relay_enqueued",
        relay_enqueued,
        m.relay_enqueued,
    );
    check(report, "metrics.relay_shed", relay_shed, m.relay_shed);
    check(report, "metrics.relay_pushes", relay_pushes, m.relay_pushes);
    check(
        report,
        "metrics.relay_retries",
        relay_retries,
        m.relay_retries,
    );
    check(report, "metrics.mm_decisions", mm_decisions, m.mm_decisions);
    check(
        report,
        "metrics.faults_injected",
        faults_injected,
        m.faults_injected,
    );
    // One latency sample per put; one depth sample per enqueue.
    check(report, "put_latency samples", m.put_latency.count(), puts);
    check(
        report,
        "relay_depth samples",
        m.relay_depth.count(),
        relay_enqueued,
    );
    // MM counters surfaced on the run result.
    check(report, "mm_cycles", mm_decisions, result.mm_cycles);
    check(report, "mm_transmissions", mm_sent, result.mm_transmissions);
    Ok(vms)
}

/// Per-VM admission counters against the guest kernels' own accounting.
/// `vms` may span several hosts' replays (summed), since kernel statistics
/// are lifetime totals that travel with a migrating VM.
fn check_admission_counters(
    result: &RunResult,
    vms: &BTreeMap<u32, VmReplay>,
    report: &mut ReplayReport,
) {
    for vr in &result.vm_results {
        let v = vms.get(&vr.vm_id.0).copied().unwrap_or_default();
        let ks = &vr.kernel_stats;
        let name = &vr.name;
        check(
            report,
            &format!("puts_succ[{name}]"),
            v.puts_succ,
            ks.evictions_to_tmem,
        );
        check(
            report,
            &format!("puts_failed[{name}]"),
            v.puts_failed,
            ks.failed_puts,
        );
        check(
            report,
            &format!("get_hits[{name}]"),
            v.get_hits,
            ks.tmem_faults,
        );
        check(
            report,
            &format!("flushes[{name}]"),
            v.flushes,
            ks.tmem_flushes,
        );
        check(
            report,
            &format!("reclaimed[{name}]"),
            v.reclaimed,
            ks.reclaimed_pages,
        );
    }
}
