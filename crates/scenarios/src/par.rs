//! Deterministic parallel execution of independent run grids.
//!
//! Every experiment in this crate is a grid of fully independent
//! simulations — (scenario × policy × rep) cells whose seeds are derived
//! per cell up front. This module fans such a grid across a fixed number
//! of worker threads while keeping the *collected* results in exact grid
//! order, so any output folded from them (CSV, report text, summaries) is
//! byte-identical to a serial run. Parallelism is an engine knob
//! ([`crate::config::RunConfig::jobs`]); it must never be able to change a
//! result, only the wall-clock.
//!
//! The scheme is a work-stealing-free classic: an atomic cursor hands out
//! grid indices, each worker writes its result into the slot for that
//! index, and the caller drains the slots in index order. Dynamic
//! index-claiming (rather than pre-chunking) keeps all workers busy even
//! when cell runtimes are skewed, which they are — a `no-tmem` rep can
//! take several times longer than a `greedy` rep of the same scenario.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to default to: the cores the OS reports, or 1
/// when that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item of `grid`, using up to `jobs` worker threads,
/// and return the results **in grid order** regardless of completion
/// order.
///
/// `f` receives the item's grid index alongside the item. With `jobs == 1`
/// (or a grid of ≤ 1 item) no threads are spawned and the calls happen
/// inline, in order — the serial baseline the determinism tests compare
/// against. A panic inside `f` propagates to the caller once all workers
/// have stopped.
///
/// # Panics
///
/// Panics if `jobs == 0`; callers validate user input first (the CLI
/// rejects `--jobs 0` with its own message).
pub fn run_indexed<T, R, F>(grid: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(jobs > 0, "jobs must be >= 1");
    let n = grid.len();
    if jobs == 1 || n <= 1 {
        return grid.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = grid.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("no other thread panicked holding this input")
                    .take()
                    .expect("each grid index is claimed exactly once");
                let result = f(i, item);
                *outputs[i]
                    .lock()
                    .expect("no other thread touches this output") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers are joined")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_grid_order_at_any_job_count() {
        let grid: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = grid.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = run_indexed(grid.clone(), jobs, |_, x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn passes_matching_indices() {
        let got = run_indexed(vec!['a', 'b', 'c'], 2, |i, c| (i, c));
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn empty_grid_is_fine() {
        let got: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "jobs must be >= 1")]
    fn zero_jobs_panics() {
        run_indexed(vec![1], 0, |_, x: i32| x);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
