//! Run configuration.

use serde::{Deserialize, Serialize};
use sim_core::cost::CostModel;
use sim_core::faults::FaultProfile;
use sim_core::time::SimDuration;
use sim_core::trace::TraceConfig;

/// Knobs for one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Memory scale relative to the paper's sizes (1.0 = 1 GB VMs etc.).
    /// Benches default to 0.125 to bound wall-clock time; tests go smaller.
    pub scale: f64,
    /// Time scale for the sampling interval, sleeps and staggered starts.
    /// `None` (default) tracks `scale`, which keeps policy dynamics
    /// scale-invariant (see crate docs).
    pub time_scale: Option<f64>,
    /// Root seed; repetitions and VMs derive children from it.
    pub seed: u64,
    /// Latency model (default: the paper's HDD testbed).
    pub cost: CostModel,
    /// Compute quantum per VM execution step.
    pub quantum: SimDuration,
    /// Fraction of guest RAM reserved by the OS (kernel, daemons, page
    /// cache floor) and unavailable to the workload.
    pub os_reserve_frac: f64,
    /// Swap-in read-ahead window, pages.
    pub readahead_pages: u32,
    /// Physical cores available to guest vCPUs (paper testbed: 2).
    pub cores: u32,
    /// Fraction of the node's tmem the hypervisor may slow-reclaim from
    /// each over-target VM per sampling interval (paper §III-B: "the
    /// hypervisor can reclaim tmem pages from a VM very slowly").
    pub reclaim_frac_per_interval: f64,
    /// Record per-interval occupancy/target time-series (Figs. 4/6/8/10).
    pub record_series: bool,
    /// Hard safety cutoff on simulated time; a run hitting it is a bug.
    pub max_sim_time: SimDuration,
    /// Worker threads for experiment grids (scenario × policy × rep).
    /// Engine-only knob: it can change wall-clock time, never a result —
    /// grids are collected in deterministic order (see [`crate::par`]).
    /// Library default is 1 (serial); the CLI defaults it to the available
    /// cores.
    pub jobs: usize,
    /// Control-plane fault injection profile. Default: fully disabled —
    /// a disabled profile leaves every run byte-identical to a build
    /// without the fault layer (pinned by the determinism suite).
    pub faults: FaultProfile,
    /// Flight-recorder configuration. `None` (default) disables tracing
    /// entirely: no recorder is allocated and every emit site is a single
    /// branch, so untraced runs stay byte-identical to a build without the
    /// recorder (pinned by the determinism suite).
    pub trace: Option<TraceConfig>,
}

impl RunConfig {
    /// Effective time scale.
    pub fn time_scale(&self) -> f64 {
        self.time_scale.unwrap_or(self.scale)
    }

    /// Effective sampling interval (the paper's 1 s, time-scaled).
    pub fn sampling_interval(&self) -> SimDuration {
        SimDuration::from_nanos(
            ((1e9 * self.time_scale()).round() as u64).max(1_000_000), // floor 1 ms
        )
    }

    /// Scale a byte size by the memory scale, rounding to whole pages.
    pub fn scale_bytes(&self, bytes: u64) -> u64 {
        let scaled = (bytes as f64 * self.scale) as u64;
        (scaled / 4096).max(4) * 4096
    }

    /// Scale a duration by the time scale.
    pub fn scale_time(&self, d: SimDuration) -> SimDuration {
        d.scale(self.time_scale())
    }

    /// Validate the configuration, returning an actionable message on the
    /// first violation. The CLI calls this on every user-supplied config
    /// before running anything.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!(
                "scale must be a positive finite number, got {}",
                self.scale
            ));
        }
        if let Some(ts) = self.time_scale {
            if !(ts.is_finite() && ts > 0.0) {
                return Err(format!(
                    "time_scale must be a positive finite number, got {ts}"
                ));
            }
        }
        if self.jobs == 0 {
            return Err("jobs must be >= 1 (0 worker threads can run nothing)".into());
        }
        if self.quantum <= SimDuration::ZERO {
            return Err("quantum must be a positive duration".into());
        }
        if !(0.0..1.0).contains(&self.os_reserve_frac) {
            return Err(format!(
                "os_reserve_frac must lie in [0, 1), got {} (1.0 would leave \
                 the workload no memory at all)",
                self.os_reserve_frac
            ));
        }
        if !(0.0..=1.0).contains(&self.reclaim_frac_per_interval)
            || self.reclaim_frac_per_interval.is_nan()
        {
            return Err(format!(
                "reclaim_frac_per_interval must lie in [0, 1], got {}",
                self.reclaim_frac_per_interval
            ));
        }
        if self.max_sim_time <= SimDuration::ZERO {
            return Err("max_sim_time must be a positive duration".into());
        }
        self.faults
            .validate()
            .map_err(|e| format!("invalid fault profile: {e}"))?;
        if let Some(trace) = &self.trace {
            if trace.capacity == 0 {
                return Err("trace.capacity must be >= 1 event (0 can record nothing)".into());
            }
        }
        Ok(())
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 0.125,
            time_scale: None,
            seed: 42,
            cost: CostModel::hdd(),
            quantum: SimDuration::from_millis(1),
            os_reserve_frac: 0.20,
            readahead_pages: 32,
            cores: 2,
            reclaim_frac_per_interval: 0.02,
            record_series: false,
            max_sim_time: SimDuration::from_secs(20_000),
            jobs: 1,
            faults: FaultProfile::none(),
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scale_tracks_memory_scale_by_default() {
        let cfg = RunConfig {
            scale: 0.25,
            ..RunConfig::default()
        };
        assert_eq!(cfg.time_scale(), 0.25);
        assert_eq!(cfg.sampling_interval(), SimDuration::from_millis(250));
        let explicit = RunConfig {
            scale: 0.25,
            time_scale: Some(1.0),
            ..RunConfig::default()
        };
        assert_eq!(explicit.sampling_interval(), SimDuration::from_secs(1));
    }

    #[test]
    fn scale_bytes_rounds_to_pages_with_floor() {
        let cfg = RunConfig {
            scale: 0.1,
            ..RunConfig::default()
        };
        assert_eq!(cfg.scale_bytes(1 << 30) % 4096, 0);
        assert_eq!(cfg.scale_bytes(0), 4 * 4096, "floor of 4 pages");
    }

    #[test]
    fn sampling_interval_has_a_floor() {
        let cfg = RunConfig {
            scale: 1e-9,
            ..RunConfig::default()
        };
        assert_eq!(cfg.sampling_interval(), SimDuration::from_millis(1));
    }

    #[test]
    fn validate_accepts_default_and_rejects_bad_knobs() {
        assert!(RunConfig::default().validate().is_ok());
        let bad = |f: fn(&mut RunConfig)| {
            let mut c = RunConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        assert!(bad(|c| c.scale = 0.0).contains("scale"));
        assert!(bad(|c| c.scale = f64::NAN).contains("scale"));
        assert!(bad(|c| c.time_scale = Some(-1.0)).contains("time_scale"));
        assert!(bad(|c| c.jobs = 0).contains("jobs"));
        assert!(bad(|c| c.quantum = SimDuration::ZERO).contains("quantum"));
        assert!(bad(|c| c.os_reserve_frac = 1.0).contains("os_reserve_frac"));
        assert!(bad(|c| c.reclaim_frac_per_interval = 2.0).contains("reclaim"));
        assert!(bad(|c| c.max_sim_time = SimDuration::ZERO).contains("max_sim_time"));
        assert!(bad(|c| c.faults.virq_drop = 7.0).contains("fault"));
        assert!(bad(|c| c.trace = Some(TraceConfig { capacity: 0 })).contains("trace"));
    }
}
