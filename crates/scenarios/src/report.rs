//! Rendering: aligned ASCII tables and CSV files for every figure, plus
//! the fleet (cluster) report.

use crate::figures::{FigureData, SeriesFigure};
use crate::runner::ClusterResult;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Render a running-time figure as an aligned matrix: rows = (VM, run)
/// bars, columns = policies, cells = `mean±std` seconds.
pub fn render_bars(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", fig.id, fig.title);
    // Collect the union of bar labels, preserving first-seen order.
    let mut labels: Vec<&str> = Vec::new();
    for g in &fig.groups {
        for b in &g.bars {
            if !labels.contains(&b.label.as_str()) {
                labels.push(&b.label);
            }
        }
    }
    let label_w = labels
        .iter()
        .map(|l| l.len())
        .chain(["bar".len()])
        .max()
        .unwrap_or(4);
    let col_w = fig
        .groups
        .iter()
        .map(|g| g.policy.len().max(13))
        .max()
        .unwrap_or(13);
    let _ = write!(out, "{:label_w$}", "bar");
    for g in &fig.groups {
        let _ = write!(out, "  {:>col_w$}", g.policy);
    }
    out.push('\n');
    for label in &labels {
        let _ = write!(out, "{label:label_w$}");
        for g in &fig.groups {
            match g.bars.iter().find(|b| b.label == *label) {
                Some(b) => {
                    let cell = format!("{:.2}±{:.2}", b.mean_s, b.std_s);
                    let _ = write!(out, "  {cell:>col_w$}");
                }
                None => {
                    let _ = write!(out, "  {:>col_w$}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Render an occupancy figure: one panel per policy, one row per sample
/// (downsampled to at most `max_rows`), columns = per-VM used pages (and
/// targets when they differ from the node default).
pub fn render_series(fig: &SeriesFigure, max_rows: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", fig.id, fig.title);
    for (policy, bundle) in &fig.panels {
        let _ = writeln!(out, "--- {policy} ---");
        let n = bundle.used.first().map(|s| s.len()).unwrap_or(0);
        if n == 0 {
            let _ = writeln!(out, "(no samples)");
            continue;
        }
        let stride = (n / max_rows.max(1)).max(1);
        let _ = write!(out, "{:>9}", "t[s]");
        for name in &fig.vm_names {
            let _ = write!(out, "  {:>9}", format!("{name}[pg]"));
        }
        for name in &fig.vm_names {
            let _ = write!(out, "  {:>9}", format!("tgt-{name}"));
        }
        out.push('\n');
        for row in (0..n).step_by(stride) {
            let t = bundle.used[0].points()[row].0.as_secs_f64();
            let _ = write!(out, "{t:>9.2}");
            for s in &bundle.used {
                let _ = write!(out, "  {:>9.0}", s.points()[row].1);
            }
            for s in &bundle.target {
                let _ = write!(out, "  {:>9.0}", s.points()[row].1);
            }
            out.push('\n');
        }
    }
    out
}

/// Write a running-time figure as CSV: `bar,policy,mean_s,std_s,n`.
pub fn write_bars_csv(fig: &FigureData, dir: &Path) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", fig.id));
    let mut body = String::from("bar,policy,mean_s,std_s,n\n");
    for g in &fig.groups {
        for b in &g.bars {
            let _ = writeln!(
                body,
                "{},{},{:.6},{:.6},{}",
                b.label, g.policy, b.mean_s, b.std_s, b.n
            );
        }
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Write an occupancy figure as CSV: `policy,t_s,vm,used_pages,target_pages`.
pub fn write_series_csv(fig: &SeriesFigure, dir: &Path) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", fig.id));
    let mut body = String::from("policy,t_s,vm,used_pages,target_pages\n");
    for (policy, bundle) in &fig.panels {
        for (vi, name) in fig.vm_names.iter().enumerate() {
            let used = &bundle.used[vi];
            let target = &bundle.target[vi];
            for (k, &(t, u)) in used.points().iter().enumerate() {
                let tgt = target.points().get(k).map(|&(_, v)| v).unwrap_or(0.0);
                let _ = writeln!(
                    body,
                    "{policy},{:.3},{name},{u:.0},{tgt:.0}",
                    t.as_secs_f64()
                );
            }
        }
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Render a cluster run as an aligned fleet report: one row per host
/// (resident VMs, end-of-run tmem/far occupancy, the migration ledger)
/// followed by the fleet-wide summary line with the stranded-memory and
/// cross-host-traffic figures. Golden-pinned by the cluster test battery.
pub fn render_fleet(c: &ClusterResult) -> String {
    let mut out = String::new();
    let head = &c.host_results[0];
    let _ = writeln!(
        out,
        "== fleet report — {} / {} ({} hosts) ==",
        head.scenario, head.policy, c.fleet.hosts
    );
    let _ = writeln!(
        out,
        "{:>4} {:>4} {:>11} {:>10} {:>9} {:>8} {:>11} {:>9} {:>9}",
        "host",
        "vms",
        "tmem_pages",
        "far_pages",
        "migr_out",
        "migr_in",
        "moved_pages",
        "purged",
        "spilled"
    );
    for (h, r) in c.host_results.iter().enumerate() {
        let tmem: u64 = r.final_tmem_used.iter().sum();
        let far: u64 = r.final_far_used.iter().sum();
        let l = &r.faults;
        let _ = writeln!(
            out,
            "{h:>4} {:>4} {tmem:>11} {far:>10} {:>9} {:>8} {:>11} {:>9} {:>9}",
            r.vm_results.len(),
            l.migrations_out,
            l.migrations_in,
            l.migrate_pages,
            l.migrate_purged,
            l.migrate_spilled,
        );
    }
    let f = &c.fleet;
    let _ = writeln!(
        out,
        "fleet: migrations={} downtime={} stranded_page_intervals={}",
        f.migrations, f.migration_downtime, f.stranded_page_intervals
    );
    let _ = writeln!(
        out,
        "cross-host traffic: transfers={} pages={} queue_wait={}",
        f.cross_host_transfers, f.cross_host_pages, f.net_queue_wait
    );
    out
}

/// Write the fleet report as CSV (`fleet_report.csv` under `dir`): one
/// row per host plus a `fleet` aggregate row. Host rows carry the
/// per-host occupancy and migration-ledger columns; the aggregate row
/// additionally fills the fleet-wide stranded-memory and
/// cross-host-traffic columns (blank on host rows).
pub fn write_fleet_csv(c: &ClusterResult, dir: &Path) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join("fleet_report.csv");
    let mut body = String::from(
        "host,vms,tmem_pages,far_pages,migrations_out,migrations_in,\
         migrate_pages,migrate_purged,migrate_spilled,migrations,\
         downtime_ns,stranded_page_intervals,cross_host_transfers,\
         cross_host_pages,net_queue_wait_ns\n",
    );
    let (mut vms, mut tmem, mut far) = (0usize, 0u64, 0u64);
    let (mut out_n, mut in_n, mut moved, mut purged, mut spilled) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (h, r) in c.host_results.iter().enumerate() {
        let t: u64 = r.final_tmem_used.iter().sum();
        let fr: u64 = r.final_far_used.iter().sum();
        let l = &r.faults;
        let _ = writeln!(
            body,
            "{h},{},{t},{fr},{},{},{},{},{},,,,,,",
            r.vm_results.len(),
            l.migrations_out,
            l.migrations_in,
            l.migrate_pages,
            l.migrate_purged,
            l.migrate_spilled,
        );
        vms += r.vm_results.len();
        tmem += t;
        far += fr;
        out_n += l.migrations_out;
        in_n += l.migrations_in;
        moved += l.migrate_pages;
        purged += l.migrate_purged;
        spilled += l.migrate_spilled;
    }
    let f = &c.fleet;
    let _ = writeln!(
        body,
        "fleet,{vms},{tmem},{far},{out_n},{in_n},{moved},{purged},{spilled},{},{},{},{},{},{}",
        f.migrations,
        f.migration_downtime.as_nanos(),
        f.stranded_page_intervals,
        f.cross_host_transfers,
        f.cross_host_pages,
        f.net_queue_wait.as_nanos(),
    );
    fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{BarGroup, BarStat};
    use crate::runner::SeriesBundle;
    use sim_core::metrics::TimeSeries;
    use sim_core::time::SimTime;

    fn fig() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "test".into(),
            groups: vec![
                BarGroup {
                    policy: "greedy".into(),
                    bars: vec![BarStat {
                        label: "VM1/run1".into(),
                        mean_s: 10.5,
                        std_s: 0.5,
                        n: 5,
                    }],
                },
                BarGroup {
                    policy: "smart-alloc(2%)".into(),
                    bars: vec![BarStat {
                        label: "VM1/run1".into(),
                        mean_s: 8.0,
                        std_s: 0.25,
                        n: 5,
                    }],
                },
            ],
        }
    }

    #[test]
    fn bars_table_contains_all_cells() {
        let s = render_bars(&fig());
        assert!(s.contains("greedy"));
        assert!(s.contains("smart-alloc(2%)"));
        assert!(s.contains("VM1/run1"));
        assert!(s.contains("10.50±0.50"));
        assert!(s.contains("8.00±0.25"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("smartmem-report-test");
        let path = write_bars_csv(&fig(), &dir).unwrap();
        let body = fs::read_to_string(path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines[0], "bar,policy,mean_s,std_s,n");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("VM1/run1,greedy,10.5"));
    }

    #[test]
    fn series_render_downsamples() {
        let mut used = TimeSeries::new();
        let mut target = TimeSeries::new();
        for t in 0..100 {
            used.push(SimTime::from_secs(t), t as f64);
            target.push(SimTime::from_secs(t), 50.0);
        }
        let f = SeriesFigure {
            id: "figY".into(),
            title: "series".into(),
            panels: vec![(
                "greedy".into(),
                SeriesBundle {
                    used: vec![used],
                    target: vec![target],
                },
            )],
            vm_names: vec!["VM1".into()],
            interval_s: 1.0,
        };
        let s = render_series(&f, 10);
        let rows = s
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert!(rows <= 12, "downsampled, got {rows} rows:\n{s}");
        assert!(s.contains("tgt-VM1"));
    }
}
