//! Chaos experiments: scenario grids under control-plane and data-plane
//! fault injection.
//!
//! The SmarTmem control loop (VIRQ sampling → dom0 TKM relay → user-space
//! MM → `SetTargets` hypercall) is asynchronous to the datapath, so the
//! system's correct response to a degraded control plane is *bounded
//! slowdown*, never corruption: targets go stale and the hypervisor falls
//! back to greedy-above-a-fair-share-floor, but tmem accounting invariants
//! must hold at every interval. This module runs (scenario × policy) cells
//! once fault-free and once per fault profile, reports per-VM running-time
//! degradation ratios plus the full [`FaultLedger`], and checks both the
//! documented degradation bound and the zero-invariant-violation rule.
//!
//! Everything is deterministic: the fault schedule derives from
//! `RunConfig::seed`, cells run through [`crate::par::run_indexed`], and
//! reports are byte-identical at any `--jobs` count (pinned by the
//! determinism suite).

use crate::config::RunConfig;
use crate::par::run_indexed;
use crate::runner::{run_scenario, RunResult};
use crate::spec::ScenarioKind;
use sim_core::faults::{FaultLedger, FaultProfile};
use smartmem_core::PolicyKind;

/// Maximum per-VM running-time ratio (faulty / fault-free) the shipped
/// profiles are allowed to cause, across every scenario × policy cell the
/// chaos suite runs.
///
/// Empirically (scale 0.01, seed 42, scenarios 1–2, policies greedy /
/// static-alloc / reconf-static / smart-alloc(2%)) the worst observed
/// ratio stays under 2×: lost samples and a crashed MM leave targets
/// stale, and the TTL fallback keeps every VM at least its fair-share
/// floor of tmem, so the datapath keeps absorbing evictions. The bound is
/// set at 3.0 to leave headroom for seed and scale variation while still
/// catching degradation cliffs (an unbounded-starvation bug shows up as
/// 10×+, not 3×).
pub const DEGRADATION_BOUND: f64 = 3.0;

/// A named fault profile shipped with the chaos suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    /// Report name ("sample-loss", ...).
    pub name: String,
    /// The injected fault mix.
    pub profile: FaultProfile,
}

/// The shipped chaos profiles, in report order.
///
/// * `sample-loss` — up to 50% of an interval's stats flow lost before the
///   MM sees it (30% VIRQ drop + 20% netlink drop), plus light delay,
///   duplication and reordering. Exercises gap detection, duplicate
///   discard and the hypervisor's stale-target TTL fallback.
/// * `flaky-hypercalls` — 25% of `SetTargets` pushes fail. Exercises the
///   dom0 relay's retry-with-backoff and push supersession.
/// * `mm-crash` — the MM process dies after its 5th cycle and the watchdog
///   restarts it 3 intervals later. Exercises state rebuild from the next
///   sample window and the TTL fallback while the MM is down.
/// * `bitrot` — 2% of admitted puts are bit-flipped and 1% land torn, with
///   the pool scrubber sweeping every 5 intervals. Exercises end-to-end
///   page integrity: every corruption must be *detected* (never returned
///   as wrong bytes) and either recovered by the guest's bounded
///   retry/requeue path or quarantined by the scrubber. The profile also
///   sets a 5% ephemeral loss rate so any future ephemeral (cleancache)
///   traffic degrades to clean misses; frontswap-only scenarios draw it
///   zero times.
/// * `backend-brownout` — 5% of persistent puts fail with an injected I/O
///   error, and every 20 intervals the backend goes dark for 4, rejecting
///   all puts. Exercises the guest's disk fallback under a flaky/stalling
///   backend: the failure mode is slowdown, never corruption.
pub fn shipped_profiles() -> Vec<ChaosProfile> {
    vec![
        ChaosProfile {
            name: "sample-loss".to_string(),
            profile: FaultProfile {
                virq_drop: 0.30,
                virq_delay: 0.05,
                virq_duplicate: 0.05,
                netlink_drop: 0.20,
                netlink_reorder: 0.05,
                ..FaultProfile::none()
            },
        },
        ChaosProfile {
            name: "flaky-hypercalls".to_string(),
            profile: FaultProfile {
                hypercall_fail: 0.25,
                ..FaultProfile::none()
            },
        },
        ChaosProfile {
            name: "mm-crash".to_string(),
            profile: FaultProfile {
                mm_crash_at_cycle: Some(5),
                mm_restart_after: 3,
                ..FaultProfile::none()
            },
        },
        ChaosProfile {
            name: "bitrot".to_string(),
            profile: FaultProfile {
                page_bitflip: 0.02,
                torn_write: 0.01,
                ephemeral_loss: 0.05,
                scrub_every: 5,
                ..FaultProfile::none()
            },
        },
        ChaosProfile {
            name: "backend-brownout".to_string(),
            profile: FaultProfile {
                put_io_fail: 0.05,
                brownout_every: 20,
                brownout_for: 4,
                ..FaultProfile::none()
            },
        },
    ]
}

/// The policies the chaos suite sweeps: every managed policy of the paper
/// set. `no-tmem` is excluded — without a control plane there is nothing
/// to inject faults into.
pub fn chaos_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Greedy,
        PolicyKind::StaticAlloc,
        PolicyKind::ReconfStatic,
        PolicyKind::SmartAlloc { p: 2.0 },
    ]
}

/// One (scenario × policy × profile) cell of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Scenario name.
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// Profile name ("baseline" for the fault-free reference).
    pub profile: String,
    /// Per-VM total running time of completed workload runs, seconds.
    pub vm_times_s: Vec<f64>,
    /// Per-VM degradation ratio vs the cell's baseline (1.0 for the
    /// baseline itself).
    pub ratios: Vec<f64>,
    /// Scenario end time, seconds.
    pub end_s: f64,
    /// Fault + degradation accounting.
    pub ledger: FaultLedger,
    /// Replay-verifier mismatch count for this cell — `Some` only when the
    /// run was traced (`RunConfig::trace`); `u64::MAX` flags a cell whose
    /// trace was not verifiable at all (ring overflow). `None` leaves the
    /// rendered report byte-identical to a build without the recorder.
    pub replay_mismatches: Option<u64>,
}

impl ChaosCell {
    /// Worst per-VM degradation ratio in this cell.
    pub fn worst_ratio(&self) -> f64 {
        self.ratios.iter().copied().fold(1.0, f64::max)
    }
}

/// A complete chaos run: every cell, plus the bound it was checked against.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The degradation bound applied.
    pub bound: f64,
    /// Cells in grid order: scenario-major, policy-middle, profile-minor
    /// (baseline first).
    pub cells: Vec<ChaosCell>,
}

fn vm_times_s(r: &RunResult) -> Vec<f64> {
    r.vm_results
        .iter()
        .map(|vm| {
            let total: f64 = vm
                .completions()
                .iter()
                .map(|d| d.as_nanos() as f64 / 1e9)
                .sum();
            if total > 0.0 {
                total
            } else {
                // No run completed (stopped scenario): fall back to the
                // scenario end time so the ratio is still meaningful.
                r.end_time.as_nanos() as f64 / 1e9
            }
        })
        .collect()
}

/// Run the chaos grid: each (scenario × policy) under the fault-free
/// baseline and every profile, all from one `cfg.seed`. Cells run in
/// parallel (`cfg.jobs`); the report is byte-identical at any job count.
pub fn run_chaos(
    cfg: &RunConfig,
    scenarios: &[ScenarioKind],
    policies: &[PolicyKind],
    profiles: &[ChaosProfile],
    bound: f64,
) -> ChaosReport {
    let mut grid: Vec<(ScenarioKind, PolicyKind, Option<ChaosProfile>)> = Vec::new();
    for &scenario in scenarios {
        for &policy in policies {
            grid.push((scenario, policy, None));
            for p in profiles {
                grid.push((scenario, policy, Some(p.clone())));
            }
        }
    }
    let results = run_indexed(grid, cfg.jobs, |_, (scenario, policy, profile)| {
        let mut cell_cfg = cfg.clone();
        cell_cfg.faults = profile
            .as_ref()
            .map(|p| p.profile.clone())
            .unwrap_or_else(FaultProfile::none);
        let name = profile.map(|p| p.name);
        let r = run_scenario(scenario, policy, &cell_cfg);
        // With the flight recorder on, every cell replays its own trace:
        // chaos runs are exactly where emission sites are easiest to get
        // wrong (retries, supersedes, crashes), so verify them in place.
        let replay = cell_cfg.trace.is_some().then(|| {
            crate::trace_check::verify(&r).map_or(u64::MAX, |rep| rep.mismatches.len() as u64)
        });
        (name, replay, r)
    });

    // Fold grid-order results into cells, computing ratios against each
    // (scenario, policy)'s baseline — always the first cell of its block.
    let mut cells = Vec::with_capacity(results.len());
    let mut baseline: Vec<f64> = Vec::new();
    for (name, replay, r) in results {
        let times = vm_times_s(&r);
        let (profile, ratios) = match name {
            None => {
                baseline = times.clone();
                ("baseline".to_string(), vec![1.0; times.len()])
            }
            Some(n) => {
                let ratios = times
                    .iter()
                    .zip(&baseline)
                    .map(|(&t, &b)| if b > 0.0 { t / b } else { 1.0 })
                    .collect();
                (n, ratios)
            }
        };
        cells.push(ChaosCell {
            scenario: r.scenario.clone(),
            policy: r.policy.clone(),
            profile,
            vm_times_s: times,
            ratios,
            end_s: r.end_time.as_nanos() as f64 / 1e9,
            ledger: r.faults,
            replay_mismatches: replay,
        });
    }
    ChaosReport { bound, cells }
}

impl ChaosReport {
    /// Cells whose worst per-VM ratio exceeds the bound.
    pub fn bound_violations(&self) -> Vec<&ChaosCell> {
        self.cells
            .iter()
            .filter(|c| c.worst_ratio() > self.bound)
            .collect()
    }

    /// Total tmem accounting invariant violations across all cells (must
    /// be zero).
    pub fn invariant_violations(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.ledger.invariant_violations)
            .sum()
    }

    /// Total replay-verifier mismatches across traced cells (0 when
    /// tracing was disabled).
    pub fn replay_mismatches(&self) -> u64 {
        self.cells
            .iter()
            .filter_map(|c| c.replay_mismatches)
            .fold(0u64, u64::saturating_add)
    }

    /// Injected page corruptions that no detection ever accounted for,
    /// across all cells (must be zero: the runner's final scrub sweeps
    /// whatever gets, flushes and reclaims did not already surface).
    pub fn undetected_corruptions(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| {
                (c.ledger.bitflips_injected + c.ledger.torn_writes_injected)
                    .saturating_sub(c.ledger.corruptions_detected)
            })
            .sum()
    }

    /// Whether every cell respects the bound, no invariant was ever
    /// violated, every injected corruption was detected, and (when
    /// traced) every cell's trace replayed exactly.
    pub fn passed(&self) -> bool {
        self.bound_violations().is_empty()
            && self.invariant_violations() == 0
            && self.undetected_corruptions() == 0
            && self.replay_mismatches() == 0
    }

    /// Render the human-readable chaos report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos report (degradation bound {:.1}x)\n",
            self.bound
        ));
        for c in &self.cells {
            let ratios: Vec<String> = c.ratios.iter().map(|r| format!("{r:.3}x")).collect();
            out.push_str(&format!(
                "{} / {} / {}: worst={:.3}x vm_ratios=[{}] end={:.3}s\n",
                c.scenario,
                c.policy,
                c.profile,
                c.worst_ratio(),
                ratios.join(", "),
                c.end_s,
            ));
            let l = &c.ledger;
            out.push_str(&format!(
                "  injected={} (drop={} delay={} dup={} nl_drop={} nl_reorder={} hc_fail={} crash={})\n",
                l.injected(),
                l.samples_dropped,
                l.samples_delayed,
                l.samples_duplicated,
                l.netlink_dropped,
                l.netlink_reordered,
                l.hypercalls_failed,
                l.mm_crashes,
            ));
            out.push_str(&format!(
                "  degraded: gaps={} discarded={} stale_intervals={} retries={} abandoned={} superseded={} restarts={} invariants={}/{}\n",
                l.seq_gaps,
                l.snapshots_discarded,
                l.stale_intervals,
                l.hypercall_retries,
                l.hypercalls_abandoned,
                l.hypercalls_superseded,
                l.mm_restarts,
                l.invariant_checks - l.invariant_violations,
                l.invariant_checks,
            ));
            // Data-plane line only when the layer actually did something, so
            // control-plane-only reports render byte-for-byte as before.
            let data_active = l.bitflips_injected
                + l.torn_writes_injected
                + l.ephemeral_losses_injected
                + l.put_io_failures_injected
                + l.brownout_rejections
                + l.brownout_ticks
                + l.corruptions_detected
                + l.corruptions_recovered
                + l.objects_quarantined
                + l.scrub_passes
                > 0;
            if data_active {
                out.push_str(&format!(
                    "  data-plane: bitflip={} torn={} eph_loss={} io_fail={} brownout_rej={} brownout_ticks={} detected={} recovered={} quarantined={} scrubs={} scrub_pages={}\n",
                    l.bitflips_injected,
                    l.torn_writes_injected,
                    l.ephemeral_losses_injected,
                    l.put_io_failures_injected,
                    l.brownout_rejections,
                    l.brownout_ticks,
                    l.corruptions_detected,
                    l.corruptions_recovered,
                    l.objects_quarantined,
                    l.scrub_passes,
                    l.scrub_pages_checked,
                ));
            }
            if let Some(n) = c.replay_mismatches {
                out.push_str(&if n == u64::MAX {
                    "  replay: UNVERIFIABLE (trace ring overflowed)\n".to_string()
                } else {
                    format!("  replay: {n} mismatches\n")
                });
            }
        }
        out.push_str(&format!(
            "verdict: {} ({} bound violations, {} invariant violations)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.bound_violations().len(),
            self.invariant_violations(),
        ));
        out
    }

    /// Render the machine-readable per-cell CSV (the fault ledger flattened
    /// into columns). The original control-plane columns come first,
    /// unchanged, with the data-plane columns appended after them — so a
    /// consumer selecting the historical columns by position still reads
    /// the same values.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,policy,profile,worst_ratio,end_s,injected,samples_dropped,\
             samples_delayed,samples_duplicated,netlink_dropped,netlink_reordered,\
             hypercalls_failed,hypercall_retries,hypercalls_abandoned,\
             hypercalls_superseded,mm_crashes,mm_restarts,seq_gaps,\
             snapshots_discarded,stale_intervals,invariant_checks,\
             invariant_violations,bitflips_injected,torn_writes_injected,\
             ephemeral_losses_injected,put_io_failures_injected,\
             brownout_rejections,brownout_ticks,corruptions_detected,\
             corruptions_recovered,objects_quarantined,scrub_passes,\
             scrub_pages_checked,migrations_out,migrations_in,migrate_pages,\
             migrate_purged,migrate_spilled\n",
        );
        for c in &self.cells {
            let l = &c.ledger;
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                c.scenario,
                c.policy,
                c.profile,
                c.worst_ratio(),
                c.end_s,
                l.injected(),
                l.samples_dropped,
                l.samples_delayed,
                l.samples_duplicated,
                l.netlink_dropped,
                l.netlink_reordered,
                l.hypercalls_failed,
                l.hypercall_retries,
                l.hypercalls_abandoned,
                l.hypercalls_superseded,
                l.mm_crashes,
                l.mm_restarts,
                l.seq_gaps,
                l.snapshots_discarded,
                l.stale_intervals,
                l.invariant_checks,
                l.invariant_violations,
                l.bitflips_injected,
                l.torn_writes_injected,
                l.ephemeral_losses_injected,
                l.put_io_failures_injected,
                l.brownout_rejections,
                l.brownout_ticks,
                l.corruptions_detected,
                l.corruptions_recovered,
                l.objects_quarantined,
                l.scrub_passes,
                l.scrub_pages_checked,
                l.migrations_out,
                l.migrations_in,
                l.migrate_pages,
                l.migrate_purged,
                l.migrate_spilled,
            ));
        }
        out
    }
}
