//! `smartmem-cli` — regenerate any table or figure of the paper.
//!
//! ```text
//! smartmem-cli table2 [--scale S]
//! smartmem-cli fig <3|4|5|6|7|8|9|10> [--scale S] [--reps N] [--seed S] [--out DIR]
//! smartmem-cli all [--scale S] [--reps N] [--out DIR]
//! smartmem-cli run <scenario1|scenario2|usemem|scenario3> <policy> [--scale S] [--seed S]
//! ```
//!
//! Policies: `no-tmem`, `greedy`, `static-alloc`, `reconf-static`,
//! `smart-alloc:<P>` (e.g. `smart-alloc:0.75`), `predictive`.

use scenarios::config::RunConfig;
use scenarios::figures;
use scenarios::report;
use scenarios::runner::run_scenario;
use scenarios::spec::ScenarioKind;
use smartmem_core::PolicyKind;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: f64,
    reps: u64,
    seed: u64,
    out: Option<PathBuf>,
}

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scale: 0.125,
        reps: 3,
        seed: 42,
        out: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--reps" => args.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run_config(a: &Args) -> RunConfig {
    RunConfig {
        scale: a.scale,
        seed: a.seed,
        ..RunConfig::default()
    }
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "no-tmem" => Ok(PolicyKind::NoTmem),
        "greedy" => Ok(PolicyKind::Greedy),
        "static-alloc" => Ok(PolicyKind::StaticAlloc),
        "reconf-static" => Ok(PolicyKind::ReconfStatic),
        "predictive" => Ok(PolicyKind::Predictive),
        _ => {
            if let Some(p) = s.strip_prefix("smart-alloc:") {
                let p: f64 = p.parse().map_err(|e| format!("smart-alloc P: {e}"))?;
                Ok(PolicyKind::SmartAlloc { p })
            } else {
                Err(format!("unknown policy '{s}'"))
            }
        }
    }
}

fn parse_scenario(s: &str) -> Result<ScenarioKind, String> {
    match s {
        "scenario1" => Ok(ScenarioKind::Scenario1),
        "scenario2" => Ok(ScenarioKind::Scenario2),
        "usemem" => Ok(ScenarioKind::UsememScenario),
        "scenario3" => Ok(ScenarioKind::Scenario3),
        _ => Err(format!("unknown scenario '{s}'")),
    }
}

fn emit_bars(fig: figures::FigureData, out: &Option<PathBuf>) {
    print!("{}", report::render_bars(&fig));
    if let Some(dir) = out {
        match report::write_bars_csv(&fig, dir) {
            Ok(p) => println!("csv: {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}

fn emit_series(fig: figures::SeriesFigure, out: &Option<PathBuf>) {
    print!("{}", report::render_series(&fig, 24));
    if let Some(dir) = out {
        match report::write_series_csv(&fig, dir) {
            Ok(p) => println!("csv: {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}

fn figure(n: u32, a: &Args) -> Result<(), String> {
    let cfg = run_config(a);
    match n {
        3 => emit_bars(figures::fig3(&cfg, a.reps), &a.out),
        4 => emit_series(figures::fig4(&cfg), &a.out),
        5 => emit_bars(figures::fig5(&cfg, a.reps), &a.out),
        6 => emit_series(figures::fig6(&cfg), &a.out),
        7 => emit_bars(figures::fig7(&cfg, a.reps), &a.out),
        8 => emit_series(figures::fig8(&cfg), &a.out),
        9 => emit_bars(figures::fig9(&cfg, a.reps), &a.out),
        10 => emit_series(figures::fig10(&cfg), &a.out),
        other => return Err(format!("no figure {other} in the paper's evaluation")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.split_first() {
        Some((cmd, rest)) => dispatch(cmd, rest),
        None => Err("usage: smartmem-cli <table2|fig N|all|run SCENARIO POLICY> [flags]".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "table2" => {
            let a = parse_flags(rest)?;
            let cfg = run_config(&a);
            println!("== Table II — scenarios (scale {}) ==", a.scale);
            for (name, rows) in figures::table2_rows(&cfg) {
                println!("{name}");
                for r in rows {
                    println!("  {r}");
                }
            }
            Ok(())
        }
        "fig" => {
            let (n, rest) = rest
                .split_first()
                .ok_or("fig needs a number (3-10)")?;
            let n: u32 = n.parse().map_err(|e| format!("figure number: {e}"))?;
            let a = parse_flags(rest)?;
            figure(n, &a)
        }
        "all" => {
            let a = parse_flags(rest)?;
            for n in [3, 4, 5, 6, 7, 8, 9, 10] {
                figure(n, &a)?;
                println!();
            }
            Ok(())
        }
        "run" => {
            let (scenario, rest) = rest.split_first().ok_or("run needs a scenario")?;
            let (policy, rest) = rest.split_first().ok_or("run needs a policy")?;
            let kind = parse_scenario(scenario)?;
            let policy = parse_policy(policy)?;
            let a = parse_flags(rest)?;
            let cfg = run_config(&a);
            let r = run_scenario(kind, policy, &cfg);
            println!(
                "{} / {}: end={} events={} disk_reads={} read_wait={} throttle={} mm_tx={}/{}",
                r.scenario,
                r.policy,
                r.end_time,
                r.events,
                r.disk_reads,
                r.disk_read_wait,
                r.disk_throttle,
                r.mm_transmissions,
                r.mm_cycles
            );
            for vm in &r.vm_results {
                let runs: Vec<String> = vm
                    .runs
                    .iter()
                    .map(|rr| {
                        let tail = format!(
                            " (df={} tf={} fp={})",
                            rr.stat_delta(|s| s.disk_faults).unwrap_or(0),
                            rr.stat_delta(|s| s.tmem_faults).unwrap_or(0),
                            rr.stat_delta(|s| s.failed_puts).unwrap_or(0),
                        );
                        match rr.duration() {
                            Some(d) => format!("{}={d}{tail}", rr.workload),
                            None => format!("{}=stopped{tail}", rr.workload),
                        }
                    })
                    .collect();
                println!(
                    "  {}: {} | tmem_ev={} disk_ev={} tmem_faults={} disk_faults={} failed_puts={}",
                    vm.name,
                    runs.join(", "),
                    vm.kernel_stats.evictions_to_tmem,
                    vm.kernel_stats.evictions_to_disk,
                    vm.kernel_stats.tmem_faults,
                    vm.kernel_stats.disk_faults,
                    vm.kernel_stats.failed_puts,
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_with_defaults() {
        let a = parse_flags(&args(&[])).unwrap();
        assert_eq!(a.scale, 0.125);
        assert_eq!(a.reps, 3);
        assert_eq!(a.seed, 42);
        assert!(a.out.is_none());
    }

    #[test]
    fn flags_parse_all_values() {
        let a = parse_flags(&args(&[
            "--scale", "0.5", "--reps", "5", "--seed", "7", "--out", "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.reps, 5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_flags(&args(&["--bogus"])).is_err());
        assert!(parse_flags(&args(&["--scale"])).is_err(), "missing value");
    }

    #[test]
    fn policies_parse() {
        assert_eq!(parse_policy("greedy").unwrap(), PolicyKind::Greedy);
        assert_eq!(parse_policy("no-tmem").unwrap(), PolicyKind::NoTmem);
        assert_eq!(
            parse_policy("smart-alloc:0.75").unwrap(),
            PolicyKind::SmartAlloc { p: 0.75 }
        );
        assert_eq!(parse_policy("predictive").unwrap(), PolicyKind::Predictive);
        assert!(parse_policy("smart-alloc:x").is_err());
        assert!(parse_policy("nonsense").is_err());
    }

    #[test]
    fn scenarios_parse() {
        assert_eq!(parse_scenario("usemem").unwrap(), ScenarioKind::UsememScenario);
        assert_eq!(parse_scenario("scenario3").unwrap(), ScenarioKind::Scenario3);
        assert!(parse_scenario("scenario9").is_err());
    }

    #[test]
    fn figure_numbers_are_validated() {
        let a = parse_flags(&args(&[])).unwrap();
        assert!(figure(11, &a).is_err());
        assert!(figure(2, &a).is_err());
    }
}
