//! The experiment runner: one or more full simulated hosts driving one
//! scenario under one policy.
//!
//! Every host owns a hypervisor, a disk, a dom0 TKM relay and a Memory
//! Manager; the runner owns one guest kernel + workload program per VM and
//! advances everything with a single deterministic discrete-event loop:
//!
//! * `Step(vm)` — the VM executes one compute quantum of its workload
//!   (ended early by any blocking disk access); the next step is scheduled
//!   after the consumed time, with the compute part dilated by CPU
//!   contention *on the VM's host*,
//! * `Wake(vm)` / `Start(vm)` — program sleeps and (possibly
//!   milestone-triggered) program starts,
//! * `Virq` — the paper's per-second sampling interrupt, processed for
//!   every host in host order: each host's snapshot travels hypervisor →
//!   dom0 TKM → MM and changed targets travel back down. After all hosts
//!   close their interval, the fleet scheduler compares per-host pressure
//!   and may start one VM migration,
//! * `MigrateDone(vm)` — a migration's modelled network transfer finished;
//!   the VM resumes on its destination host.
//!
//! The single-host path ([`run_spec`]) *is* a one-host cluster — it calls
//! the same constructor with `hosts = 1`, no far tier and no fleet
//! scheduler, so the byte-golden single-host tests pin the equivalence by
//! construction: the cluster machinery exists but every per-host step is
//! the exact event sequence of the pre-cluster runner.

use crate::config::RunConfig;
use crate::spec::{build_scenario, ProgramStep, ScenarioKind, StartRule, VmSpec};
use guest_os::budget::StepBudget;
use guest_os::disk::SharedDisk;
use guest_os::kernel::{GuestConfig, GuestKernel, KernelStats};
use guest_os::machine::Machine;
use guest_os::tkm::{Dom0Tkm, GuestTkm};
use sim_core::event::EventQueue;
use sim_core::faults::{FaultInjector, FaultLedger};
use sim_core::metrics::TimeSeries;
use sim_core::netmodel::{Link, NetModel};
use sim_core::rng::SplitMix64;
use sim_core::time::{SimDuration, SimTime};
use sim_core::trace::{Payload, Subsystem, TraceData, Tracer};
use smartmem_core::fleet::{
    stranded_pages, FleetConfig, FleetManager, HostLoad, MigrationPlan, VmPlacement,
};
use smartmem_core::{MemoryManager, PolicyKind};
use tmem::backend::PoolKind;
use tmem::fastmap::FxHashSet;
use tmem::key::VmId;
use tmem::page::Fingerprint;
use workloads::traits::{StepOutcome, Workload};
use xen_sim::host::FarConfig;
use xen_sim::hypervisor::Hypervisor;
use xen_sim::sched::CpuModel;
use xen_sim::virq::SampleChannel;

/// Lifecycle of a VM's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VmState {
    NotStarted,
    Running,
    Sleeping,
    /// Paused while its pages cross the cluster link; resumes at
    /// `MigrateDone`. Stale queued `Step`/`Wake` events are ignored by the
    /// dispatch guards while in this state.
    Migrating,
    Finished,
    Stopped,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Start(usize),
    Step(usize),
    Wake(usize),
    Virq,
    MigrateDone(usize),
}

/// One workload execution within a VM's program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Program start instant.
    pub start: SimTime,
    /// Completion instant (`None` if stopped externally / truncated).
    pub end: Option<SimTime>,
    /// Kernel counters at run start (for per-run deltas).
    pub stats_at_start: KernelStats,
    /// Kernel counters at run end.
    pub stats_at_end: Option<KernelStats>,
}

impl RunRecord {
    /// Per-run delta of a kernel counter, via an accessor.
    pub fn stat_delta(&self, f: impl Fn(&KernelStats) -> u64) -> Option<u64> {
        self.stats_at_end
            .as_ref()
            .map(|e| f(e) - f(&self.stats_at_start))
    }
}

impl RunRecord {
    /// Running time, if the run completed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e - self.start)
    }
}

/// Per-VM outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct VmResult {
    /// VM name ("VM1"...).
    pub name: String,
    /// Hypervisor identity.
    pub vm_id: VmId,
    /// Workload runs, in program order.
    pub runs: Vec<RunRecord>,
    /// Milestones with their timestamps (usemem per-allocation timing).
    pub milestones: Vec<(String, SimTime)>,
    /// Guest-kernel event counters at scenario end.
    pub kernel_stats: KernelStats,
    /// The VM was stopped by the scenario's global stop trigger.
    pub stopped_early: bool,
}

impl VmResult {
    /// Durations of completed runs, in program order (the bars of Figs. 3,
    /// 5, 9).
    pub fn completions(&self) -> Vec<SimDuration> {
        self.runs.iter().filter_map(|r| r.duration()).collect()
    }

    /// Time from `alloc:<label>` to the matching `block:<label>` milestone —
    /// usemem's per-allocation running time (Fig. 7).
    pub fn span_between(&self, from: &str, to: &str) -> Option<SimDuration> {
        let start = self.milestones.iter().find(|(l, _)| l == from)?.1;
        let end = self.milestones.iter().find(|(l, _)| l == to)?.1;
        Some(end - start)
    }
}

/// Occupancy/target time-series for the occupancy figures.
#[derive(Debug, Clone, Default)]
pub struct SeriesBundle {
    /// Per-VM tmem pages in use, sampled every interval.
    pub used: Vec<TimeSeries>,
    /// Per-VM target allocation, sampled every interval.
    pub target: Vec<TimeSeries>,
}

/// Complete outcome of one scenario × policy run on one host.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scenario name.
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// The policy that ran.
    pub policy_kind: PolicyKind,
    /// Per-VM outcomes for VMs resident on this host at scenario end, in
    /// global VM order. A migrated VM's lifetime counters travel with it.
    pub vm_results: Vec<VmResult>,
    /// Occupancy series (when `RunConfig::record_series`; single-host runs
    /// only).
    pub series: Option<SeriesBundle>,
    /// MM cycles executed (one per VIRQ while a managed policy ran).
    pub mm_cycles: u64,
    /// Target transmissions actually sent (suppression working ⇒ ≤ cycles).
    pub mm_transmissions: u64,
    /// Disk read requests served.
    pub disk_reads: u64,
    /// Disk page writes absorbed.
    pub disk_writes: u64,
    /// Total read wait across all requesters (queueing + service).
    pub disk_read_wait: sim_core::time::SimDuration,
    /// Total write-throttle stall time.
    pub disk_throttle: sim_core::time::SimDuration,
    /// Instant the last VM finished/stopped.
    pub end_time: SimTime,
    /// Events dispatched by the run loop (determinism fingerprint). In a
    /// cluster run the loop is shared, so every host reports the same
    /// fleet-wide count.
    pub events: u64,
    /// The run hit the safety cutoff (always a bug — asserted by tests).
    pub truncated: bool,
    /// Fault injection + degradation accounting for this host. All-zero
    /// `injected()` when `RunConfig::faults` is disabled.
    pub faults: FaultLedger,
    /// Per-VM tmem pages in use at scenario end (resident-VM order). The
    /// replay verifier re-derives this purely from trace events.
    pub final_tmem_used: Vec<u64>,
    /// Per-VM far-tier pages at scenario end (resident-VM order). Always
    /// zero without a far tier.
    pub final_far_used: Vec<u64>,
    /// Flight-recorder extraction (`Some` iff `RunConfig::trace` was set).
    pub trace: Option<TraceData>,
}

/// Cluster topology for [`run_cluster`]: how many hosts, the interconnect,
/// and the optional far tier / fleet scheduler. The default is a plain
/// single host — exactly what [`run_spec`] uses.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct ClusterConfig {
    /// Number of independent hosts; node tmem capacity is sharded across
    /// them (earlier hosts take the remainder pages).
    pub hosts: usize,
    /// The shared migration/spill interconnect.
    pub net: NetModel,
    /// Per-host far-memory tier (`None` disables it; zero RNG is drawn and
    /// single-host goldens are untouched).
    pub far: Option<FarConfig>,
    /// Fleet scheduler tunables; `None` means no MM-driven migration.
    pub migration: Option<FleetConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hosts: 1,
            net: NetModel::default(),
            far: None,
            migration: None,
        }
    }
}

/// Fleet-wide accounting of one cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FleetMetrics {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// MM-initiated migrations started.
    pub migrations: u64,
    /// Summed VM pause time across completed migrations.
    pub migration_downtime: SimDuration,
    /// Transfers enqueued on the cluster link.
    pub cross_host_transfers: u64,
    /// Pages moved across the cluster link (RAM + tmem + far).
    pub cross_host_pages: u64,
    /// Time transfers spent queued behind earlier transfers.
    pub net_queue_wait: SimDuration,
    /// Σ over intervals of free pages on put-healthy hosts while some other
    /// host was rejecting puts — capacity the fleet owned but could not
    /// bring to bear (the sharding cost the fleet scheduler exists to cut).
    pub stranded_page_intervals: u64,
}

impl FleetMetrics {
    fn single_host() -> Self {
        FleetMetrics {
            hosts: 1,
            migrations: 0,
            migration_downtime: SimDuration::ZERO,
            cross_host_transfers: 0,
            cross_host_pages: 0,
            net_queue_wait: SimDuration::ZERO,
            stranded_page_intervals: 0,
        }
    }
}

/// Outcome of one cluster run: one [`RunResult`] per host plus the
/// fleet-wide metrics.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-host results, host order. VMs appear in the result of the host
    /// they ended on.
    pub host_results: Vec<RunResult>,
    /// Fleet-wide accounting.
    pub fleet: FleetMetrics,
}

struct VmRuntime {
    spec: VmSpec,
    kernel: GuestKernel,
    _tkm: Option<GuestTkm>,
    workload: Option<Box<dyn Workload>>,
    state: VmState,
    /// Host the VM currently resides on (updated when a migration starts —
    /// its pages land on the destination immediately; only time passes
    /// while `Migrating`).
    host: usize,
    /// Instant the current sleep's `Wake` was scheduled for; lets a
    /// migration that swallows the wake re-issue it on arrival.
    wake_at: Option<SimTime>,
    /// State to restore at `MigrateDone` (`Running` or `Sleeping`).
    resume_after_migration: Option<VmState>,
    prog_idx: usize,
    run_counter: u32,
    runs: Vec<RunRecord>,
    milestones: Vec<(String, SimTime)>,
    stopped_early: bool,
}

/// One host's private control plane: hypervisor, disk, dom0 relay, MM,
/// CPU model, fault injector and flight recorder. The pre-cluster runner
/// held these fields directly; a cluster run holds N of them.
struct HostCtl {
    hyp: Hypervisor<Fingerprint>,
    disk: SharedDisk,
    dom0: Dom0Tkm,
    mm: Option<MemoryManager>,
    cpu: CpuModel,
    injector: FaultInjector,
    sample_chan: SampleChannel,
    /// Reusable buffer for one interval's VIRQ → dom0 snapshot batch.
    virq_buf: Vec<tmem::stats::StatsMsg>,
    /// `Some(t)` while this host's MM process is crashed; the watchdog
    /// restarts it at the first VIRQ at or after `t`.
    mm_down_until: Option<SimTime>,
    /// vCPUs of VMs currently in [`VmState::Running`] on this host,
    /// maintained incrementally by [`Runner::set_state`] — `step_vm` needs
    /// it on every dispatched step, which at fleet scale (64+ VMs) makes an
    /// O(VMs) rescan the hottest line of the whole loop.
    running_vcpus: u32,
    /// This host's flight recorder; clones of it live inside the host's
    /// hypervisor, relay, MM and fault injector.
    tracer: Tracer,
}

/// Fleet-level state of a multi-host run (absent for `hosts == 1`).
struct FleetCtl {
    /// The cross-host scheduler (`None` when migration is disabled).
    mgr: Option<FleetManager>,
    /// The shared migration/spill link.
    link: Link,
    /// Per-host Σ failed_puts at the previous fleet step, for deltas.
    /// Saturating: a migration moves a VM's cumulative counter between
    /// hosts, which can make a host's sum go backwards.
    prev_failed: Vec<u64>,
    /// The one migration in flight: `(vm index, pause instant)`.
    in_flight: Option<(usize, SimTime)>,
    migrations: u64,
    downtime: SimDuration,
    stranded: u64,
}

struct Runner {
    cfg: RunConfig,
    hosts: Vec<HostCtl>,
    vms: Vec<VmRuntime>,
    queue: EventQueue<Event>,
    observed: FxHashSet<(usize, String)>,
    pending_starts: Vec<(usize, Vec<(usize, String)>)>,
    stop_all_on: Option<(usize, String)>,
    series: Option<SeriesBundle>,
    seed_root: SplitMix64,
    scenario_name: String,
    policy_name: String,
    policy_kind: PolicyKind,
    sampling: SimDuration,
    truncated: bool,
    /// Events actually dispatched (the determinism fingerprint). Counted
    /// here rather than read off the queue: batch draining pops whole
    /// same-instant groups, but a cutoff or early completion stops
    /// dispatch mid-batch exactly where one-at-a-time popping would have
    /// stopped.
    dispatched: u64,
    /// VMs not yet Finished/Stopped, maintained by [`Runner::set_state`];
    /// `all_done()` is consulted after every event.
    unfinished: usize,
    /// Reusable per-interval buffers for the slow-reclaim trickle, so an
    /// over-target VM doesn't cost two fresh `Vec`s every interval.
    reclaim_buf: Vec<(tmem::key::ObjectId, u32)>,
    reclaim_keys: Vec<(u64, u32)>,
    fleet: Option<FleetCtl>,
}

/// Run one scenario under one policy. Deterministic in `cfg.seed`.
pub fn run_scenario(kind: ScenarioKind, policy: PolicyKind, cfg: &RunConfig) -> RunResult {
    run_spec(build_scenario(kind, cfg), policy, cfg)
}

/// Run a (possibly customized) scenario spec under one policy on a single
/// host. The public entry point for experiments beyond Table II — e.g.
/// capacity sweeps that adjust `ScenarioSpec::tmem_bytes` before running.
///
/// This *is* the one-host cluster path: the single-host byte-goldens pin
/// the cluster refactor in place.
pub fn run_spec(spec: crate::spec::ScenarioSpec, policy: PolicyKind, cfg: &RunConfig) -> RunResult {
    let mut r = run_cluster(spec, policy, cfg, &ClusterConfig::default());
    r.host_results.pop().expect("one host")
}

/// Run a scenario spec across a cluster of hosts. Node tmem capacity is
/// sharded host-by-host, VMs are placed round-robin, and (when configured)
/// the fleet scheduler migrates VMs between hosts on sustained pressure
/// divergence. Deterministic in `cfg.seed`.
pub fn run_cluster(
    spec: crate::spec::ScenarioSpec,
    policy: PolicyKind,
    cfg: &RunConfig,
    cluster: &ClusterConfig,
) -> ClusterResult {
    assert!(cluster.hosts >= 1, "a cluster needs at least one host");
    let nhosts = cluster.hosts;
    let total_pages = spec.tmem_pages();
    let frontswap = policy.tmem_enabled();

    let mut hosts = Vec::with_capacity(nhosts);
    for h in 0..nhosts {
        // Shard the node capacity; earlier hosts absorb the remainder.
        let host_pages =
            total_pages / nhosts as u64 + u64::from((h as u64) < total_pages % nhosts as u64);
        let tracer = Tracer::from_config(cfg.trace.as_ref(), &cfg.cost);
        let mut mm = MemoryManager::from_kind(policy, 128);
        if let Some(m) = mm.as_mut() {
            m.set_tracer(tracer.clone());
        }
        let initial_target = mm
            .as_ref()
            .map(|m| m.initial_target(host_pages))
            .unwrap_or(0);
        let mut hyp: Hypervisor<Fingerprint> = Hypervisor::new(host_pages, initial_target);
        hyp.set_tracer(tracer.clone());
        // Host 0 keeps the historical seeding so single-host runs stay
        // byte-identical; additional hosts draw independent substreams.
        let fault_seed = if h == 0 {
            cfg.seed
        } else {
            SplitMix64::new(cfg.seed).derive(&format!("host{h}")).next()
        };
        // Data-plane fault layer (page corruption, loss, put I/O failures,
        // brownouts, scrubbing). A no-op — no injector installed, zero RNG
        // drawn — unless the profile enables a data-plane fault.
        hyp.set_data_faults(&cfg.faults, fault_seed);
        if let Some(far) = cluster.far {
            hyp.set_far_tier(far);
        }
        let mut dom0 = Dom0Tkm::new();
        dom0.set_tracer(tracer.clone());
        let mut injector = FaultInjector::new(cfg.faults.clone(), fault_seed);
        injector.set_tracer(tracer.clone());
        hosts.push(HostCtl {
            hyp,
            disk: SharedDisk::default(),
            dom0,
            mm,
            cpu: CpuModel::new(cfg.cores),
            injector,
            sample_chan: SampleChannel::new(),
            virq_buf: Vec::new(),
            mm_down_until: None,
            running_vcpus: 0,
            tracer,
        });
    }

    let mut vms = Vec::with_capacity(spec.vms.len());
    for (i, vm_spec) in spec.vms.iter().enumerate() {
        let h = i % nhosts;
        hosts[h].hyp.register_vm(vm_spec.config.clone());
        let ram_pages = vm_spec.config.ram_pages();
        let os_reserved = ((ram_pages as f64 * cfg.os_reserve_frac) as u64).max(2);
        let mut kernel = GuestKernel::new(GuestConfig {
            vm: vm_spec.config.id,
            ram_pages,
            os_reserved_pages: os_reserved,
            readahead_pages: cfg.readahead_pages,
            frontswap_enabled: frontswap,
        });
        let tkm = if frontswap {
            let tkm = GuestTkm::init(&mut hosts[h].hyp, vm_spec.config.id, PoolKind::Persistent)
                .expect("pool creation cannot fail on a fresh hypervisor");
            kernel.attach_frontswap(tkm.pool());
            Some(tkm)
        } else {
            None
        };
        vms.push(VmRuntime {
            spec: vm_spec.clone(),
            kernel,
            _tkm: tkm,
            workload: None,
            state: VmState::NotStarted,
            host: h,
            wake_at: None,
            resume_after_migration: None,
            prog_idx: 0,
            run_counter: 0,
            runs: Vec::new(),
            milestones: Vec::new(),
            stopped_early: false,
        });
    }

    let unfinished = vms.len();
    let fleet = (nhosts > 1).then(|| FleetCtl {
        mgr: cluster.migration.map(FleetManager::new),
        link: Link::new(cluster.net.clone()),
        prev_failed: vec![0; nhosts],
        in_flight: None,
        migrations: 0,
        downtime: SimDuration::ZERO,
        stranded: 0,
    });
    let mut runner = Runner {
        // Series are a single-host instrument: in a cluster, occupancy
        // spans hosts and the golden-pinned per-interval replay check
        // would need per-host series. Fleet runs use traces instead.
        series: (nhosts == 1 && cfg.record_series).then(|| SeriesBundle {
            used: vec![TimeSeries::new(); vms.len()],
            target: vec![TimeSeries::new(); vms.len()],
        }),
        sampling: cfg.sampling_interval(),
        seed_root: SplitMix64::new(cfg.seed),
        scenario_name: spec.name.clone(),
        policy_name: policy.to_string(),
        policy_kind: policy,
        cfg: cfg.clone(),
        hosts,
        vms,
        queue: EventQueue::new(),
        observed: FxHashSet::default(),
        pending_starts: Vec::new(),
        stop_all_on: spec.stop_all_on.clone(),
        truncated: false,
        dispatched: 0,
        unfinished,
        reclaim_buf: Vec::new(),
        reclaim_keys: Vec::new(),
        fleet,
    };
    runner.seed_events();
    runner.run()
}

impl Runner {
    fn seed_events(&mut self) {
        for (i, vm) in self.vms.iter().enumerate() {
            match &vm.spec.start {
                StartRule::At(d) => self.queue.schedule_at(SimTime::ZERO + *d, Event::Start(i)),
                StartRule::OnMilestonesAll(reqs) if reqs.is_empty() => {
                    // No requirements means nothing to wait for; an empty
                    // rule must not depend on some other VM emitting a
                    // milestone first.
                    self.queue.schedule_at(SimTime::ZERO, Event::Start(i));
                }
                StartRule::OnMilestonesAll(reqs) => {
                    self.pending_starts.push((i, reqs.clone()));
                }
            }
        }
        self.queue
            .schedule_at(SimTime::ZERO + self.sampling, Event::Virq);
    }

    /// Move VM `i` to `new`, keeping the incremental per-host
    /// `running_vcpus` and global `unfinished` counters exact. Every state
    /// transition in the runner goes through here.
    fn set_state(&mut self, i: usize, new: VmState) {
        let old = self.vms[i].state;
        if old == new {
            return;
        }
        let vcpus = self.vms[i].spec.config.vcpus;
        let h = self.vms[i].host;
        if old == VmState::Running {
            self.hosts[h].running_vcpus -= vcpus;
        }
        if new == VmState::Running {
            self.hosts[h].running_vcpus += vcpus;
        }
        let done = |s: VmState| matches!(s, VmState::Finished | VmState::Stopped);
        match (done(old), done(new)) {
            (false, true) => self.unfinished -= 1,
            (true, false) => self.unfinished += 1,
            _ => {}
        }
        self.vms[i].state = new;
    }

    fn all_done(&self) -> bool {
        self.unfinished == 0
    }

    fn run(mut self) -> ClusterResult {
        let cutoff = SimTime::ZERO + self.cfg.max_sim_time;
        // Same-instant events are drained from the heap as one batch and
        // dispatched in a row — one heap pop amortized over the group, no
        // re-sift between control-plane messages of the same tick. Events a
        // handler schedules at `now` carry higher sequence numbers than the
        // whole drained batch, so they form the next batch and dispatch
        // order is exactly that of one-at-a-time popping.
        let mut batch = Vec::new();
        'dispatch: while let Some(now) = self.queue.pop_batch(&mut batch) {
            for host in &self.hosts {
                host.tracer.set_now(now);
            }
            if now > cutoff {
                // Count only the event that crossed the cutoff, exactly as
                // a single pop would have.
                self.dispatched += 1;
                self.truncated = true;
                self.stop_all(now);
                break;
            }
            for event in batch.drain(..) {
                self.dispatched += 1;
                match event {
                    Event::Start(i) => {
                        if self.vms[i].state == VmState::NotStarted {
                            self.start_next(i, now);
                        }
                    }
                    Event::Wake(i) => {
                        if self.vms[i].state == VmState::Sleeping {
                            self.start_next(i, now);
                        }
                    }
                    Event::Step(i) => {
                        if self.vms[i].state == VmState::Running {
                            self.step_vm(i, now);
                        }
                    }
                    Event::Virq => self.virq(now),
                    Event::MigrateDone(i) => {
                        // A stop_all may have killed the VM mid-flight; the
                        // guard keeps the arrival from resurrecting it.
                        if self.vms[i].state == VmState::Migrating {
                            self.migrate_done(i, now);
                        }
                    }
                }
                if self.all_done() {
                    break 'dispatch;
                }
            }
        }
        self.finish()
    }

    /// Begin the next program step of VM `i` at `now` (initial start, after
    /// a sleep, or after a completed run).
    fn start_next(&mut self, i: usize, now: SimTime) {
        if self.vms[i].prog_idx >= self.vms[i].spec.program.len() {
            self.set_state(i, VmState::Finished);
            return;
        }
        let step = {
            let rt = &mut self.vms[i];
            let step = rt.spec.program[rt.prog_idx].clone();
            rt.prog_idx += 1;
            step
        };
        match step {
            ProgramStep::Run(ws) => {
                let label = format!(
                    "{}/{}/vm{i}/run{}",
                    self.scenario_name, self.policy_name, self.vms[i].run_counter
                );
                let seed = self.seed_root.derive(&label).next();
                let workload = ws.build(seed);
                let rt = &mut self.vms[i];
                rt.run_counter += 1;
                rt.runs.push(RunRecord {
                    workload: workload.name().to_string(),
                    start: now,
                    end: None,
                    stats_at_start: *rt.kernel.stats(),
                    stats_at_end: None,
                });
                rt.workload = Some(workload);
                self.set_state(i, VmState::Running);
                self.queue.schedule_at(now, Event::Step(i));
            }
            ProgramStep::Sleep(d) => {
                self.vms[i].wake_at = Some(now + d);
                self.set_state(i, VmState::Sleeping);
                self.queue.schedule_at(now + d, Event::Wake(i));
            }
        }
    }

    /// Execute one quantum of VM `i`'s workload on its current host.
    fn step_vm(&mut self, i: usize, now: SimTime) {
        let h = self.vms[i].host;
        let dilation = self.hosts[h].cpu.dilation(self.hosts[h].running_vcpus);
        let mut budget = StepBudget::new(self.cfg.quantum);
        let outcome;
        {
            let host = &mut self.hosts[h];
            let rt = &mut self.vms[i];
            let mut machine = Machine {
                hyp: &mut host.hyp,
                disk: &mut host.disk,
                cost: &self.cfg.cost,
                now,
                budget: &mut budget,
            };
            let workload = rt.workload.as_mut().expect("running VM has a workload");
            outcome = workload.step(&mut rt.kernel, &mut machine);
        }
        let elapsed = budget.elapsed(dilation);
        let t_end = now + elapsed;

        // Milestones: record, then evaluate cross-VM triggers.
        let labels: Vec<String> = self.vms[i]
            .workload
            .as_mut()
            .expect("still present")
            .drain_milestones()
            .into_iter()
            .map(|m| m.0)
            .collect();
        let new_labels = !labels.is_empty();
        let mut stop_everything = false;
        for label in labels {
            self.vms[i].milestones.push((label.clone(), t_end));
            self.observed.insert((i, label.clone()));
            if let Some((svm, slabel)) = &self.stop_all_on {
                if *svm == i && *slabel == label {
                    stop_everything = true;
                }
            }
        }
        // Milestone-triggered starts can only become ready when a new label
        // was recorded (empty-requirement rules fire from `seed_events`),
        // so a step without milestones skips the pending scan entirely.
        if new_labels && !self.pending_starts.is_empty() {
            self.fire_ready_starts(t_end);
        }
        if stop_everything {
            self.stop_all(t_end);
            return;
        }

        match outcome {
            StepOutcome::Done => {
                let rt = &mut self.vms[i];
                let stats = *rt.kernel.stats();
                let rec = rt
                    .runs
                    .last_mut()
                    .expect("a run record exists while running");
                rec.end = Some(t_end);
                rec.stats_at_end = Some(stats);
                rt.workload = None;
                self.start_next(i, t_end);
            }
            StepOutcome::Runnable => {
                self.queue.schedule_at(t_end, Event::Step(i));
            }
        }
    }

    /// Start any milestone-triggered VM whose requirements are now met.
    fn fire_ready_starts(&mut self, at: SimTime) {
        let observed = &self.observed;
        let mut ready = Vec::new();
        self.pending_starts.retain(|(vm, reqs)| {
            if reqs.iter().all(|r| observed.contains(r)) {
                ready.push(*vm);
                false
            } else {
                true
            }
        });
        for vm in ready {
            self.queue.schedule_at(at, Event::Start(vm));
        }
    }

    /// The scenario-wide stop trigger: kill every VM's program.
    fn stop_all(&mut self, at: SimTime) {
        for i in 0..self.vms.len() {
            let state = self.vms[i].state;
            if matches!(state, VmState::Finished | VmState::Stopped) {
                continue;
            }
            // Process kill: release guest memory (flush costs are charged
            // to a throwaway budget — the scenario is over).
            let mut budget = StepBudget::new(SimDuration::from_secs(3600));
            let host = &mut self.hosts[self.vms[i].host];
            let rt = &mut self.vms[i];
            if let Some(mut w) = rt.workload.take() {
                let mut machine = Machine {
                    hyp: &mut host.hyp,
                    disk: &mut host.disk,
                    cost: &self.cfg.cost,
                    now: at,
                    budget: &mut budget,
                };
                w.abort(&mut rt.kernel, &mut machine);
            }
            let stats = *rt.kernel.stats();
            if let Some(r) = rt.runs.last_mut() {
                if r.end.is_none() {
                    r.end = Some(at);
                    r.stats_at_end = Some(stats);
                }
            }
            rt.stopped_early = true;
            self.set_state(i, VmState::Stopped);
        }
    }

    /// One host's MM-side half of the VIRQ: relay retry clock, watchdog
    /// restart, crash schedule, snapshot ingestion and target pushes.
    fn drive_mm(host: &mut HostCtl, sampling: SimDuration, now: SimTime) {
        // The dom0 relay is kernel-side: its retry clock ticks every
        // interval even while the user-space MM is down.
        host.dom0.tick_retries(&mut host.hyp, &mut host.injector);
        if let Some(t) = host.mm_down_until {
            if now < t {
                // MM still down; snapshots queue (and shed) in the relay.
                return;
            }
            host.mm_down_until = None;
            host.injector.ledger_mut().mm_restarts += 1;
            host.tracer
                .emit(|| (None, Subsystem::Mm, Payload::MmRestart));
        }
        let mm = host.mm.as_mut().expect("caller checked mm.is_some()");
        // Crash schedule keys on completed MM cycles, so a fixed
        // `mm_crash_at_cycle` hits the same policy state at any time scale.
        if host.injector.mm_should_crash(mm.cycles()) {
            mm.crash();
            let downtime = sampling.as_nanos() * host.injector.profile().mm_restart_after;
            host.mm_down_until = Some(now + SimDuration::from_nanos(downtime));
            return;
        }
        while let Some(snap) = host.dom0.take_stats() {
            if let Some((seq, targets)) = mm.on_stats(&snap) {
                host.dom0
                    .forward_targets(&mut host.hyp, &mut host.injector, seq, &targets);
            }
            // The MM processed a snapshot: its liveness heartbeat refreshes
            // the hypervisor's target TTL even when the target vector was
            // suppressed as unchanged. A crashed MM (or a wholly lost
            // sample) sends no heartbeat, so staleness accrues.
            host.hyp.keepalive();
        }
    }

    /// The per-interval sampling VIRQ: every host in host order runs
    /// hypervisor → dom0 TKM → MM → targets back down, then the fleet
    /// scheduler compares hosts. Series recording (single-host) sits
    /// between host 0's interval close and the reschedule, exactly where
    /// the pre-cluster runner put it.
    ///
    /// Every edge crossing consults the host's fault injector. With the
    /// default (disabled) profile no RNG is drawn and exactly one snapshot
    /// flows through per interval, so the fault-free path is byte-identical
    /// to a build without the fault layer.
    fn virq(&mut self, now: SimTime) {
        for h in 0..self.hosts.len() {
            self.virq_host(h, now);
        }
        if let Some(series) = &mut self.series {
            let host = &self.hosts[0];
            for (i, vm) in self.vms.iter().enumerate() {
                let id = vm.spec.config.id;
                series.used[i].push(now, host.hyp.tmem_used_by(id) as f64);
                series.target[i].push(now, host.hyp.target_of(id).unwrap_or(0) as f64);
            }
        }
        self.fleet_step(now);
        if !self.all_done() {
            self.queue.schedule_at(now + self.sampling, Event::Virq);
        }
    }

    /// One host's half of the VIRQ, through its `IntervalClose` emission.
    fn virq_host(&mut self, h: usize, now: SimTime) {
        let Runner {
            hosts,
            vms,
            cfg,
            sampling,
            reclaim_buf,
            reclaim_keys,
            ..
        } = self;
        let host = &mut hosts[h];
        // Advance the data-fault interval clock (brownout windows and scrub
        // cadence are phrased in sampling intervals). No-op when the profile
        // has no data-plane faults.
        host.hyp.tick_data_faults();
        let msg = host.hyp.sample(now);
        let seq = msg.seq;
        let fate = host.injector.sample_fate();
        host.tracer
            .emit(|| (None, Subsystem::Virq, Payload::VirqSample { seq, fate }));
        // The channel's output batch is handed to the relay in one call —
        // the relay still draws a fault fate per logical message, so the
        // fault stream is that of message-at-a-time delivery.
        host.sample_chan.push_into(msg, fate, &mut host.virq_buf);
        host.dom0
            .deliver_stats_batch(&mut host.virq_buf, &mut host.injector);
        let mut stale = false;
        if host.mm.is_some() {
            Self::drive_mm(host, *sampling, now);
            // Slow reclaim: trickle over-target VMs' oldest pages to their
            // swap devices (hypervisor-driven async write-back). This is
            // hypervisor work — it continues while the MM is crashed, with
            // targets held at the TTL fallback.
            let max = ((host.hyp.node_info().total_tmem as f64 * cfg.reclaim_frac_per_interval)
                as u64)
                .max(1);
            for rt in vms.iter_mut().filter(|rt| rt.host == h) {
                let Some(tkm) = &rt._tkm else { continue };
                reclaim_buf.clear();
                host.hyp
                    .reclaim_over_target_into(tkm.pool(), max, reclaim_buf);
                if !reclaim_buf.is_empty() {
                    reclaim_keys.clear();
                    reclaim_keys.extend(reclaim_buf.iter().map(|&(o, i)| (o.0, i)));
                    rt.kernel.tmem_reclaimed(reclaim_keys);
                    for _ in 0..reclaim_keys.len() {
                        host.disk.write_page(now, &cfg.cost);
                    }
                }
            }
            stale = host.hyp.targets_stale();
            if stale {
                host.injector.ledger_mut().stale_intervals += 1;
            }
        }
        // Periodic pool scrub: verify every stored checksum, quarantine
        // corrupt objects, and assert the accounting invariants from inside
        // the sweep. Runs before this interval's own invariant check so the
        // IntervalClose event reflects the post-scrub pool.
        if host.hyp.data_scrub_due() {
            host.hyp.scrub();
        }
        // Accounting invariants must hold every interval, faults or not.
        let ok = tmem::backend::accounting_consistent(host.hyp.backend());
        let ledger = host.injector.ledger_mut();
        ledger.invariant_checks += 1;
        if !ok {
            ledger.invariant_violations += 1;
        }
        host.tracer.emit(|| {
            (
                None,
                Subsystem::Virq,
                Payload::IntervalClose { seq, stale, ok },
            )
        });
    }

    /// The fleet half of the VIRQ: pressure vectors, stranded-capacity
    /// accounting and (at most) one migration decision. No-op on
    /// single-host runs.
    fn fleet_step(&mut self, now: SimTime) {
        if self.fleet.is_none() {
            return;
        }
        let mut failed = vec![0u64; self.hosts.len()];
        for rt in &self.vms {
            failed[rt.host] += rt.kernel.stats().failed_puts;
        }
        let plan = {
            let fleet = self.fleet.as_mut().expect("checked above");
            let mut loads = Vec::with_capacity(self.hosts.len());
            for (h, host) in self.hosts.iter().enumerate() {
                let info = host.hyp.node_info();
                let delta = failed[h].saturating_sub(fleet.prev_failed[h]);
                fleet.prev_failed[h] = failed[h];
                loads.push(HostLoad {
                    used: (info.total_tmem - info.free_tmem) + host.hyp.far_used(),
                    capacity: info.total_tmem,
                    failed_puts_delta: delta,
                });
            }
            fleet.stranded += stranded_pages(&loads);
            if fleet.in_flight.is_some() {
                // One migration in flight fleet-wide; the scheduler's
                // interval clock pauses with it.
                return;
            }
            let Some(mgr) = fleet.mgr.as_mut() else {
                return;
            };
            let placements: Vec<VmPlacement> = self
                .vms
                .iter()
                .filter(|rt| {
                    matches!(rt.state, VmState::Running | VmState::Sleeping) && rt._tkm.is_some()
                })
                .map(|rt| {
                    let id = rt.spec.config.id;
                    let hyp = &self.hosts[rt.host].hyp;
                    VmPlacement {
                        vm: id,
                        host: rt.host,
                        used: hyp.tmem_used_by(id) + hyp.far_used_by(id),
                    }
                })
                .collect();
            mgr.decide(&loads, &placements)
        };
        if let Some(plan) = plan {
            self.execute_migration(plan, now);
        }
    }

    /// Execute one migration plan: pause the VM, rip its pool out of the
    /// source host, re-admit it on the destination, and schedule the
    /// resume for when the modelled network transfer completes. The page
    /// hand-off is synchronous (state is never split across hosts); only
    /// *time* passes while the VM is `Migrating`.
    fn execute_migration(&mut self, plan: MigrationPlan, now: SimTime) {
        let i = self
            .vms
            .iter()
            .position(|rt| rt.spec.config.id == plan.vm)
            .expect("plan names a live VM");
        let (src, dst) = (plan.from, plan.to);
        debug_assert_eq!(self.vms[i].host, src, "plan is stale");
        let vm = plan.vm;
        let pool = self.vms[i]
            ._tkm
            .as_ref()
            .expect("migratable VMs run frontswap")
            .pool();
        // Ephemeral (cleancache) pools do not survive migration: tmem may
        // drop ephemeral pages at any time, and shipping a cache across the
        // interconnect would cost transfer time to move bytes the guest can
        // re-read from its own disk. Destroy them at the source (the
        // `PoolDestroy` event keeps replay exact) and register fresh, empty
        // pools on the destination for the owning workload to rebind to.
        let ephemeral: Vec<tmem::key::PoolId> = self.hosts[src]
            .hyp
            .pools_owned_by(vm)
            .into_iter()
            .filter(|&(p, kind)| kind == PoolKind::Ephemeral && p != pool)
            .map(|(p, _)| p)
            .collect();
        for &p in &ephemeral {
            self.hosts[src].hyp.destroy_pool(p);
        }
        let export = self.hosts[src]
            .hyp
            .migrate_export(pool)
            .expect("pool exists on the source");
        let local_n = export.local.len() as u64;
        let far_n = export.far.len() as u64;
        let purged = export.purged;
        let ram = self.vms[i].spec.config.ram_pages();
        {
            let host = &mut self.hosts[src];
            host.tracer.emit(|| {
                (
                    Some(vm.0),
                    Subsystem::Fleet,
                    Payload::MigrateOut {
                        pages: local_n,
                        far: far_n,
                        purged,
                        ram,
                    },
                )
            });
            let led = host.injector.ledger_mut();
            led.migrations_out += 1;
            led.migrate_pages += local_n + far_n;
            led.migrate_purged += purged;
        }
        let vm_cfg = self.hosts[src]
            .hyp
            .unregister_vm(vm)
            .expect("VM was registered on the source");
        self.hosts[dst].hyp.register_vm(vm_cfg);
        let tkm = GuestTkm::init(&mut self.hosts[dst].hyp, vm, PoolKind::Persistent)
            .expect("fresh pool on the destination");
        let new_pool = tkm.pool();
        self.vms[i].kernel.attach_frontswap(new_pool);
        self.vms[i]._tkm = Some(tkm);
        for old in ephemeral {
            let fresh = self.hosts[dst]
                .hyp
                .new_pool(vm, PoolKind::Ephemeral)
                .expect("fresh cleancache pool on the destination");
            if let Some(w) = self.vms[i].workload.as_mut() {
                w.rebind_pool(old, fresh);
            }
        }
        let mut pages = export.local;
        pages.extend(export.far);
        let outcome = self.hosts[dst].hyp.import_pages(new_pool, pages);
        let spilled_n = outcome.spilled.len() as u64;
        if spilled_n > 0 {
            // Overflow that fits neither the destination's tmem nor its far
            // tier goes back to the VM's swap device — the same
            // swap-consistent path slow reclaim uses, so the guest page
            // table stays coherent.
            self.reclaim_keys.clear();
            self.reclaim_keys
                .extend(outcome.spilled.iter().map(|&(o, idx)| (o.0, idx)));
            self.vms[i].kernel.tmem_reclaimed(&self.reclaim_keys);
            for _ in 0..spilled_n {
                self.hosts[dst].disk.write_page(now, &self.cfg.cost);
            }
        }
        {
            let host = &mut self.hosts[dst];
            host.tracer.emit(|| {
                (
                    Some(vm.0),
                    Subsystem::Fleet,
                    Payload::MigrateIn {
                        pages: outcome.stored,
                        far: outcome.stored_far,
                        spilled: spilled_n,
                    },
                )
            });
            let led = host.injector.ledger_mut();
            led.migrations_in += 1;
            led.migrate_spilled += spilled_n;
        }
        let prev = self.vms[i].state;
        self.set_state(i, VmState::Migrating);
        self.vms[i].host = dst;
        self.vms[i].resume_after_migration = Some(prev);
        let fleet = self.fleet.as_mut().expect("migration only in fleet runs");
        let (_start, done_at) = fleet.link.enqueue(now, ram + local_n + far_n);
        fleet.in_flight = Some((i, now));
        fleet.migrations += 1;
        self.queue.schedule_at(done_at, Event::MigrateDone(i));
    }

    /// The migration's network transfer finished: account the downtime and
    /// resume the VM on its destination host.
    fn migrate_done(&mut self, i: usize, now: SimTime) {
        let fleet = self.fleet.as_mut().expect("MigrateDone only in fleet runs");
        let (vm_i, t0) = fleet.in_flight.take().expect("a migration was in flight");
        debug_assert_eq!(vm_i, i, "one migration in flight at a time");
        let downtime = now - t0;
        fleet.downtime += downtime;
        let h = self.vms[i].host;
        let vm = self.vms[i].spec.config.id;
        self.hosts[h].tracer.emit(|| {
            (
                Some(vm.0),
                Subsystem::Fleet,
                Payload::MigrateDone {
                    downtime: downtime.as_nanos(),
                },
            )
        });
        match self.vms[i]
            .resume_after_migration
            .take()
            .expect("set when the migration began")
        {
            VmState::Running => {
                self.set_state(i, VmState::Running);
                self.queue.schedule_at(now, Event::Step(i));
            }
            VmState::Sleeping => {
                self.set_state(i, VmState::Sleeping);
                // The sleep's original Wake may have fired (and been
                // ignored) while the VM was in flight; re-issue it. A wake
                // still in the future fires normally off the queue.
                if self.vms[i].wake_at.is_some_and(|w| w <= now) {
                    self.queue.schedule_at(now, Event::Wake(i));
                }
            }
            other => unreachable!("un-migratable state {other:?} was recorded"),
        }
    }

    fn finish(mut self) -> ClusterResult {
        let end_time = self.queue.now();
        for host in self.hosts.iter_mut() {
            // One final integrity sweep when the data-fault layer is armed:
            // corruption injected after the last periodic scrub is still
            // detected (and quarantined) before the ledger is sealed, so
            // every injected corruption ends the run as detected —
            // recovered or quarantined, never latent.
            if host.hyp.data_fault_ledger().is_some() {
                host.hyp.scrub();
            }
            // Fold MM-side degradation bookkeeping into the ledger.
            if let Some(mm) = &host.mm {
                let ledger = host.injector.ledger_mut();
                ledger.seq_gaps = mm.seq_gaps();
                ledger.snapshots_discarded = mm.snapshots_discarded();
            }
            // Fold the hypervisor-side data-plane ledger into the run
            // ledger.
            if let Some(dl) = host.hyp.data_fault_ledger() {
                dl.clone().fold_into(host.injector.ledger_mut());
            }
        }
        // Bucket VMs by the host they ended on, preserving global VM order
        // within each host.
        let mut per_host: Vec<Vec<VmRuntime>> = (0..self.hosts.len()).map(|_| Vec::new()).collect();
        for rt in self.vms {
            per_host[rt.host].push(rt);
        }
        let mut series = self.series.take();
        let fleet_metrics = match &self.fleet {
            Some(f) => FleetMetrics {
                hosts: self.hosts.len(),
                migrations: f.migrations,
                migration_downtime: f.downtime,
                cross_host_transfers: f.link.transfers,
                cross_host_pages: f.link.pages_moved,
                net_queue_wait: f.link.queue_wait,
                stranded_page_intervals: f.stranded,
            },
            None => FleetMetrics::single_host(),
        };
        let mut host_results = Vec::with_capacity(self.hosts.len());
        for (h, (host, vms)) in self.hosts.into_iter().zip(per_host).enumerate() {
            let final_tmem_used: Vec<u64> = vms
                .iter()
                .map(|rt| host.hyp.tmem_used_by(rt.spec.config.id))
                .collect();
            let final_far_used: Vec<u64> = vms
                .iter()
                .map(|rt| host.hyp.far_used_by(rt.spec.config.id))
                .collect();
            let vm_results = vms
                .into_iter()
                .map(|rt| VmResult {
                    name: rt.spec.config.name.clone(),
                    vm_id: rt.spec.config.id,
                    runs: rt.runs,
                    milestones: rt.milestones,
                    kernel_stats: *rt.kernel.stats(),
                    stopped_early: rt.stopped_early,
                })
                .collect();
            host_results.push(RunResult {
                scenario: self.scenario_name.clone(),
                policy: self.policy_name.clone(),
                policy_kind: self.policy_kind,
                vm_results,
                series: if h == 0 { series.take() } else { None },
                mm_cycles: host.mm.as_ref().map(|m| m.cycles()).unwrap_or(0),
                mm_transmissions: host.mm.as_ref().map(|m| m.transmissions()).unwrap_or(0),
                disk_reads: host.disk.reads(),
                disk_writes: host.disk.writes(),
                disk_read_wait: host.disk.read_wait_total(),
                disk_throttle: host.disk.throttle_total(),
                end_time,
                events: self.dispatched,
                truncated: self.truncated,
                faults: host.injector.into_ledger(),
                final_tmem_used,
                final_far_used,
                trace: host.tracer.finish(),
            });
        }
        ClusterResult {
            host_results,
            fleet: fleet_metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> RunConfig {
        RunConfig {
            scale: 0.01,
            seed,
            record_series: true,
            ..RunConfig::default()
        }
    }

    #[test]
    fn scenario1_completes_under_greedy() {
        let r = run_scenario(ScenarioKind::Scenario1, PolicyKind::Greedy, &tiny_cfg(1));
        assert!(!r.truncated);
        assert_eq!(r.vm_results.len(), 3);
        for vm in &r.vm_results {
            assert_eq!(vm.completions().len(), 2, "two analytics runs per VM");
            assert!(
                vm.kernel_stats.evictions_to_tmem > 0,
                "pressure reached tmem"
            );
        }
    }

    #[test]
    fn no_tmem_never_touches_tmem() {
        let r = run_scenario(ScenarioKind::Scenario2, PolicyKind::NoTmem, &tiny_cfg(2));
        assert!(!r.truncated);
        for vm in &r.vm_results {
            assert_eq!(vm.kernel_stats.evictions_to_tmem, 0);
            assert!(vm.kernel_stats.evictions_to_disk > 0);
        }
        assert_eq!(r.mm_cycles, 0, "no MM process for no-tmem");
    }

    #[test]
    fn deterministic_replay() {
        let a = run_scenario(
            ScenarioKind::Scenario1,
            PolicyKind::SmartAlloc { p: 2.0 },
            &tiny_cfg(7),
        );
        let b = run_scenario(
            ScenarioKind::Scenario1,
            PolicyKind::SmartAlloc { p: 2.0 },
            &tiny_cfg(7),
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time, b.end_time);
        let da: Vec<_> = a.vm_results.iter().map(|v| v.completions()).collect();
        let db: Vec<_> = b.vm_results.iter().map(|v| v.completions()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn usemem_scenario_triggers_fire() {
        let r = run_scenario(
            ScenarioKind::UsememScenario,
            PolicyKind::Greedy,
            &tiny_cfg(3),
        );
        assert!(!r.truncated);
        // VM3 must have started (trigger) and everything stops on its 6th
        // allocation attempt.
        assert!(r.vm_results[2]
            .milestones
            .iter()
            .any(|(l, _)| l.starts_with("alloc")));
        for vm in &r.vm_results {
            assert!(
                vm.stopped_early,
                "{} must be stopped by the trigger",
                vm.name
            );
        }
        // VM3 started strictly after VM1/VM2.
        let vm3_first = r.vm_results[2].milestones.first().unwrap().1;
        let vm1_first = r.vm_results[0].milestones.first().unwrap().1;
        assert!(vm3_first > vm1_first);
    }

    #[test]
    fn series_are_recorded_per_interval() {
        let r = run_scenario(
            ScenarioKind::Scenario2,
            PolicyKind::StaticAlloc,
            &tiny_cfg(4),
        );
        let series = r.series.expect("requested");
        assert_eq!(series.used.len(), 3);
        assert!(series.used[0].len() > 2, "multiple samples");
        // Static policy: targets equal across VMs once set.
        let t_end = series.target[0].points().last().unwrap().1;
        assert!(series
            .target
            .iter()
            .all(|s| s.points().last().unwrap().1 == t_end));
    }

    #[test]
    fn mm_suppression_keeps_transmissions_below_cycles() {
        let r = run_scenario(
            ScenarioKind::Scenario1,
            PolicyKind::StaticAlloc,
            &tiny_cfg(5),
        );
        assert!(r.mm_cycles > 2);
        assert!(
            r.mm_transmissions < r.mm_cycles,
            "static-alloc must suppress unchanged targets ({} vs {})",
            r.mm_transmissions,
            r.mm_cycles
        );
    }

    #[test]
    fn two_host_cluster_shards_capacity_and_vms() {
        let spec = build_scenario(ScenarioKind::Scenario1, &tiny_cfg(6));
        let cluster = ClusterConfig {
            hosts: 2,
            ..ClusterConfig::default()
        };
        let r = run_cluster(spec, PolicyKind::Greedy, &tiny_cfg(6), &cluster);
        assert_eq!(r.host_results.len(), 2);
        assert_eq!(r.fleet.hosts, 2);
        assert_eq!(r.fleet.migrations, 0, "no scheduler configured");
        // Scenario 1 has 3 VMs: round-robin puts 2 on host 0, 1 on host 1.
        assert_eq!(r.host_results[0].vm_results.len(), 2);
        assert_eq!(r.host_results[1].vm_results.len(), 1);
        for hr in &r.host_results {
            assert!(!hr.truncated);
            for vm in &hr.vm_results {
                assert_eq!(vm.completions().len(), 2);
            }
        }
    }
}
